//! Application-layer invariants: configuration-space legality.
//!
//! The ytopt use case (§3.2.3) searches a constrained transformation space;
//! if the enumerated space violated its own dependency condition
//! (`unroll ≤ tile_k`, legal tile/unroll sets, thread bounds) the tuner
//! would chase phantom configurations. Parameterized `check_*` functions
//! stay public for `pstack-analyze` fixtures; [`invariants`] packages them
//! over the shipped spaces.

use crate::kernelmodel::KernelConfig;
use pstack_diag::{Diagnostic, InvariantCheck};

/// Layer tag used by all application diagnostics.
pub const LAYER: &str = "application";

/// Check the kernel transformation space for `max_threads`: non-empty,
/// contains the baseline, and every enumerated point satisfies its own
/// dependency condition.
pub fn check_kernel_space(rule: &str, max_threads: usize, path: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if max_threads == 0 {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            "kernel space with max_threads = 0 is empty".to_string(),
        ));
        return out;
    }
    let space = KernelConfig::space(max_threads);
    if space.is_empty() {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            format!("enumerated kernel space for max_threads={max_threads} is empty"),
        ));
    }
    for cfg in &space {
        if !cfg.is_valid(max_threads) {
            out.push(Diagnostic::error(
                rule,
                LAYER,
                path,
                format!("enumerated config violates its own dependency condition: {cfg:?}"),
            ));
            break;
        }
    }
    if !space.contains(&KernelConfig::baseline(1)) {
        out.push(Diagnostic::warn(
            rule,
            LAYER,
            path,
            "baseline (-O2) configuration is not reachable in the enumerated space".to_string(),
        ));
    }
    out
}

/// The application layer's invariant contributions, over shipped spaces.
pub fn invariants() -> Vec<InvariantCheck> {
    vec![InvariantCheck::new(
        "INV-AP-001",
        LAYER,
        "pstack_apps::KernelConfig::space(24)",
        "the kernel transformation space is non-empty and self-consistent",
        || check_kernel_space("INV-AP-001", 24, "pstack_apps::KernelConfig::space(24)"),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_space_holds() {
        for inv in invariants() {
            assert!(inv.run().is_empty(), "{} violated: {:?}", inv.id, inv.run());
        }
    }

    #[test]
    fn zero_threads_flagged() {
        assert!(!check_kernel_space("X", 0, "p").is_empty());
    }
}
