//! The runtime-agent interface and the arbitrated control facade.
//!
//! A [`RuntimeAgent`] is a job-level tuner (GEOPM-, COUNTDOWN-, MERIC-like).
//! It receives hooks from the [`crate::exec::JobRunner`] — job start/end,
//! region entries (PMPI/OMPT-interception-style) and periodic control — and
//! actuates node knobs through [`ArbitratedNodes`], which enforces knob
//! ownership (the §3.2.7 conflict-avoidance layer).

use crate::arbiter::{AgentId, Arbiter};
use pstack_hwmodel::{DutyCycle, PhaseMix};
use pstack_node::{NodeManager, Signal};
use pstack_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Hardware knob categories subject to arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KnobKind {
    /// Core frequency limit (DVFS).
    CoreFreq,
    /// Temporary MPI-phase frequency override, stacked under [`KnobKind::CoreFreq`]
    /// (effective = min of the two) — the §3.2.7 coexistence slot.
    MpiFreqOverride,
    /// Uncore frequency.
    Uncore,
    /// Duty-cycle (clock) modulation.
    Duty,
    /// Node/package power cap.
    PowerCap,
}

/// Telemetry snapshot handed to agents at control time. All per-node vectors
/// are indexed by the job-local node index; values are cumulative since job
/// start, so agents compute their own window deltas.
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// Current simulated time.
    pub now: SimTime,
    /// Time since job start.
    pub elapsed: SimDuration,
    /// Per-node instantaneous power, watts.
    pub node_power_w: Vec<f64>,
    /// Per-node cumulative work completed.
    pub node_progress: Vec<f64>,
    /// Per-node cumulative seconds spent waiting at MPI barriers.
    pub node_wait_s: Vec<f64>,
    /// Per-node effective core frequency, GHz.
    pub node_freq_ghz: Vec<f64>,
    /// Per-node cumulative energy attributable to this job, joules.
    pub node_energy_j: Vec<f64>,
    /// Region each node is currently in (`None` once complete).
    pub current_regions: Vec<Option<String>>,
}

impl JobTelemetry {
    /// Total job power, watts.
    pub fn total_power_w(&self) -> f64 {
        self.node_power_w.iter().sum()
    }

    /// Total job energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.node_energy_j.iter().sum()
    }

    /// Index of the node with the least progress (the straggler).
    pub fn straggler(&self) -> usize {
        self.node_progress
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty job")
    }
}

/// Arbitrated control surface over the job's nodes.
///
/// Every setter returns whether the write was applied; `false` means the
/// arbiter rejected it because another agent owns the knob.
pub struct ArbitratedNodes<'a> {
    nodes: &'a mut [NodeManager],
    arbiter: &'a Arbiter,
    agent: AgentId,
    now: SimTime,
}

impl<'a> ArbitratedNodes<'a> {
    /// Build the facade for one agent (called by the runner).
    pub fn new(
        nodes: &'a mut [NodeManager],
        arbiter: &'a Arbiter,
        agent: AgentId,
        now: SimTime,
    ) -> Self {
        ArbitratedNodes {
            nodes,
            arbiter,
            agent,
            now,
        }
    }

    /// Number of nodes in the job.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read a signal from node `idx` (reads are never arbitrated).
    pub fn read(&self, idx: usize, signal: Signal) -> f64 {
        self.nodes[idx].read(signal)
    }

    /// Set a core-frequency ceiling on node `idx`.
    pub fn set_freq_limit_ghz(&mut self, idx: usize, ghz: f64) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::CoreFreq) {
            return false;
        }
        self.nodes[idx].set_freq_limit_ghz(ghz);
        true
    }

    /// Release the core-frequency ceiling on node `idx`.
    pub fn clear_freq_limit(&mut self, idx: usize) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::CoreFreq) {
            return false;
        }
        self.nodes[idx].clear_freq_limit();
        true
    }

    /// Apply a temporary MPI frequency override on node `idx` (stacked under
    /// the base limit; releasing it never disturbs the base limit).
    pub fn set_mpi_freq_override(&mut self, idx: usize, ghz: f64) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::MpiFreqOverride) {
            return false;
        }
        self.nodes[idx].set_freq_override_ghz(ghz);
        true
    }

    /// Release the MPI frequency override on node `idx`.
    pub fn clear_mpi_freq_override(&mut self, idx: usize) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::MpiFreqOverride) {
            return false;
        }
        self.nodes[idx].clear_freq_override();
        true
    }

    /// Set the uncore frequency index on node `idx`.
    pub fn set_uncore_idx(&mut self, idx: usize, uncore: usize) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::Uncore) {
            return false;
        }
        self.nodes[idx].set_uncore_idx(uncore);
        true
    }

    /// Set duty-cycle modulation on node `idx`.
    pub fn set_duty(&mut self, idx: usize, duty: DutyCycle) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::Duty) {
            return false;
        }
        self.nodes[idx].set_duty(duty);
        true
    }

    /// Set a node power cap on node `idx`, watts.
    pub fn set_power_cap(&mut self, idx: usize, watts: f64, window: SimDuration) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::PowerCap) {
            return false;
        }
        self.nodes[idx].set_power_limit(self.now, watts, window);
        true
    }

    /// Remove the node power cap on node `idx`.
    pub fn clear_power_cap(&mut self, idx: usize) -> bool {
        if !self.arbiter.allows(self.agent, KnobKind::PowerCap) {
            return false;
        }
        self.nodes[idx].clear_power_limit();
        true
    }
}

/// A job-level runtime system.
///
/// `Send` is a supertrait: agents ride inside running jobs, and fleet-scale
/// drains partition enclaves (with their running jobs) across worker
/// threads ([`EnclaveSet::run_until_drained_parallel`] in `pstack-rm`).
pub trait RuntimeAgent: Send {
    /// Runtime name for traces and reports.
    fn name(&self) -> &str;

    /// The knob kinds this runtime actuates (claimed at job start).
    fn knobs(&self) -> Vec<KnobKind>;

    /// How often [`RuntimeAgent::on_control`] fires.
    fn control_period(&self) -> SimDuration {
        SimDuration::from_millis(500)
    }

    /// Job is starting on `ctl.n_nodes()` nodes.
    fn on_job_start(&mut self, _ctl: &mut ArbitratedNodes<'_>) {}

    /// Node `node` entered region `region` with hardware mixture `mix`.
    /// The pseudo-region `"mpi_barrier_wait"` marks barrier slack.
    fn on_region_enter(
        &mut self,
        _now: SimTime,
        _node: usize,
        _region: &str,
        _mix: &PhaseMix,
        _ctl: &mut ArbitratedNodes<'_>,
    ) {
    }

    /// Periodic control with a fresh telemetry snapshot.
    fn on_control(
        &mut self,
        _now: SimTime,
        _telemetry: &JobTelemetry,
        _ctl: &mut ArbitratedNodes<'_>,
    ) {
    }

    /// Job finished; restore any knobs the runtime changed.
    fn on_job_end(&mut self, _ctl: &mut ArbitratedNodes<'_>) {}
}

/// The pseudo-region name used for MPI barrier slack.
pub const BARRIER_REGION: &str = "mpi_barrier_wait";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterMode;
    use pstack_hwmodel::{Node, NodeConfig, NodeId};

    fn nodes(n: usize) -> Vec<NodeManager> {
        (0..n)
            .map(|i| NodeManager::new(Node::nominal(NodeId(i), NodeConfig::server_default())))
            .collect()
    }

    #[test]
    fn facade_reads_and_writes() {
        let mut ns = nodes(2);
        let arb = Arbiter::new(ArbiterMode::Gated);
        let mut ctl = ArbitratedNodes::new(&mut ns, &arb, 0, SimTime::ZERO);
        assert_eq!(ctl.n_nodes(), 2);
        assert!(ctl.set_freq_limit_ghz(1, 2.0));
        assert_eq!(ns[1].freq_limit_ghz(), Some(2.0));
    }

    #[test]
    fn arbitration_blocks_foreign_writes() {
        let mut ns = nodes(1);
        let mut arb = Arbiter::new(ArbiterMode::Gated);
        arb.claim(0, KnobKind::CoreFreq);
        let mut ctl = ArbitratedNodes::new(&mut ns, &arb, 1, SimTime::ZERO);
        assert!(!ctl.set_freq_limit_ghz(0, 2.0));
        assert!(!ctl.clear_freq_limit(0));
        assert_eq!(ns[0].freq_limit_ghz(), None);
    }

    #[test]
    fn telemetry_helpers() {
        let t = JobTelemetry {
            now: SimTime::ZERO,
            elapsed: SimDuration::ZERO,
            node_power_w: vec![100.0, 200.0],
            node_progress: vec![5.0, 3.0],
            node_wait_s: vec![0.0, 0.0],
            node_freq_ghz: vec![2.4, 2.4],
            node_energy_j: vec![10.0, 20.0],
            current_regions: vec![None, None],
        };
        assert_eq!(t.total_power_w(), 300.0);
        assert_eq!(t.total_energy_j(), 30.0);
        assert_eq!(t.straggler(), 1);
    }
}
