//! LULESH-like malleable proxy application (§3.2.5).
//!
//! The paper's IRM/EPOP use case needs a *dynamic* application whose resources
//! can be redistributed at phase boundaries, subject to application
//! constraints — it names LULESH's requirement of a cubic number of processes
//! explicitly. This model is a Lagrangian-hydrodynamics-shaped timestep loop
//! (stress/hourglass compute, nodal gather memory traffic, halo exchange)
//! that strong-scales across the allocated nodes.

use crate::mpi::MpiModel;
use crate::workload::{AppModel, NodeCountRule, Phase, Workload};
use pstack_hwmodel::PhaseMix;
use serde::{Deserialize, Serialize};

/// A LULESH-like timestep-loop application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lulesh {
    /// Total problem work across all nodes, reference node-seconds.
    pub total_work: f64,
    /// Number of timesteps the work is divided into.
    pub timesteps: usize,
    /// Communication model.
    pub mpi: MpiModel,
}

impl Lulesh {
    /// A medium problem: 600 node-seconds over 150 timesteps.
    pub fn medium() -> Self {
        Lulesh {
            total_work: 600.0,
            timesteps: 150,
            mpi: MpiModel::typical(),
        }
    }

    /// Construct with explicit size.
    ///
    /// # Panics
    /// Panics on non-positive work or zero timesteps.
    pub fn new(total_work: f64, timesteps: usize) -> Self {
        assert!(total_work > 0.0, "work must be positive");
        assert!(timesteps > 0, "need at least one timestep");
        Lulesh {
            total_work,
            timesteps,
            mpi: MpiModel::typical(),
        }
    }
}

impl AppModel for Lulesh {
    fn name(&self) -> &str {
        "lulesh"
    }

    /// Strong-scaled: per-node work shrinks with allocation size while the
    /// communication share grows.
    fn workload(&self, n_nodes: usize) -> Workload {
        assert!(
            self.node_rule().allows(n_nodes),
            "LULESH requires a cubic node count, got {n_nodes}"
        );
        let per_node_total = self.total_work / n_nodes as f64;
        let per_step = per_node_total / self.timesteps as f64;
        let comm = self.mpi.comm_fraction(n_nodes);
        let body = [
            Phase::new(
                "calc_force_stress",
                PhaseMix::new(0.85, 0.15, 0.0, 0.0),
                per_step * 0.55,
            ),
            Phase::new(
                "nodal_gather_scatter",
                PhaseMix::new(0.20, 0.80, 0.0, 0.0),
                per_step * (0.45 - 0.35 * comm),
            ),
            Phase::new(
                "halo_exchange",
                PhaseMix::new(0.0, 0.10, 0.90, 0.0),
                (per_step * 0.35 * comm).max(1e-6),
            ),
        ];
        let mut w = Workload::new();
        w.repeat(&body, self.timesteps);
        w
    }

    fn node_rule(&self) -> NodeCountRule {
        NodeCountRule::Cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_rule_enforced() {
        let app = Lulesh::medium();
        assert!(app.node_rule().allows(8));
        assert!(app.node_rule().allows(27));
        assert!(!app.node_rule().allows(10));
    }

    #[test]
    #[should_panic(expected = "cubic")]
    fn non_cubic_workload_panics() {
        Lulesh::medium().workload(10);
    }

    #[test]
    fn strong_scaling_divides_work() {
        let app = Lulesh::medium();
        let w1 = app.workload(1);
        let w8 = app.workload(8);
        // Per-node work at 8 nodes ≈ 1/8 of single-node (comm shifts shares).
        let ratio = w8.total_work() / w1.total_work();
        assert!((ratio - 0.125).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn comm_share_grows_with_scale() {
        let app = Lulesh::medium();
        let share = |n: usize| {
            let w = app.workload(n);
            w.phases()
                .iter()
                .filter(|p| p.region == "halo_exchange")
                .map(|p| p.work)
                .sum::<f64>()
                / w.total_work()
        };
        assert!(share(27) > share(1));
    }

    #[test]
    fn timestep_structure() {
        let app = Lulesh::new(100.0, 10);
        let w = app.workload(1);
        assert_eq!(w.len(), 30); // 3 phases × 10 steps
        assert_eq!(
            w.regions(),
            vec!["calc_force_stress", "nodal_gather_scatter", "halo_exchange"]
        );
    }
}
