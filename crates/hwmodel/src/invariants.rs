//! Node-hardware invariants: the physical feasibility envelope.
//!
//! The analyzer's knob-bound and power-model rules are grounded here, where
//! the hardware knowledge lives: what frequency range is physically
//! plausible, what a node can draw between idle and peak, and which shapes a
//! power model must have (monotone `P(f)`, non-negative leakage). The
//! parameterized `check_*` functions are public so `pstack-analyze` fixtures
//! can feed deliberately-broken inputs; [`invariants`] packages them over
//! the shipped server defaults.

use crate::node::NodeConfig;
use crate::phase::{PhaseKind, PhaseMix};
use crate::power::PowerModel;
use crate::pstate::{DutyCycle, FreqLadder, PStateTable};
use pstack_diag::{Diagnostic, InvariantCheck};

/// Layer tag used by all hwmodel diagnostics.
pub const LAYER: &str = "node";

/// Physically plausible core/uncore frequency range, GHz. Anything a ladder
/// offers outside this band is a configuration bug, not a real P-state.
pub const FREQ_ENVELOPE_GHZ: (f64, f64) = (0.4, 6.0);

/// The power envelope of a node: what it draws doing nothing and the most
/// it can draw flat out. Power caps only make sense inside this band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEnvelope {
    /// All-idle node power, watts.
    pub idle_w: f64,
    /// Peak node power (all cores busy, top P-state, hot), watts.
    pub peak_w: f64,
}

/// Compute the power envelope of a node configuration.
pub fn power_envelope(cfg: &NodeConfig) -> PowerEnvelope {
    let pkg = &cfg.package;
    let pm = &pkg.power;
    let compute = PhaseMix::pure(PhaseKind::ComputeBound);
    let peak_pkg = pm.package_w(
        &pkg.pstates,
        pkg.pstates.top_idx(),
        DutyCycle::FULL,
        pkg.n_cores,
        &compute,
        pkg.uncore.max(),
        85.0,
    ) + pm.dram_w(&PhaseMix::pure(PhaseKind::MemoryBound), 1.0);
    let idle_pkg = pm.uncore_w(pkg.uncore.min())
        + pm.leakage_w(pm.t_ref_c)
        + pm.dram_w(&PhaseMix::pure(PhaseKind::ComputeBound), 0.0);
    PowerEnvelope {
        idle_w: cfg.n_packages as f64 * idle_pkg + cfg.misc_power_w,
        peak_w: cfg.n_packages as f64 * peak_pkg + cfg.misc_power_w,
    }
}

/// Check a frequency ladder against the physical envelope.
pub fn check_freq_ladder(rule: &str, ladder: &FreqLadder, path: &str) -> Vec<Diagnostic> {
    let (lo, hi) = FREQ_ENVELOPE_GHZ;
    let mut out = Vec::new();
    for &f in ladder.freqs() {
        if !(lo..=hi).contains(&f) {
            out.push(Diagnostic::error(
                rule,
                LAYER,
                path,
                format!("ladder rung {f} GHz outside the physical envelope [{lo}, {hi}] GHz"),
            ));
        }
    }
    out
}

/// Check a P-state table: ladder inside the envelope and a sane V-f range.
pub fn check_pstate_table(rule: &str, ps: &PStateTable, path: &str) -> Vec<Diagnostic> {
    let mut out = check_freq_ladder(rule, ps.ladder(), path);
    let (v_bottom, v_top) = (ps.voltage(0), ps.voltage(ps.top_idx()));
    if !(0.4..=1.6).contains(&v_bottom) || !(0.4..=1.6).contains(&v_top) {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            format!("V-f curve endpoints ({v_bottom} V, {v_top} V) outside plausible 0.4–1.6 V"),
        ));
    }
    out
}

/// Check a power model against a P-state table: `P(f)` must be monotone
/// non-decreasing at a fixed phase mix, leakage must be non-negative over
/// the operating temperature range, and all coefficients non-negative.
pub fn check_power_model(
    rule: &str,
    pm: &PowerModel,
    ps: &PStateTable,
    path: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mix = PhaseMix::pure(PhaseKind::ComputeBound);
    let mut prev = f64::NEG_INFINITY;
    for idx in 0..ps.len() {
        let p = pm.core_dynamic_w(ps, idx, DutyCycle::FULL, 24, &mix);
        if p < prev - 1e-9 {
            out.push(Diagnostic::error(
                rule,
                LAYER,
                path,
                format!(
                    "P(f) not monotone: core power drops to {p:.2} W at rung {idx} ({} GHz)",
                    ps.freq(idx)
                ),
            ));
            break;
        }
        prev = p;
    }
    for t_c in [-20.0, 25.0, 50.0, 85.0, 110.0] {
        let leak = pm.leakage_w(t_c);
        if leak < 0.0 || !leak.is_finite() {
            out.push(Diagnostic::error(
                rule,
                LAYER,
                path,
                format!("leakage {leak} W at {t_c} °C must be finite and non-negative"),
            ));
        }
    }
    if pm.c_dyn <= 0.0 {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            format!(
                "dynamic-power coefficient c_dyn = {} must be positive",
                pm.c_dyn
            ),
        ));
    }
    if pm.uncore_w_per_ghz < 0.0 || pm.dram_idle_w < 0.0 || pm.dram_w_per_intensity < 0.0 {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            "uncore/DRAM power coefficients must be non-negative".to_string(),
        ));
    }
    out
}

/// Check that a power cap sits inside the node's feasibility envelope:
/// above the idle floor (a lower cap can never be honoured) and at or below
/// peak ("cap ≤ TDP" — a higher cap never binds and usually encodes a unit
/// mistake).
pub fn check_cap_in_envelope(
    rule: &str,
    cap_w: f64,
    cfg: &NodeConfig,
    path: &str,
) -> Vec<Diagnostic> {
    let env = power_envelope(cfg);
    let mut out = Vec::new();
    if cap_w < env.idle_w {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            format!(
                "cap {cap_w} W is below the idle floor {:.0} W and can never be honoured",
                env.idle_w
            ),
        ));
    } else if cap_w > env.peak_w {
        out.push(Diagnostic::error(
            rule,
            LAYER,
            path,
            format!(
                "cap {cap_w} W exceeds node peak {:.0} W (cap ≤ TDP); likely a unit mistake",
                env.peak_w
            ),
        ));
    }
    out
}

/// The hwmodel layer's invariant contributions, over the shipped defaults.
pub fn invariants() -> Vec<InvariantCheck> {
    vec![
        InvariantCheck::new(
            "INV-HW-001",
            LAYER,
            "pstack_hwmodel::PStateTable::server_default",
            "core P-state ladder lies inside the physical frequency/voltage envelope",
            || {
                check_pstate_table(
                    "INV-HW-001",
                    &PStateTable::server_default(),
                    "pstack_hwmodel::PStateTable::server_default",
                )
            },
        ),
        InvariantCheck::new(
            "INV-HW-002",
            LAYER,
            "pstack_hwmodel::NodeConfig::server_default.uncore",
            "uncore ladder lies inside the physical frequency envelope",
            || {
                check_freq_ladder(
                    "INV-HW-002",
                    &NodeConfig::server_default().package.uncore,
                    "pstack_hwmodel::NodeConfig::server_default.uncore",
                )
            },
        ),
        InvariantCheck::new(
            "INV-HW-003",
            LAYER,
            "pstack_hwmodel::PowerModel::server_default",
            "package power is monotone in frequency with non-negative leakage",
            || {
                check_power_model(
                    "INV-HW-003",
                    &PowerModel::server_default(),
                    &PStateTable::server_default(),
                    "pstack_hwmodel::PowerModel::server_default",
                )
            },
        ),
        InvariantCheck::new(
            "INV-HW-004",
            LAYER,
            "pstack_hwmodel::NodeConfig::server_default",
            "node envelope is well-ordered: 0 < idle < peak",
            || {
                let env = power_envelope(&NodeConfig::server_default());
                if env.idle_w > 0.0 && env.idle_w < env.peak_w {
                    Vec::new()
                } else {
                    vec![Diagnostic::error(
                        "INV-HW-004",
                        LAYER,
                        "pstack_hwmodel::NodeConfig::server_default",
                        format!(
                            "degenerate envelope: idle {:.0} W vs peak {:.0} W",
                            env.idle_w, env.peak_w
                        ),
                    )]
                }
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_defaults_hold() {
        for inv in invariants() {
            assert!(inv.run().is_empty(), "{} violated: {:?}", inv.id, inv.run());
        }
    }

    #[test]
    fn envelope_is_sane() {
        let env = power_envelope(&NodeConfig::server_default());
        assert!((80.0..200.0).contains(&env.idle_w), "idle {}", env.idle_w);
        assert!((380.0..650.0).contains(&env.peak_w), "peak {}", env.peak_w);
    }

    #[test]
    fn broken_power_model_is_flagged() {
        let mut pm = PowerModel::server_default();
        pm.c_dyn = -1.0;
        let ds = check_power_model("X", &pm, &PStateTable::server_default(), "p");
        assert!(!ds.is_empty());
        assert!(ds
            .iter()
            .any(|d| d.message.contains("monotone") || d.message.contains("c_dyn")));
    }

    #[test]
    fn out_of_envelope_cap_is_flagged() {
        let cfg = NodeConfig::server_default();
        assert!(!check_cap_in_envelope("X", 50.0, &cfg, "p").is_empty());
        assert!(!check_cap_in_envelope("X", 250_000.0, &cfg, "p").is_empty());
        assert!(check_cap_in_envelope("X", 300.0, &cfg, "p").is_empty());
    }

    #[test]
    fn negative_coefficients_are_flagged() {
        // leakage_w clamps non-negative, so the coefficient checks are the
        // definitive signal for sign mistakes.
        let mut pm = PowerModel::server_default();
        pm.uncore_w_per_ghz = -1.0;
        assert!(!check_power_model("X", &pm, &PStateTable::server_default(), "p").is_empty());
    }
}
