//! Simulated annealing.

use super::{SearchAlgorithm, SearchState};
use crate::db::PerfDatabase;
use crate::space::{Config, ParamSpace};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// Metropolis-accept simulated annealing with geometric cooling.
///
/// State advances one suggestion at a time: the previous suggestion's
/// objective (read back from the database) decides whether the walker moves.
#[derive(Debug)]
pub struct AnnealingSearch {
    /// Current walker position.
    state: Option<Config>,
    /// The configuration suggested last call (its result decides the move).
    pending: Option<Config>,
    /// Current temperature (in objective units).
    temperature: f64,
    /// Multiplicative cooling per accepted step.
    cooling: f64,
    /// Floor temperature.
    t_min: f64,
}

impl AnnealingSearch {
    /// Construct with an initial temperature and cooling rate.
    ///
    /// `t0` should be on the order of typical objective differences; the
    /// default in [`AnnealingSearch::default_schedule`] adapts from the first
    /// observations instead.
    pub fn new(t0: f64, cooling: f64) -> Self {
        assert!(t0 > 0.0 && (0.0..1.0).contains(&cooling));
        AnnealingSearch {
            state: None,
            pending: None,
            temperature: t0,
            cooling,
            t_min: t0 * 1e-4,
        }
    }

    /// A general-purpose schedule: starts hot relative to early observations.
    pub fn default_schedule() -> Self {
        Self::new(1.0, 0.97)
    }
}

impl SearchState for AnnealingSearch {
    fn save_state(&self) -> Value {
        // `cooling`/`t_min` are construction-time configuration the resume
        // caller re-supplies; only the walker's mutable position is state.
        Value::Map(vec![
            ("state".to_string(), self.state.to_value()),
            ("pending".to_string(), self.pending.to_value()),
            ("temperature".to_string(), self.temperature.to_value()),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        self.state = Option::<Config>::from_value(state.field("state"))
            .map_err(|e| format!("annealing walker state: {e}"))?;
        self.pending = Option::<Config>::from_value(state.field("pending"))
            .map_err(|e| format!("annealing pending move: {e}"))?;
        self.temperature = f64::from_value(state.field("temperature"))
            .map_err(|e| format!("annealing temperature: {e}"))?;
        Ok(())
    }
}

impl SearchAlgorithm for AnnealingSearch {
    fn name(&self) -> &str {
        "simulated-annealing"
    }

    fn suggest(
        &mut self,
        space: &ParamSpace,
        db: &PerfDatabase,
        rng: &mut SmallRng,
    ) -> Option<Config> {
        // Resolve the pending move using the database.
        if let Some(pend) = self.pending.take() {
            let pend_obj = db.lookup(&pend);
            let cur_obj = self.state.as_ref().and_then(|s| db.lookup(s));
            match (pend_obj, cur_obj) {
                (Some(p), Some(c)) => {
                    let accept = p <= c || {
                        let prob = ((c - p) / self.temperature).exp();
                        rng.gen_bool(prob.clamp(0.0, 1.0))
                    };
                    if accept {
                        self.state = Some(pend);
                    }
                    self.temperature = (self.temperature * self.cooling).max(self.t_min);
                }
                (Some(_), None) => self.state = Some(pend),
                _ => {}
            }
        }
        let state = match &self.state {
            Some(s) => s.clone(),
            None => {
                let s = space.sample(rng);
                self.pending = Some(s.clone());
                return Some(s);
            }
        };
        // Propose a random valid neighbour (or a jump if isolated).
        let neighbors = space.neighbors(&state);
        let proposal = neighbors
            .choose(rng)
            .cloned()
            .unwrap_or_else(|| space.sample(rng));
        self.pending = Some(proposal.clone());
        Some(proposal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rugged(c: &Config) -> f64 {
        // A bumpy 1-D landscape with global minimum at 17 of 0..32.
        let x = c[0] as f64;
        (x - 17.0).abs() + 3.0 * ((x * 0.9).sin().abs())
    }

    #[test]
    fn anneals_to_near_optimum() {
        let s = ParamSpace::new().with(Param::ints("x", 0..32));
        let mut db = PerfDatabase::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut alg = AnnealingSearch::default_schedule();
        for _ in 0..150 {
            let c = alg.suggest(&s, &db, &mut rng).unwrap();
            let o = rugged(&c);
            db.record(c, o, HashMap::new());
        }
        let best = db.best().unwrap();
        assert!(
            best.objective <= rugged(&vec![17]) + 1.5,
            "best {} at {:?}",
            best.objective,
            best.config
        );
    }

    #[test]
    fn temperature_cools() {
        let s = ParamSpace::new().with(Param::ints("x", 0..8));
        let mut db = PerfDatabase::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut alg = AnnealingSearch::new(10.0, 0.9);
        for _ in 0..30 {
            let c = alg.suggest(&s, &db, &mut rng).unwrap();
            db.record(c, 1.0, HashMap::new());
        }
        assert!(alg.temperature < 10.0);
    }

    #[test]
    #[should_panic]
    fn invalid_schedule_panics() {
        AnnealingSearch::new(0.0, 0.9);
    }
}
