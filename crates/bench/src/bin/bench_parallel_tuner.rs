//! Wall-clock benchmark of the parallel batch tuner: the same 100-eval
//! random search over the Hypre co-tuning space, serially and with 8
//! workers. RandomSearch keeps the observation set identical across drivers
//! (batch-aware sampling replays the serial RNG stream), so the comparison
//! isolates evaluation throughput.
//!
//! Two evaluator variants are timed:
//!
//! - `plopper`: the full-stack Hypre simulation plus a modeled 100 ms launch
//!   round-trip per candidate. In the paper's loop the plopper *compiles and
//!   executes* each candidate — from the tuner's point of view that is a
//!   latency-dominated remote call, which the worker pool overlaps. This is
//!   the headline number.
//! - `compute_only`: the bare simulation, measuring how much of the pure
//!   model computation the host's cores can overlap (≈1x on a single-core
//!   container, near-linear on real multi-core hardware).

use powerstack_core::cotune::HypreCoTune;
use powerstack_core::interfaces::Objective;
use pstack_autotune::{RandomSearch, TuneReport, Tuner};
use serde::Serialize;
use std::time::{Duration, Instant};

const MAX_EVALS: usize = 100;
const SEED: u64 = 20200906;
const WORKERS: usize = 8;
const LAUNCH_LATENCY: Duration = Duration::from_millis(100);

#[derive(Debug, Serialize)]
struct Comparison {
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
    results_identical: bool,
}

#[derive(Debug, Serialize)]
struct ParallelBenchResult {
    max_evals: usize,
    seed: u64,
    workers: usize,
    host_cores: usize,
    launch_latency_ms: u64,
    /// Hypre simulation + modeled plopper launch latency (headline).
    plopper: Comparison,
    /// Bare Hypre simulation (bounded by physical cores).
    compute_only: Comparison,
    evals: usize,
    best_objective: f64,
}

fn compare(
    cotune: &HypreCoTune,
    launch_latency: Option<Duration>,
    trace: &std::sync::Arc<pstack_autotune::TraceCollector>,
) -> (Comparison, TuneReport) {
    let evaluate = |space: &pstack_autotune::ParamSpace, cfg: &pstack_autotune::Config| {
        if let Some(lat) = launch_latency {
            std::thread::sleep(lat);
        }
        cotune.evaluate(space, cfg)
    };
    let tuner = Tuner::new(cotune.space())
        .max_evals(MAX_EVALS)
        .seed(SEED)
        .with_trace(std::sync::Arc::clone(trace));

    let t0 = Instant::now();
    let serial = tuner
        .run(&mut RandomSearch::new(), evaluate)
        .expect("joint space is non-empty");
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = tuner
        .run_parallel(&mut RandomSearch::new(), WORKERS, evaluate)
        .expect("joint space is non-empty");
    let parallel_s = t1.elapsed().as_secs_f64();

    let results_identical = serial.db.observations() == parallel.db.observations();
    (
        Comparison {
            serial_s,
            parallel_s,
            speedup: serial_s / parallel_s.max(1e-9),
            results_identical,
        },
        parallel,
    )
}

fn main() {
    pstack_analyze::startup_gate();
    let cotune = HypreCoTune::new(Objective::MinTime);
    let ((compute_only, _), (plopper, report)) =
        pstack_bench::traced("bench_parallel_tuner", |tc| {
            let compute = pstack_bench::timed("compute_only", || compare(&cotune, None, tc));
            let plopper =
                pstack_bench::timed("plopper", || compare(&cotune, Some(LAUNCH_LATENCY), tc));
            (compute, plopper)
        });

    let r = ParallelBenchResult {
        max_evals: MAX_EVALS,
        seed: SEED,
        workers: WORKERS,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        launch_latency_ms: u64::try_from(LAUNCH_LATENCY.as_millis())
            .expect("launch latency fits in u64 milliseconds"),
        plopper,
        compute_only,
        evals: report.evals,
        best_objective: report.best_objective,
    };
    let rendered = format!(
        "PARALLEL BATCH TUNER: {evals} evals over the Hypre co-tune space (seed {seed}, {workers} workers, {cores} host core(s))\n\
         evaluator                    |  serial_s | parallel_s | speedup | identical\n\
         plopper (sim + {lat} ms launch) | {ps:>9.2} | {pp:>10.2} | {px:>6.2}x | {pi}\n\
         compute only (bare sim)      | {cs:>9.2} | {cp:>10.2} | {cx:>6.2}x | {ci}\n",
        evals = r.max_evals,
        seed = r.seed,
        workers = r.workers,
        cores = r.host_cores,
        lat = r.launch_latency_ms,
        ps = r.plopper.serial_s,
        pp = r.plopper.parallel_s,
        px = r.plopper.speedup,
        pi = r.plopper.results_identical,
        cs = r.compute_only.serial_s,
        cp = r.compute_only.parallel_s,
        cx = r.compute_only.speedup,
        ci = r.compute_only.results_identical,
    );
    pstack_bench::emit("bench_parallel_tuner", &rendered, &r);
    assert!(
        r.plopper.results_identical && r.compute_only.results_identical,
        "parallel run diverged from serial"
    );
}
