//! Seed-armed schedule perturbation.
//!
//! [`arm`] switches the process into chaos/trace mode: every instrumented
//! acquisition in [`crate::primitives`] records into the lock-order
//! [`crate::graph`] and may execute a deterministic seeded yield/backoff,
//! so two different seeds drive two genuinely different thread
//! interleavings of the same workload. The *decision stream* is a pure
//! function of `(seed, site, per-thread op index)` — the same splitmix64
//! construction `pstack_faults::FaultDice` uses — which is what makes a
//! schedule grid reproducible enough to bisect.
//!
//! Arming is exclusive: the guard holds a process-wide mutex, so two
//! explorer grids in one test binary serialize instead of polluting each
//! other's graphs. Disarmed (the default), the only cost on a lock or
//! atomic operation is one relaxed atomic load.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::graph;

static ARMED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
static ARM_EXCL: Mutex<()> = Mutex::new(());

thread_local! {
    /// Sites this thread currently holds, innermost last. Entries carry a
    /// unique token so out-of-order releases unwind correctly.
    static HELD: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread operation index feeding the yield decision stream.
    static OP_INDEX: Cell<u64> = const { Cell::new(0) };
    /// Per-thread token allocator for held-stack entries.
    static NEXT_TOKEN: Cell<u64> = const { Cell::new(1) };
}

/// RAII armed-mode guard; dropping it disarms chaos mode.
pub struct ChaosGuard {
    _excl: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
    }
}

/// Arm chaos mode with `seed`. Blocks until any other armed guard drops
/// (arming is process-exclusive), then enables recording + perturbation
/// until the returned guard drops.
pub fn arm(seed: u64) -> ChaosGuard {
    let excl = ARM_EXCL.lock().unwrap_or_else(|e| e.into_inner());
    SEED.store(seed, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    ChaosGuard { _excl: excl }
}

/// Re-seed the decision stream mid-guard. The schedule explorer arms once
/// per grid and calls this per arm; callers must hold a [`ChaosGuard`].
pub fn reseed(seed: u64) {
    SEED.store(seed, Ordering::SeqCst);
}

/// Whether chaos mode is currently armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// splitmix64 — the workspace's standard cheap mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a site label.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic seeded yield/backoff at an instrumented operation on
/// `site`. Roughly one operation in three yields the scheduler one or more
/// times; one in sixteen spins a short backoff instead — enough to shake
/// loose ordering assumptions without drowning the workload.
pub(crate) fn maybe_perturb(site: &'static str) {
    let n = OP_INDEX.with(|c| {
        let v = c.get();
        c.set(v.wrapping_add(1));
        v
    });
    let roll = splitmix64(SEED.load(Ordering::Relaxed) ^ site_hash(site) ^ n);
    match roll % 16 {
        0..=4 => {
            for _ in 0..=(roll >> 8) % 3 {
                std::thread::yield_now();
            }
        }
        5 => {
            for _ in 0..((roll >> 8) % 64) {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// A held-stack entry created by [`on_acquired`]; hand it back to
/// [`on_released`] when the guard drops.
pub(crate) struct HeldToken {
    token: u64,
    site: &'static str,
    since: Instant,
}

/// Record that this thread acquired lock-kind `site`; feeds the lock-order
/// graph and pushes the per-thread held stack. Returns `None` when
/// disarmed (nothing to unwind on release).
pub(crate) fn on_acquired(site: &'static str) -> Option<HeldToken> {
    if !armed() {
        return None;
    }
    let held: Vec<&'static str> = HELD.with(|h| h.borrow().iter().map(|&(_, s)| s).collect());
    graph::record_acquisition(site, &held);
    let token = NEXT_TOKEN.with(|t| {
        let v = t.get();
        t.set(v + 1);
        v
    });
    HELD.with(|h| h.borrow_mut().push((token, site)));
    Some(HeldToken {
        token,
        site,
        since: Instant::now(),
    })
}

/// Unwind a held-stack entry (by token: guards may drop out of order) and
/// flag long critical sections.
pub(crate) fn on_released(entry: Option<HeldToken>) {
    let Some(entry) = entry else { return };
    HELD.with(|h| h.borrow_mut().retain(|&(t, _)| t != entry.token));
    let held_ns = u64::try_from(entry.since.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if held_ns > graph::LONG_HOLD_NS {
        let held: Vec<&'static str> = HELD.with(|h| h.borrow().iter().map(|&(_, s)| s).collect());
        graph::record_smell(graph::SmellKind::LongCriticalSection, entry.site, held);
    }
}

/// Record a non-holding acquisition (atomic op): counts the site and
/// perturbs, but takes no part in inversion detection.
pub(crate) fn on_atomic(site: &'static str) {
    if !armed() {
        return;
    }
    maybe_perturb(site);
    graph::record_acquisition(site, &[]);
}

/// Flag a `Condvar::wait` entered while holding locks other than the
/// condvar's own mutex (`waiting_on`'s guard is passed separately and
/// excluded from the held snapshot by token).
pub(crate) fn on_wait(condvar_site: &'static str, mutex_token: Option<&HeldToken>) {
    if !armed() {
        return;
    }
    let exclude = mutex_token.map(|t| t.token);
    let held: Vec<&'static str> = HELD.with(|h| {
        h.borrow()
            .iter()
            .filter(|&&(t, _)| Some(t) != exclude)
            .map(|&(_, s)| s)
            .collect()
    });
    if !held.is_empty() {
        graph::record_smell(graph::SmellKind::HeldAcrossWait, condvar_site, held);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_stream_is_a_pure_function_of_seed_site_and_index() {
        // The perturbation *decision* must replay: same inputs, same roll.
        let rolls: Vec<u64> = (0..64)
            .map(|n| splitmix64(42 ^ site_hash("trace.ring") ^ n))
            .collect();
        let again: Vec<u64> = (0..64)
            .map(|n| splitmix64(42 ^ site_hash("trace.ring") ^ n))
            .collect();
        assert_eq!(rolls, again);
        let other: Vec<u64> = (0..64)
            .map(|n| splitmix64(43 ^ site_hash("trace.ring") ^ n))
            .collect();
        assert_ne!(rolls, other, "different seeds must perturb differently");
    }

    #[test]
    fn arming_is_exclusive_and_raii() {
        let g = arm(7);
        assert!(armed());
        drop(g);
        // Holding the exclusivity lock keeps every other test from arming
        // while we assert the drop disarmed the mode.
        let _excl = ARM_EXCL.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!armed());
    }

    #[test]
    fn held_stack_survives_out_of_order_release() {
        let _g = arm(3);
        graph::reset();
        let a = on_acquired("site.a");
        let b = on_acquired("site.b");
        // Release the *outer* lock first; the inner entry must survive.
        on_released(a);
        let c = on_acquired("site.c");
        on_released(b);
        on_released(c);
        let snap = graph::snapshot();
        assert_eq!(snap.edges.get(&("site.a", "site.b")), Some(&1));
        assert_eq!(snap.edges.get(&("site.b", "site.c")), Some(&1));
        assert_eq!(snap.edges.get(&("site.a", "site.c")), None);
        graph::reset();
    }

    #[test]
    fn disarmed_acquisitions_record_nothing() {
        // Hold the exclusivity lock so no concurrent test can arm under us.
        let _excl = ARM_EXCL.lock().unwrap_or_else(|e| e.into_inner());
        ARMED.store(false, Ordering::SeqCst);
        assert!(!armed());
        assert!(on_acquired("site.unarmed").is_none());
    }
}
