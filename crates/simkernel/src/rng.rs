//! Deterministic, splittable randomness.
//!
//! Every stochastic component of the simulator (workload generators,
//! manufacturing variation, search algorithms) draws from its own RNG stream
//! derived from a single master seed and a stable component label. This gives
//! two essential properties:
//!
//! 1. **Reproducibility** — the same master seed reproduces the entire
//!    experiment bit-for-bit.
//! 2. **Insensitivity to composition** — adding a new component (with a new
//!    label) does not perturb the streams of existing components, so ablation
//!    experiments stay comparable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent RNG streams from a master seed and stable labels.
#[derive(Clone, Copy, Debug)]
pub struct SeedTree {
    master: u64,
}

impl SeedTree {
    /// Create a seed tree rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedTree { master }
    }

    /// The master seed this tree was rooted at.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed for the stream labelled `label`.
    ///
    /// Uses the SplitMix64 finalizer over `master ^ hash(label)`; SplitMix64's
    /// avalanche behaviour is what `rand` itself uses to expand small seeds.
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(self.master ^ h)
    }

    /// A ready-to-use [`SmallRng`] for the stream labelled `label`.
    pub fn rng(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(label))
    }

    /// A numbered variant of a labelled stream (e.g. one stream per node).
    pub fn rng_indexed(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(self.seed_for(label) ^ splitmix64(index)))
    }

    /// Derive a sub-tree, e.g. one per job, itself splittable further.
    pub fn subtree(&self, label: &str) -> SeedTree {
        SeedTree {
            master: self.seed_for(label),
        }
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let tree = SeedTree::new(42);
        let a: Vec<u64> = tree
            .rng("node")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = tree
            .rng("node")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let tree = SeedTree::new(42);
        assert_ne!(tree.seed_for("node"), tree.seed_for("job"));
        assert_ne!(tree.seed_for("node"), tree.seed_for("node2"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedTree::new(1).seed_for("x"),
            SeedTree::new(2).seed_for("x")
        );
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let tree = SeedTree::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            let v: u64 = tree.rng_indexed("node", i).gen();
            assert!(seen.insert(v), "collision at index {i}");
        }
    }

    #[test]
    fn subtree_isolation() {
        let tree = SeedTree::new(99);
        let j1 = tree.subtree("job1");
        let j2 = tree.subtree("job2");
        assert_ne!(j1.seed_for("phase"), j2.seed_for("phase"));
        // Subtree derivation is itself deterministic.
        assert_eq!(tree.subtree("job1").seed_for("phase"), j1.seed_for("phase"));
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // Flipping one input bit should change roughly half the output bits.
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "weak avalanche: {flipped}");
    }
}
