//! Hypre-like linear-solver configuration space and cost model (§3.2.1).
//!
//! The paper tunes a 27-point Laplacian from the Hypre test suite, whose knobs
//! are the solver, preconditioner, sub-solver options and smoother/coarsening
//! choices — "several thousand combinations ... selected at job launch". Its
//! empirical finding, which this model is built to reproduce, is that **the
//! best-case combination of tuning knobs is often inefficient when subject to
//! a hardware power constraint**: flop-rich preconditioners (ParaSails-style)
//! win at full frequency, while memory-bound multigrid (BoomerAMG-style)
//! barely slows down when a power cap clips the core clock.
//!
//! The convergence model is first-order: iteration counts by (solver ×
//! preconditioner) with multiplicative modifiers for the AMG sub-knobs, times
//! a per-iteration phase breakdown whose mixes drive the hardware model.

use crate::mpi::MpiModel;
use crate::workload::{AppModel, NodeCountRule, Phase, Workload};
use pstack_hwmodel::PhaseMix;
use serde::{Deserialize, Serialize};

/// Krylov solver choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverKind {
    /// Conjugate gradients.
    Pcg,
    /// Restarted GMRES.
    Gmres,
    /// Stabilized bi-conjugate gradients.
    BiCgStab,
}

/// Preconditioner choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preconditioner {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// Sparse approximate inverse — flop-rich application (compute-bound).
    ParaSails,
    /// Algebraic multigrid — bandwidth-hungry V-cycles (memory-bound).
    BoomerAmg,
}

/// AMG smoother (meaningful only with [`Preconditioner::BoomerAmg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Smoother {
    /// Weighted Jacobi: cheap, weaker.
    Jacobi,
    /// Hybrid Gauss–Seidel: the balanced default.
    GaussSeidel,
    /// Chebyshev polynomial: stronger, costlier.
    Chebyshev,
}

/// AMG coarsening (meaningful only with [`Preconditioner::BoomerAmg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoarsenType {
    /// Classical Falgout coarsening: best convergence, densest hierarchy.
    Falgout,
    /// PMIS: cheaper cycles, a few more iterations.
    Pmis,
    /// HMIS: between the two.
    Hmis,
}

/// A full Hypre configuration (one point of the §3.2.1 launch-time space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypreConfig {
    /// Krylov solver.
    pub solver: SolverKind,
    /// Preconditioner.
    pub precond: Preconditioner,
    /// AMG smoother.
    pub smoother: Smoother,
    /// AMG coarsening.
    pub coarsen: CoarsenType,
    /// AMG strong threshold (0.25 / 0.5 / 0.7).
    pub strong_threshold: f64,
}

impl HypreConfig {
    /// The library default: AMG-PCG with Falgout/Gauss–Seidel, θ = 0.25.
    pub fn default_config() -> Self {
        HypreConfig {
            solver: SolverKind::Pcg,
            precond: Preconditioner::BoomerAmg,
            smoother: Smoother::GaussSeidel,
            coarsen: CoarsenType::Falgout,
            strong_threshold: 0.25,
        }
    }

    /// Dependency condition (READEX ATP-style): AMG sub-knobs are only
    /// meaningful when the preconditioner is AMG; non-AMG configurations must
    /// carry the defaults so the space contains no aliased duplicates.
    pub fn is_valid(&self) -> bool {
        if !(0.0..1.0).contains(&self.strong_threshold) {
            return false;
        }
        if self.precond != Preconditioner::BoomerAmg {
            self.smoother == Smoother::GaussSeidel
                && self.coarsen == CoarsenType::Falgout
                && (self.strong_threshold - 0.25).abs() < 1e-9
        } else {
            true
        }
    }

    /// Enumerate the valid launch-time configuration space.
    pub fn space() -> Vec<HypreConfig> {
        let solvers = [SolverKind::Pcg, SolverKind::Gmres, SolverKind::BiCgStab];
        let preconds = [
            Preconditioner::None,
            Preconditioner::Jacobi,
            Preconditioner::ParaSails,
            Preconditioner::BoomerAmg,
        ];
        let smoothers = [Smoother::Jacobi, Smoother::GaussSeidel, Smoother::Chebyshev];
        let coarsens = [CoarsenType::Falgout, CoarsenType::Pmis, CoarsenType::Hmis];
        let thresholds = [0.25, 0.5, 0.7];
        let mut out = Vec::new();
        for &solver in &solvers {
            for &precond in &preconds {
                if precond == Preconditioner::BoomerAmg {
                    for &smoother in &smoothers {
                        for &coarsen in &coarsens {
                            for &strong_threshold in &thresholds {
                                out.push(HypreConfig {
                                    solver,
                                    precond,
                                    smoother,
                                    coarsen,
                                    strong_threshold,
                                });
                            }
                        }
                    }
                } else {
                    out.push(HypreConfig {
                        solver,
                        precond,
                        ..HypreConfig::default_config()
                    });
                }
            }
        }
        out
    }

    /// Iteration count for this configuration on the 27-point Laplacian.
    pub fn iterations(&self, n_nodes: usize) -> f64 {
        let base = match (self.solver, self.precond) {
            (SolverKind::Pcg, Preconditioner::None) => 900.0,
            (SolverKind::Gmres, Preconditioner::None) => 760.0,
            (SolverKind::BiCgStab, Preconditioner::None) => 820.0,
            (SolverKind::Pcg, Preconditioner::Jacobi) => 420.0,
            (SolverKind::Gmres, Preconditioner::Jacobi) => 370.0,
            (SolverKind::BiCgStab, Preconditioner::Jacobi) => 390.0,
            (SolverKind::Pcg, Preconditioner::ParaSails) => 91.0,
            (SolverKind::Gmres, Preconditioner::ParaSails) => 82.0,
            (SolverKind::BiCgStab, Preconditioner::ParaSails) => 86.0,
            (SolverKind::Pcg, Preconditioner::BoomerAmg) => 18.0,
            (SolverKind::Gmres, Preconditioner::BoomerAmg) => 16.0,
            (SolverKind::BiCgStab, Preconditioner::BoomerAmg) => 17.0,
        };
        let mut iters = base;
        if self.precond == Preconditioner::BoomerAmg {
            iters *= match self.smoother {
                Smoother::Jacobi => 1.25,
                Smoother::GaussSeidel => 1.0,
                Smoother::Chebyshev => 0.88,
            };
            iters *= match self.coarsen {
                CoarsenType::Falgout => 1.0,
                CoarsenType::Pmis => 1.18,
                CoarsenType::Hmis => 1.08,
            };
            // Larger θ → sparser hierarchy → more iterations.
            iters *= 1.0 + 0.35 * (self.strong_threshold - 0.25);
            // AMG is algorithmically scalable: flat in node count.
        } else {
            // Krylov-only convergence degrades slowly with scale.
            iters *= 1.0 + 0.05 * (n_nodes as f64).log2();
        }
        iters
    }

    /// Per-iteration cost multiplier for AMG cycle shape (relative).
    fn amg_cycle_cost(&self) -> f64 {
        let smoother = match self.smoother {
            Smoother::Jacobi => 0.80,
            Smoother::GaussSeidel => 1.0,
            Smoother::Chebyshev => 1.22,
        };
        let coarsen = match self.coarsen {
            CoarsenType::Falgout => 1.0,
            CoarsenType::Pmis => 0.82,
            CoarsenType::Hmis => 0.90,
        };
        // Larger θ → sparser operators → cheaper cycles.
        let theta = 1.0 - 0.25 * (self.strong_threshold - 0.25);
        smoother * coarsen * theta
    }
}

/// Problem instance: a 27-point Laplacian, weak-scaled (fixed work per node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypreProblem {
    /// Work scale per node: 1.0 ≈ a grid sized so the default config solves
    /// in O(10 s) per node at the reference frequency.
    pub size: f64,
    /// Communication model.
    pub mpi: MpiModel,
}

impl HypreProblem {
    /// Default 27-point Laplacian instance.
    pub fn laplacian_27pt() -> Self {
        HypreProblem {
            size: 1.0,
            mpi: MpiModel::typical(),
        }
    }
}

/// A runnable Hypre job: configuration + problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypreApp {
    /// Solver configuration.
    pub config: HypreConfig,
    /// Problem instance.
    pub problem: HypreProblem,
}

impl HypreApp {
    /// Construct; panics on an invalid (dependency-violating) configuration.
    pub fn new(config: HypreConfig, problem: HypreProblem) -> Self {
        assert!(config.is_valid(), "invalid Hypre configuration: {config:?}");
        HypreApp { config, problem }
    }
}

impl AppModel for HypreApp {
    fn name(&self) -> &str {
        "hypre-27pt-laplacian"
    }

    fn workload(&self, n_nodes: usize) -> Workload {
        assert!(n_nodes >= 1);
        let s = self.problem.size;
        let comm = self.problem.mpi.comm_fraction(n_nodes);
        let iters = self.config.iterations(n_nodes);
        let mut w = Workload::new();

        // Setup phase.
        match self.config.precond {
            Preconditioner::None => {}
            Preconditioner::Jacobi => {
                w.push(Phase::new(
                    "setup_jacobi",
                    PhaseMix::new(0.4, 0.6, 0.0, 0.0),
                    0.10 * s,
                ));
            }
            Preconditioner::ParaSails => {
                // Sparse approximate inverse construction: flop-rich.
                w.push(Phase::new(
                    "setup_parasails",
                    PhaseMix::new(0.85, 0.15, 0.0, 0.0),
                    3.0 * s,
                ));
            }
            Preconditioner::BoomerAmg => {
                // Hierarchy construction: graph + Galerkin products, memory-bound.
                w.push(Phase::new(
                    "setup_amg",
                    PhaseMix::new(0.25, 0.70, 0.05, 0.0),
                    5.0 * s,
                ));
            }
        }

        // Per-iteration phase group.
        let mut body: Vec<Phase> = Vec::new();
        // SpMV: memory-bound with comm halo exchange.
        body.push(Phase::new(
            "spmv",
            PhaseMix::new(0.15, 0.85 - 0.5 * comm, 0.5 * comm, 0.0),
            0.030 * s,
        ));
        // Preconditioner application.
        match self.config.precond {
            Preconditioner::None => {}
            Preconditioner::Jacobi => {
                body.push(Phase::new(
                    "apply_jacobi",
                    PhaseMix::new(0.5, 0.5, 0.0, 0.0),
                    0.006 * s,
                ));
            }
            Preconditioner::ParaSails => {
                body.push(Phase::new(
                    "apply_parasails",
                    PhaseMix::new(0.85, 0.15, 0.0, 0.0),
                    0.050 * s,
                ));
            }
            Preconditioner::BoomerAmg => {
                body.push(Phase::new(
                    "amg_vcycle",
                    PhaseMix::new(0.15, 0.75, 0.10, 0.0),
                    0.46 * s * self.config.amg_cycle_cost(),
                ));
            }
        }
        // Krylov vector ops + global reductions.
        let krylov_compute = match self.config.solver {
            SolverKind::Pcg => 0.010,
            SolverKind::Gmres => 0.018, // orthogonalization against the basis
            SolverKind::BiCgStab => 0.014,
        };
        body.push(Phase::new(
            "krylov_ops",
            PhaseMix::new(0.7, 0.3, 0.0, 0.0),
            krylov_compute * s,
        ));
        body.push(Phase::new(
            "dot_allreduce",
            PhaseMix::new(0.0, 0.0, 1.0, 0.0),
            (0.004 + 0.02 * comm) * s,
        ));

        w.repeat(&body, iters.round().max(1.0) as usize);
        w
    }

    fn node_rule(&self) -> NodeCountRule {
        NodeCountRule::Any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_hwmodel::PhaseKind;

    #[test]
    fn space_size_and_validity() {
        let space = HypreConfig::space();
        // 3 solvers × (3 non-AMG + 27 AMG variants) = 90.
        assert_eq!(space.len(), 90);
        for c in &space {
            assert!(c.is_valid(), "{c:?}");
        }
        // No duplicates.
        for (i, a) in space.iter().enumerate() {
            for b in &space[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn dependency_condition_rejects_aliased_configs() {
        let bad = HypreConfig {
            precond: Preconditioner::Jacobi,
            smoother: Smoother::Chebyshev,
            ..HypreConfig::default_config()
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn amg_converges_fastest() {
        let amg = HypreConfig::default_config();
        let jacobi = HypreConfig {
            precond: Preconditioner::Jacobi,
            ..HypreConfig::default_config()
        };
        assert!(amg.iterations(8) < jacobi.iterations(8) / 5.0);
    }

    #[test]
    fn krylov_iterations_grow_with_scale_amg_flat() {
        let amg = HypreConfig::default_config();
        let none = HypreConfig {
            precond: Preconditioner::None,
            ..HypreConfig::default_config()
        };
        assert_eq!(amg.iterations(1), amg.iterations(64));
        assert!(none.iterations(64) > none.iterations(1));
    }

    #[test]
    fn workload_totals_reasonable() {
        let app = HypreApp::new(
            HypreConfig::default_config(),
            HypreProblem::laplacian_27pt(),
        );
        let w = app.workload(8);
        let t = w.total_work();
        assert!((5.0..60.0).contains(&t), "AMG total work {t}");
        assert!(!w.regions().is_empty());
    }

    #[test]
    fn parasails_is_compute_dominated_amg_memory_dominated() {
        let problem = HypreProblem::laplacian_27pt();
        let para = HypreApp::new(
            HypreConfig {
                precond: Preconditioner::ParaSails,
                ..HypreConfig::default_config()
            },
            problem,
        )
        .workload(8);
        let amg = HypreApp::new(HypreConfig::default_config(), problem).workload(8);
        let para_comp = para.work_by_dominant(PhaseKind::ComputeBound) / para.total_work();
        let amg_mem = amg.work_by_dominant(PhaseKind::MemoryBound) / amg.total_work();
        assert!(para_comp > 0.5, "ParaSails compute share {para_comp}");
        assert!(amg_mem > 0.6, "AMG memory share {amg_mem}");
    }

    #[test]
    fn comm_share_grows_with_nodes() {
        let app = HypreApp::new(
            HypreConfig::default_config(),
            HypreProblem::laplacian_27pt(),
        );
        let comm = |n: usize| {
            let w = app.workload(n);
            w.work_by_dominant(PhaseKind::CommBound) / w.total_work()
        };
        assert!(comm(64) > comm(1));
    }

    #[test]
    #[should_panic(expected = "invalid Hypre configuration")]
    fn constructing_invalid_app_panics() {
        HypreApp::new(
            HypreConfig {
                precond: Preconditioner::None,
                strong_threshold: 0.7,
                ..HypreConfig::default_config()
            },
            HypreProblem::laplacian_27pt(),
        );
    }

    #[test]
    fn amg_subknobs_change_cost_model() {
        let base = HypreConfig::default_config();
        let cheb = HypreConfig {
            smoother: Smoother::Chebyshev,
            ..base
        };
        assert!(cheb.iterations(8) < base.iterations(8));
        assert!(cheb.amg_cycle_cost() > base.amg_cycle_cost());
    }
}
