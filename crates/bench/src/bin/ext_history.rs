//! Regenerate extension E9: shared performance history — a donor campaign
//! feeds a history store, then cold vs history-warmed campaigns race to the
//! within-2%-of-best band on the uc1/uc3 co-tuning spaces.
use powerstack_core::experiments::history;
fn main() {
    pstack_analyze::startup_gate();
    let r = pstack_bench::traced("ext_history", |_tc| {
        pstack_bench::timed("E9", history::run_default)
    });
    let r = pstack_bench::run_or_exit("ext_history", r);
    pstack_bench::emit("ext_history", &history::render(&r), &r);
}
