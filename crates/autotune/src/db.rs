//! The performance database.
//!
//! ytopt's loop "outputs the time and the elapsed time with the parameters'
//! values to a performance database" and post-processes it to "find the
//! smallest execution time and output the optimal configurations". This is
//! that database: an append-only observation log with best-so-far queries
//! and JSON export.

use crate::space::{Config, ParamSpace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Evaluation index (0-based arrival order).
    pub eval: usize,
    /// The configuration (value indices per parameter).
    pub config: Config,
    /// The objective being *minimized* (e.g. runtime seconds, energy joules).
    pub objective: f64,
    /// Auxiliary measurements (power, energy, IPC, ...), by name.
    pub aux: HashMap<String, f64>,
}

/// Append-only performance database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfDatabase {
    observations: Vec<Observation>,
}

impl PerfDatabase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an evaluation; returns its index.
    ///
    /// # Panics
    /// Panics on a non-finite objective — evaluators must map failures to a
    /// large finite penalty instead.
    pub fn record(&mut self, config: Config, objective: f64, aux: HashMap<String, f64>) -> usize {
        assert!(objective.is_finite(), "objective must be finite");
        let eval = self.observations.len();
        self.observations.push(Observation {
            eval,
            config,
            objective,
            aux,
        });
        eval
    }

    /// All observations in arrival order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of evaluations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing has been evaluated.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The best (minimum-objective) observation so far, ties broken by
    /// arrival order.
    pub fn best(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .min_by(|a, b| a.objective.partial_cmp(&b.objective).expect("finite"))
    }

    /// Whether `config` has already been evaluated.
    pub fn contains(&self, config: &Config) -> bool {
        self.observations.iter().any(|o| &o.config == config)
    }

    /// The recorded objective for `config`, if evaluated.
    pub fn lookup(&self, config: &Config) -> Option<f64> {
        self.observations
            .iter()
            .find(|o| &o.config == config)
            .map(|o| o.objective)
    }

    /// Best-so-far trajectory: `trajectory()[i]` is the minimum objective
    /// among the first `i+1` evaluations — the Figure 4 convergence series.
    pub fn trajectory(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.observations
            .iter()
            .map(|o| {
                best = best.min(o.objective);
                best
            })
            .collect()
    }

    /// Evaluations needed to reach within `factor` (≥1) of the final best;
    /// `None` if the database is empty.
    pub fn evals_to_within(&self, factor: f64) -> Option<usize> {
        assert!(factor >= 1.0, "factor must be >= 1");
        let best = self.best()?.objective;
        self.trajectory()
            .iter()
            .position(|&b| b <= best * factor)
            .map(|i| i + 1)
    }

    /// JSON export (for EXPERIMENTS.md regeneration).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable")
    }

    /// Render the best configuration against `space`.
    pub fn describe_best(&self, space: &ParamSpace) -> Option<String> {
        self.best()
            .map(|o| format!("{} -> {:.6}", space.describe(&o.config), o.objective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn obs(db: &mut PerfDatabase, cfg: Vec<usize>, obj: f64) {
        db.record(cfg, obj, HashMap::new());
    }

    #[test]
    fn record_and_best() {
        let mut db = PerfDatabase::new();
        obs(&mut db, vec![0], 5.0);
        obs(&mut db, vec![1], 3.0);
        obs(&mut db, vec![2], 4.0);
        assert_eq!(db.len(), 3);
        assert_eq!(db.best().unwrap().objective, 3.0);
        assert_eq!(db.best().unwrap().config, vec![1]);
    }

    #[test]
    fn ties_break_by_arrival() {
        let mut db = PerfDatabase::new();
        obs(&mut db, vec![0], 3.0);
        obs(&mut db, vec![1], 3.0);
        assert_eq!(db.best().unwrap().eval, 0);
    }

    #[test]
    fn trajectory_monotone_nonincreasing() {
        let mut db = PerfDatabase::new();
        for (i, &o) in [5.0, 7.0, 3.0, 4.0, 2.0].iter().enumerate() {
            obs(&mut db, vec![i], o);
        }
        assert_eq!(db.trajectory(), vec![5.0, 5.0, 3.0, 3.0, 2.0]);
        assert_eq!(db.evals_to_within(1.0), Some(5));
        assert_eq!(db.evals_to_within(1.5), Some(3)); // 3.0 <= 2.0*1.5
    }

    #[test]
    fn contains_and_lookup() {
        let mut db = PerfDatabase::new();
        obs(&mut db, vec![1, 2], 9.0);
        assert!(db.contains(&vec![1, 2]));
        assert!(!db.contains(&vec![2, 1]));
        assert_eq!(db.lookup(&vec![1, 2]), Some(9.0));
        assert_eq!(db.lookup(&vec![0, 0]), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_objective_panics() {
        let mut db = PerfDatabase::new();
        obs(&mut db, vec![0], f64::NAN);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = PerfDatabase::new();
        let mut aux = HashMap::new();
        aux.insert("power_w".to_string(), 180.0);
        db.record(vec![1, 0], 2.5, aux);
        let json = db.to_json();
        let back: PerfDatabase = serde_json::from_str(&json).unwrap();
        assert_eq!(back.observations(), db.observations());
    }

    #[test]
    fn describe_best() {
        let space = crate::space::ParamSpace::new().with(Param::ints("x", [10, 20]));
        let mut db = PerfDatabase::new();
        obs(&mut db, vec![1], 1.5);
        assert_eq!(db.describe_best(&space).unwrap(), "x=20 -> 1.500000");
        assert!(PerfDatabase::new().describe_best(&space).is_none());
    }
}
