//! The global lock-order graph.
//!
//! While chaos mode is armed ([`crate::chaos::arm`]), every instrumented
//! acquisition records here: node counts per site, a directed edge for
//! every `held → acquired` pair, lock-order *inversions* (an edge observed
//! in both directions — the classic ABBA deadlock precondition), and
//! concurrency *smells* (a lock held across a [`Condvar`] wait, a critical
//! section held past the long-hold threshold).
//!
//! [`snapshot`] produces an owned, deterministic [`LockOrderGraph`] (all
//! maps are `BTreeMap`s, so rendering order never depends on interleaving);
//! [`LockOrderGraph::to_json`] carries its own minimal JSON writer because
//! this crate sits below the vendored `serde` stand-ins.
//!
//! [`Condvar`]: std::sync::Condvar

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A lock-order inversion: both `a → b` and `b → a` were observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Inversion {
    /// Lexicographically smaller site of the pair.
    pub a: &'static str,
    /// Lexicographically larger site of the pair.
    pub b: &'static str,
}

/// What kind of concurrency smell was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmellKind {
    /// A thread entered `Condvar::wait` while holding a lock other than the
    /// condvar's own mutex — a lost-wakeup / deadlock hazard.
    HeldAcrossWait,
    /// A critical section outlived [`LONG_HOLD_NS`] — a contention smell
    /// (the trace ring and pool slots are meant to be held for nanoseconds).
    LongCriticalSection,
}

impl SmellKind {
    fn tag(self) -> &'static str {
        match self {
            SmellKind::HeldAcrossWait => "held-across-wait",
            SmellKind::LongCriticalSection => "long-critical-section",
        }
    }
}

/// One observed smell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Smell {
    /// What was smelled.
    pub kind: SmellKind,
    /// The site the smell is about.
    pub site: &'static str,
    /// Sites held at the moment of observation (excluding `site`).
    pub held: Vec<&'static str>,
}

/// Critical sections held longer than this (while armed) are recorded as
/// [`SmellKind::LongCriticalSection`]. Generous: chaos yields inflate hold
/// times on purpose, so the threshold must sit well above the injected
/// backoff but far below "a simulation tick ran inside the lock".
pub const LONG_HOLD_NS: u64 = 50_000_000;

/// Bound on recorded smells — the graph must stay small even if a pathology
/// fires on every acquisition.
const MAX_SMELLS: usize = 256;

#[derive(Default)]
struct State {
    nodes: BTreeMap<&'static str, u64>,
    edges: BTreeMap<(&'static str, &'static str), u64>,
    inversions: Vec<Inversion>,
    smells: Vec<Smell>,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

fn with_state<T>(f: impl FnOnce(&mut State) -> T) -> T {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(State::default))
}

/// Record one acquisition of `site` while `held` (possibly empty) are held
/// by the same thread, adding `held → site` edges and flagging inversions.
pub(crate) fn record_acquisition(site: &'static str, held: &[&'static str]) {
    with_state(|s| {
        *s.nodes.entry(site).or_insert(0) += 1;
        for &outer in held {
            if outer == site {
                continue; // re-entrant same-site pairs are not an order
            }
            *s.edges.entry((outer, site)).or_insert(0) += 1;
            if s.edges.contains_key(&(site, outer)) {
                let inv = Inversion {
                    a: outer.min(site),
                    b: outer.max(site),
                };
                if !s.inversions.contains(&inv) {
                    s.inversions.push(inv);
                }
            }
        }
    });
}

/// Record a smell (bounded; excess observations are dropped silently — the
/// first [`MAX_SMELLS`] are plenty to fail a gate on).
pub(crate) fn record_smell(kind: SmellKind, site: &'static str, held: Vec<&'static str>) {
    with_state(|s| {
        if s.smells.len() < MAX_SMELLS {
            let smell = Smell { kind, site, held };
            if !s.smells.contains(&smell) {
                s.smells.push(smell);
            }
        }
    });
}

/// Clear every observation (the explorer calls this before a grid).
pub fn reset() {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// An owned, deterministic copy of the current observations.
pub fn snapshot() -> LockOrderGraph {
    with_state(|s| {
        let mut inversions = s.inversions.clone();
        inversions.sort();
        let mut smells = s.smells.clone();
        smells.sort();
        LockOrderGraph {
            nodes: s.nodes.clone(),
            edges: s.edges.clone(),
            inversions,
            smells,
        }
    })
}

/// The observed lock-order graph: which sites were acquired, in what
/// nesting order, and what went wrong.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LockOrderGraph {
    /// Acquisition count per site.
    pub nodes: BTreeMap<&'static str, u64>,
    /// `(held, acquired)` → observation count.
    pub edges: BTreeMap<(&'static str, &'static str), u64>,
    /// Site pairs observed in both orders (sorted, deduplicated).
    pub inversions: Vec<Inversion>,
    /// Observed smells (sorted, deduplicated, bounded).
    pub smells: Vec<Smell>,
}

impl LockOrderGraph {
    /// A directed cycle in the observed edges, if any, as the site path
    /// `[a, b, …, a]`. Inversions are always cycles of length 2; longer
    /// chains (A→B, B→C, C→A) are caught here too.
    pub fn cycle(&self) -> Option<Vec<&'static str>> {
        // Iterative DFS with white/grey/black coloring over the edge set.
        let mut color: BTreeMap<&'static str, u8> = BTreeMap::new();
        let nodes: Vec<&'static str> = self
            .edges
            .keys()
            .flat_map(|(a, b)| [*a, *b])
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for &start in &nodes {
            if color.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path: Vec<&'static str> = vec![start];
            // Each stack frame carries the successors not yet explored.
            let mut stack: Vec<Vec<&'static str>> = vec![self.successors(start)];
            color.insert(start, 1);
            while let Some(succ) = stack.last_mut() {
                match succ.pop() {
                    Some(next) => match color.get(next).copied().unwrap_or(0) {
                        1 => {
                            // Grey: found a back edge — close the cycle.
                            let from = path
                                .iter()
                                .position(|&n| n == next)
                                .unwrap_or(path.len() - 1);
                            let mut cycle: Vec<&'static str> = path[from..].to_vec();
                            cycle.push(next);
                            return Some(cycle);
                        }
                        2 => {}
                        _ => {
                            color.insert(next, 1);
                            path.push(next);
                            stack.push(self.successors(next));
                        }
                    },
                    None => {
                        stack.pop();
                        if let Some(done) = path.pop() {
                            color.insert(done, 2);
                        }
                    }
                }
            }
        }
        None
    }

    fn successors(&self, node: &'static str) -> Vec<&'static str> {
        self.edges
            .keys()
            .filter(|(a, _)| *a == node)
            .map(|(_, b)| *b)
            .collect()
    }

    /// Total acquisitions observed across all sites.
    pub fn acquisitions(&self) -> u64 {
        self.nodes.values().sum()
    }

    /// Render the graph as deterministic JSON (own writer: this crate sits
    /// below the vendored serde stand-ins).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"nodes\": {");
        for (i, (site, n)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {n}", json_str(site)));
        }
        out.push_str("\n  },\n  \"edges\": [");
        for (i, ((a, b), n)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"held\": {}, \"acquired\": {}, \"count\": {n}}}",
                json_str(a),
                json_str(b)
            ));
        }
        out.push_str("\n  ],\n  \"inversions\": [");
        for (i, inv) in self.inversions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    [{}, {}]", json_str(inv.a), json_str(inv.b)));
        }
        out.push_str("\n  ],\n  \"smells\": [");
        for (i, s) in self.smells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let held: Vec<String> = s.held.iter().map(|h| json_str(h)).collect();
            out.push_str(&format!(
                "\n    {{\"kind\": {}, \"site\": {}, \"held\": [{}]}}",
                json_str(s.kind.tag()),
                json_str(s.site),
                held.join(", ")
            ));
        }
        let acyclic = self.cycle().is_none();
        out.push_str(&format!("\n  ],\n  \"acyclic\": {acyclic}\n}}\n"));
        out
    }
}

/// Minimal JSON string escaping (site labels are ASCII identifiers, but be
/// correct anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(&'static str, &'static str)]) -> LockOrderGraph {
        let mut g = LockOrderGraph::default();
        for &(a, b) in edges {
            *g.edges.entry((a, b)).or_insert(0) += 1;
            *g.nodes.entry(a).or_insert(0) += 1;
            *g.nodes.entry(b).or_insert(0) += 1;
        }
        g
    }

    #[test]
    fn dag_has_no_cycle() {
        let g = graph(&[("a", "b"), ("b", "c"), ("a", "c")]);
        assert_eq!(g.cycle(), None);
    }

    #[test]
    fn two_cycle_is_found() {
        let g = graph(&[("a", "b"), ("b", "a")]);
        let cycle = g.cycle().expect("ABBA is a cycle");
        assert!(cycle.len() >= 3, "path closes on itself: {cycle:?}");
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn three_cycle_is_found_without_any_inversion() {
        let g = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        assert!(g.cycle().is_some(), "A→B→C→A must be caught");
        assert!(g.inversions.is_empty());
    }

    #[test]
    fn recording_detects_inversions() {
        // Arm to serialize against every other test that touches the
        // global graph (arming is process-exclusive).
        let _g = crate::chaos::arm(0);
        reset();
        record_acquisition("x", &[]);
        record_acquisition("y", &["x"]);
        record_acquisition("x", &["y"]);
        let g = snapshot();
        assert_eq!(g.inversions, vec![Inversion { a: "x", b: "y" }]);
        assert!(g.cycle().is_some());
        reset();
        assert_eq!(snapshot(), LockOrderGraph::default());
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let _g = crate::chaos::arm(0);
        reset();
        record_acquisition("a.site", &[]);
        record_acquisition("b.site", &["a.site"]);
        let g = snapshot();
        let j = g.to_json();
        assert_eq!(j, g.to_json());
        assert!(j.contains("\"a.site\": 1"));
        assert!(j.contains("\"acyclic\": true"));
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        reset();
    }
}
