//! # powerstack — an end-to-end auto-tuning framework for the HPC PowerStack
//!
//! A simulation-backed, full-stack reproduction of *"Toward an End-to-End
//! Auto-tuning Framework in HPC PowerStack"* (Wu et al., IEEE CLUSTER 2020):
//! every layer of the PowerStack — simulated node hardware with RAPL-style
//! power management, a SLURM-like power-aware resource manager, GEOPM-,
//! Conductor-, COUNTDOWN- and MERIC-like job runtimes, application models
//! (Hypre-, FETI-, LULESH-like), and a ytopt-like autotuner — wired together
//! by the cross-layer interfaces and co-tuning orchestration the paper
//! proposes.
//!
//! ## Quickstart
//!
//! ```
//! use powerstack::prelude::*;
//!
//! // A compute-heavy job on two simulated nodes under a 300 W/node cap.
//! let app = SyntheticApp::new(Profile::ComputeHeavy, 10.0, 5);
//! let (time_s, energy_j, work) = simulate_app(&app, 2, Some(300.0), 42);
//! assert!(time_s > 0.0 && energy_j > 0.0 && work > 0.0);
//! ```
//!
//! ## Layer map (paper Figure 1 → crates)
//!
//! | Layer | Crate |
//! |---|---|
//! | Site / System (RM) | [`rm`] (`pstack-rm`) |
//! | Job / Runtime | [`runtime`] (`pstack-runtime`) |
//! | Application | [`apps`] (`pstack-apps`) |
//! | Node management | [`node`] (`pstack-node`) |
//! | Hardware | [`hwmodel`] (`pstack-hwmodel`) |
//! | Auto-tuning | [`autotune`] (`pstack-autotune`) |
//! | End-to-end framework | [`core`] (`powerstack-core`) |
//! | Diagnostics model | [`diag`] (`pstack-diag`) |
//! | Static analysis / lint | [`analyze`] (`pstack-analyze`) |
//! | Fault injection / chaos | [`faults`] (`pstack-faults`) |
//! | Framework tracing / self-profiling | [`trace`] (`pstack-trace`) |
//!
//! See `DESIGN.md` for the substitution table (what each simulated substrate
//! stands in for) and `EXPERIMENTS.md` for the paper-vs-measured record.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub use powerstack_core as core;
pub use pstack_analyze as analyze;
pub use pstack_apps as apps;
pub use pstack_autotune as autotune;
pub use pstack_diag as diag;
pub use pstack_faults as faults;
pub use pstack_history as history;
pub use pstack_hwmodel as hwmodel;
pub use pstack_node as node;
pub use pstack_rm as rm;
pub use pstack_runtime as runtime;
pub use pstack_sim as sim;
pub use pstack_sync as sync;
pub use pstack_telemetry as telemetry;
pub use pstack_trace as trace;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::core::cotune::{simulate_app, HypreCoTune, KernelCoTune};
    pub use crate::core::{
        knob_registry, vocabulary, Objective, PowerBudget, Scenario, ScenarioResult, TuningLevel,
    };
    pub use pstack_apps::epop::EpopApp;
    pub use pstack_apps::hypre::{HypreApp, HypreConfig, HypreProblem};
    pub use pstack_apps::kernelmodel::{KernelConfig, KernelModel};
    pub use pstack_apps::synthetic::{random_app, Profile, SyntheticApp};
    pub use pstack_apps::workload::{AppModel, NodeCountRule, Phase, Workload};
    pub use pstack_apps::{Lulesh, MpiModel};
    pub use pstack_autotune::{
        AnnealingSearch, ExhaustiveSearch, FaultLog, ForestSearch, HillClimbSearch, Param,
        ParamSpace, RandomSearch, RetryPolicy, Robustness, Tuner,
    };
    pub use pstack_faults::{run_faulted_job, FaultPlan, FaultyEvaluator};
    pub use pstack_hwmodel::{Node, NodeConfig, NodeId, PhaseKind, PhaseMix, VariationModel};
    pub use pstack_node::{NodeManager, Signal};
    pub use pstack_rm::{
        AgentKind, CorridorStrategy, Irm, JobSpec, PowerAssignment, Scheduler, SystemPowerPolicy,
    };
    pub use pstack_runtime::{
        ArbiterMode, Conductor, Countdown, CountdownMode, Geopm, GeopmPolicy, JobRunner, Meric,
        RuntimeAgent,
    };
    pub use pstack_sim::{SeedTree, SimDuration, SimTime};
    pub use pstack_trace::{ProfileSummary, TraceCollector};
}
