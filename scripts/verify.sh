#!/usr/bin/env bash
# Full verification gate: format, build, test, lint, static analysis.
# Run from the repo root.
#
#   ./scripts/verify.sh
#
# This is the bar every PR must clear — the same commands CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== chaos suite (determinism: two runs must agree) =="
cargo test -q --test chaos_tuning
cargo test -q --test chaos_tuning

echo "== golden artifact regression =="
cargo test -q --test golden_results

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== pstack_lint =="
cargo run -q --release -p pstack-analyze --bin pstack_lint

echo "verify: OK"
