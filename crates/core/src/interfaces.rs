//! Standardized cross-layer interfaces.
//!
//! The paper's framing: "Define the interfaces between these layers to
//! translate objectives at each layer into actionable items at the adjacent
//! lower layer." These are the types those interfaces exchange: objectives,
//! power budgets over windows, and upward telemetry reports.

use pstack_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// An optimization objective a layer can be asked to pursue (paper §3:
/// "the smallest runtime, the lowest power, or the lowest energy" under a
/// power cap, plus the throughput/efficiency targets of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize time to solution.
    MinTime,
    /// Minimize energy to solution.
    MinEnergy,
    /// Minimize energy-delay product.
    MinEdp,
    /// Minimize mean power draw (the paper's "lowest power" target).
    MinPower,
    /// Maximize job throughput (RM level), jobs/hour.
    MaxThroughput,
    /// Maximize power efficiency (work per watt / IPC per watt).
    MaxPowerEfficiency,
}

impl Objective {
    /// Score an outcome `(time_s, energy_j, work)` such that **smaller is
    /// better** (suitable for the minimizing autotuner).
    pub fn cost(&self, time_s: f64, energy_j: f64, work: f64) -> f64 {
        match self {
            Objective::MinTime => time_s,
            Objective::MinEnergy => energy_j,
            Objective::MinEdp => energy_j * time_s,
            Objective::MinPower => {
                if time_s <= 0.0 {
                    f64::MAX
                } else {
                    energy_j / time_s
                }
            }
            Objective::MaxThroughput => {
                if work <= 0.0 {
                    f64::MAX
                } else {
                    time_s / work
                }
            }
            Objective::MaxPowerEfficiency => {
                if work <= 0.0 || time_s <= 0.0 {
                    f64::MAX
                } else {
                    // watts per unit work-rate == energy per work.
                    energy_j / work
                }
            }
        }
    }
}

/// A power budget over an averaging window — the quantity every layer
/// receives from above and subdivides downward (site → system → job → node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Watts allowed on average over the window.
    pub watts: f64,
    /// Averaging window (serialized as microseconds).
    pub window_us: u64,
}

impl PowerBudget {
    /// Construct a budget.
    ///
    /// # Panics
    /// Panics on non-positive watts or a zero window.
    pub fn new(watts: f64, window: SimDuration) -> Self {
        assert!(watts > 0.0, "budget must be positive");
        assert!(!window.is_zero(), "window must be positive");
        PowerBudget {
            watts,
            window_us: window.as_micros(),
        }
    }

    /// The averaging window.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_micros(self.window_us)
    }

    /// Split evenly over `n` children (e.g. job budget → node budgets).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn split_even(&self, n: usize) -> PowerBudget {
        assert!(n > 0, "cannot split over zero children");
        PowerBudget {
            watts: self.watts / n as f64,
            window_us: self.window_us,
        }
    }

    /// Split proportionally to `weights` (power steering). Weights are
    /// normalized; zero-total weights split evenly.
    pub fn split_weighted(&self, weights: &[f64]) -> Vec<PowerBudget> {
        assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![self.split_even(weights.len()); weights.len()];
        }
        weights
            .iter()
            .map(|w| PowerBudget {
                watts: self.watts * w / total,
                window_us: self.window_us,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_costs() {
        assert_eq!(Objective::MinTime.cost(10.0, 500.0, 2.0), 10.0);
        assert_eq!(Objective::MinEnergy.cost(10.0, 500.0, 2.0), 500.0);
        assert_eq!(Objective::MinEdp.cost(10.0, 500.0, 2.0), 5000.0);
        assert_eq!(Objective::MinPower.cost(10.0, 500.0, 2.0), 50.0);
        assert_eq!(Objective::MinPower.cost(0.0, 500.0, 2.0), f64::MAX);
        assert_eq!(Objective::MaxThroughput.cost(10.0, 500.0, 2.0), 5.0);
        assert_eq!(Objective::MaxPowerEfficiency.cost(10.0, 500.0, 2.0), 250.0);
    }

    #[test]
    fn objective_guards_zero_work() {
        assert_eq!(Objective::MaxThroughput.cost(1.0, 1.0, 0.0), f64::MAX);
        assert_eq!(Objective::MaxPowerEfficiency.cost(0.0, 1.0, 1.0), f64::MAX);
    }

    #[test]
    fn budget_splitting() {
        let b = PowerBudget::new(1000.0, SimDuration::from_millis(10));
        assert_eq!(b.split_even(4).watts, 250.0);
        let parts = b.split_weighted(&[3.0, 1.0]);
        assert_eq!(parts[0].watts, 750.0);
        assert_eq!(parts[1].watts, 250.0);
        // Conservation.
        assert!((parts.iter().map(|p| p.watts).sum::<f64>() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weights_split_evenly() {
        let b = PowerBudget::new(100.0, SimDuration::from_millis(10));
        let parts = b.split_weighted(&[0.0, 0.0]);
        assert_eq!(parts[0].watts, 50.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        PowerBudget::new(0.0, SimDuration::from_millis(10));
    }
}
