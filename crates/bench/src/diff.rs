//! Perf-regression diff: fresh bench artifacts vs the committed `results/`.
//!
//! The `bench_diff` binary (the CI `perfgate` job) regenerates a set of
//! `bench_*` / `ext_*` artifacts into a scratch directory and compares them
//! against the versions committed under `results/`, metric by metric, using
//! the per-metric tolerances declared in [`shipped_rules`]:
//!
//! * [`Tolerance::Exact`] — deterministic simulation outputs (energies,
//!   makespans, objective values, completion counts). The simulator is
//!   seeded end to end, so these must reproduce *exactly*; any drift is a
//!   correctness regression, not noise.
//! * [`Tolerance::MinRatio`] — wall-clock-derived throughputs and speedups,
//!   which vary with host load. The fresh value must stay above a fraction
//!   of the committed one; falling below is a performance regression.
//! * [`Tolerance::RelTol`] — derived floats where a bounded relative error
//!   is acceptable.
//!
//! Metrics not named by a rule are deliberately ungated (timestamps,
//! wall-second columns, trace sizes). A rule whose path no longer resolves
//! in either file is itself a failure: gated metrics cannot silently
//! disappear.

use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// How a fresh metric is allowed to differ from the committed one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Values must be identical (floats compared by bits via the JSON
    /// round-trip, which is exact for shortest-repr output).
    Exact,
    /// `|fresh - committed| <= tol * max(|committed|, 1e-12)`.
    RelTol(f64),
    /// `fresh / committed >= ratio` — for higher-is-better metrics derived
    /// from wall time; catches slowdowns while tolerating host noise.
    MinRatio(f64),
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tolerance::Exact => write!(f, "exact"),
            Tolerance::RelTol(t) => write!(f, "rel<={t}"),
            Tolerance::MinRatio(r) => write!(f, "ratio>={r}"),
        }
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

impl Tolerance {
    /// Check `fresh` against `committed`; `Err` carries the human-readable
    /// reason on violation.
    pub fn check(&self, committed: &Value, fresh: &Value) -> Result<(), String> {
        match self {
            Tolerance::Exact => {
                if committed == fresh {
                    Ok(())
                } else {
                    Err("values differ (exact match required)".to_string())
                }
            }
            Tolerance::RelTol(tol) => {
                let (c, f) = numeric_pair(committed, fresh)?;
                let scale = c.abs().max(1e-12);
                let rel = (f - c).abs() / scale;
                if rel <= *tol {
                    Ok(())
                } else {
                    Err(format!("relative error {rel:.3e} exceeds {tol:.1e}"))
                }
            }
            Tolerance::MinRatio(ratio) => {
                let (c, f) = numeric_pair(committed, fresh)?;
                if c <= 0.0 {
                    // Nothing to regress against; only reject a sign flip.
                    return if f >= c {
                        Ok(())
                    } else {
                        Err(format!("fresh {f} below committed {c}"))
                    };
                }
                let r = f / c;
                if r >= *ratio {
                    Ok(())
                } else {
                    Err(format!("ratio {r:.3} below floor {ratio}"))
                }
            }
        }
    }
}

fn numeric_pair(committed: &Value, fresh: &Value) -> Result<(f64, f64), String> {
    match (as_f64(committed), as_f64(fresh)) {
        (Some(c), Some(f)) => Ok((c, f)),
        _ => Err(format!(
            "non-numeric values (committed: {}, fresh: {})",
            committed.kind(),
            fresh.kind()
        )),
    }
}

/// One gated metric: which artifact, which path inside its JSON, and how
/// much drift is tolerated.
#[derive(Debug, Clone, Copy)]
pub struct MetricRule {
    /// Artifact stem (`bench_history`, `ext_resume`, ... — no extension).
    pub artifact: &'static str,
    /// Dotted path into the JSON value. Segments are map keys, decimal
    /// sequence indices, or `*` (every element of a sequence).
    pub path: &'static str,
    /// Allowed drift.
    pub tolerance: Tolerance,
}

/// Resolve `path` inside `v`, expanding `*` over sequences. Returns the
/// concrete path of every match alongside the value.
pub fn resolve<'a>(v: &'a Value, path: &str) -> Vec<(String, &'a Value)> {
    let mut frontier: Vec<(String, &Value)> = vec![(String::new(), v)];
    for seg in path.split('.') {
        let mut next = Vec::new();
        for (prefix, val) in frontier {
            let join = |s: &str| {
                if prefix.is_empty() {
                    s.to_string()
                } else {
                    format!("{prefix}.{s}")
                }
            };
            match (seg, val) {
                ("*", Value::Seq(items)) => {
                    for (i, item) in items.iter().enumerate() {
                        next.push((join(&i.to_string()), item));
                    }
                }
                (_, Value::Seq(items)) => {
                    if let Ok(i) = seg.parse::<usize>() {
                        if let Some(item) = items.get(i) {
                            next.push((join(seg), item));
                        }
                    }
                }
                (_, Value::Map(_)) => {
                    if let Some(child) = val.get(seg) {
                        next.push((join(seg), child));
                    }
                }
                _ => {}
            }
        }
        frontier = next;
    }
    frontier
}

/// The shipped per-metric gate: every deterministic simulation output must
/// reproduce exactly; wall-clock-derived throughputs must stay above a
/// fraction of the committed value.
pub fn shipped_rules() -> Vec<MetricRule> {
    use Tolerance::{Exact, MinRatio};
    let rule = |artifact, path, tolerance| MetricRule {
        artifact,
        path,
        tolerance,
    };
    vec![
        // Batched-evaluation throughput gate (CI `perf` stage artifact).
        rule("bench_evalthroughput", "fig4_kernel.bit_identical", Exact),
        rule("bench_evalthroughput", "uc3_hypre.bit_identical", Exact),
        rule("bench_evalthroughput", "fig4_kernel.configs", Exact),
        rule("bench_evalthroughput", "uc3_hypre.configs", Exact),
        rule(
            "bench_evalthroughput",
            "fig4_kernel.speedup_coarse",
            MinRatio(0.2),
        ),
        rule(
            "bench_evalthroughput",
            "uc3_hypre.speedup_exact",
            MinRatio(0.2),
        ),
        // Warm-start history gate.
        rule("bench_history", "rows.*.warmed_fewer", Exact),
        rule("bench_history", "rows.*.best_objective", Exact),
        rule("bench_history", "rows.*.priors", Exact),
        // Parallel-tuner gate: simulated results exact, speedup bounded.
        rule("bench_parallel_tuner", "plopper.results_identical", Exact),
        rule(
            "bench_parallel_tuner",
            "compute_only.results_identical",
            Exact,
        ),
        rule("bench_parallel_tuner", "best_objective", Exact),
        rule("bench_parallel_tuner", "evals", Exact),
        rule("bench_parallel_tuner", "plopper.speedup", MinRatio(0.25)),
        // Fleet-scale gate: simulated outcomes exact, wall throughput floored.
        rule("bench_fleet", "arms.*.result.completed", Exact),
        rule("bench_fleet", "arms.*.result.jobs_per_hour", Exact),
        rule("bench_fleet", "arms.*.result.work_per_kj", Exact),
        rule("bench_fleet", "arms.*.result.energy_j", Exact),
        rule("bench_fleet", "arms.*.jobs_h_sim_per_wall_s", MinRatio(0.2)),
        // Chaos-recovery gate: the injected-fault grid is seeded and fully
        // deterministic, so every verdict and counter must reproduce
        // byte-for-byte; only the wall-clock rate is a ratio.
        rule("bench_fleetfaults", "arms.*.result.completed", Exact),
        rule("bench_fleetfaults", "arms.*.result.failed", Exact),
        rule("bench_fleetfaults", "arms.*.result.rejected", Exact),
        rule("bench_fleetfaults", "arms.*.result.conservation_ok", Exact),
        rule("bench_fleetfaults", "arms.*.result.replay_identical", Exact),
        rule(
            "bench_fleetfaults",
            "arms.*.result.down_nodes_at_end",
            Exact,
        ),
        rule("bench_fleetfaults", "arms.*.result.energy_j", Exact),
        rule(
            "bench_fleetfaults",
            "arms.*.sim_hours_per_wall_s",
            MinRatio(0.2),
        ),
        // Extension artifacts: pure simulation, everything deterministic.
        rule("ext_history", "rows.*.warmed_fewer", Exact),
        rule("ext_history", "rows.*.best_objective", Exact),
        rule("ext_emergency", "rows.*.makespan_s", Exact),
        rule("ext_emergency", "rows.*.violation_w", Exact),
        rule("ext_emergency", "rows.*.energy_j", Exact),
        rule("ext_faults", "rows.*.recovery", Exact),
        rule("ext_faults", "rows.*.job_completed", Exact),
        rule("ext_faults", "rows.*.quarantined", Exact),
        rule("ext_new_runtimes", "*.energy_kj", Exact),
        rule("ext_new_runtimes", "*.saving_pct", Exact),
        rule("ext_thermal", "rows.*.peak_temp_c", Exact),
        rule("ext_thermal", "rows.*.makespan_s", Exact),
        rule("ext_resume", "rows.*.identical", Exact),
        rule("ext_resume", "max_evals", Exact),
        rule("ext_fleetfaults", "rows.*.completed", Exact),
        rule("ext_fleetfaults", "rows.*.failed", Exact),
        rule("ext_fleetfaults", "rows.*.replay_identical", Exact),
        rule("ext_fleetfaults", "supervised.identical", Exact),
        rule("ext_fleetfaults", "all_slo_ok", Exact),
    ]
}

/// Outcome of one gated metric (one concrete path after `*` expansion).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// Artifact stem.
    pub artifact: String,
    /// Concrete metric path.
    pub path: String,
    /// Tolerance applied (display form).
    pub tolerance: String,
    /// Committed value (JSON text).
    pub committed: String,
    /// Fresh value (JSON text).
    pub fresh: String,
    /// Whether the check passed.
    pub pass: bool,
    /// Failure reason (empty when passing).
    pub detail: String,
}

/// Full diff over every artifact [`shipped_rules`] covers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffReport {
    /// Directory holding the committed baselines.
    pub committed_dir: String,
    /// Directory holding the freshly generated artifacts.
    pub fresh_dir: String,
    /// Artifacts compared (fresh file present).
    pub compared: Vec<String>,
    /// Artifacts with rules but no fresh file (not required — informational).
    pub skipped: Vec<String>,
    /// Every metric check performed.
    pub checks: Vec<CheckOutcome>,
    /// Number of failing checks (plus missing-artifact failures).
    pub failures: usize,
}

fn read_artifact(dir: &Path, name: &str) -> Result<Option<Value>, String> {
    let path = dir.join(format!("{name}.json"));
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    Ok(Some(v))
}

fn json_text(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|e| format!("<unserializable: {e}>"))
}

/// Compare fresh artifacts in `fresh_dir` against committed baselines in
/// `committed_dir` under [`shipped_rules`]. Artifacts listed in `require`
/// must be present fresh; others are skipped (not failed) when absent.
pub fn diff_dirs(
    committed_dir: &Path,
    fresh_dir: &Path,
    require: &[String],
) -> Result<DiffReport, String> {
    let rules = shipped_rules();
    let mut artifacts: Vec<&'static str> = rules.iter().map(|r| r.artifact).collect();
    artifacts.dedup();

    let mut report = DiffReport {
        committed_dir: committed_dir.display().to_string(),
        fresh_dir: fresh_dir.display().to_string(),
        compared: Vec::new(),
        skipped: Vec::new(),
        checks: Vec::new(),
        failures: 0,
    };

    for name in artifacts {
        let fresh = read_artifact(fresh_dir, name)?;
        let required = require.iter().any(|r| r == name);
        let fresh = match fresh {
            Some(v) => v,
            None => {
                if required {
                    report.failures += 1;
                    report.checks.push(CheckOutcome {
                        artifact: name.to_string(),
                        path: "<artifact>".to_string(),
                        tolerance: "present".to_string(),
                        committed: "yes".to_string(),
                        fresh: "missing".to_string(),
                        pass: false,
                        detail: "required artifact was not generated".to_string(),
                    });
                } else {
                    report.skipped.push(name.to_string());
                }
                continue;
            }
        };
        let committed = match read_artifact(committed_dir, name)? {
            Some(v) => v,
            None => {
                report.failures += 1;
                report.checks.push(CheckOutcome {
                    artifact: name.to_string(),
                    path: "<artifact>".to_string(),
                    tolerance: "present".to_string(),
                    committed: "missing".to_string(),
                    fresh: "yes".to_string(),
                    pass: false,
                    detail: "fresh artifact has no committed baseline".to_string(),
                });
                continue;
            }
        };
        report.compared.push(name.to_string());

        for rule in rules.iter().filter(|r| r.artifact == name) {
            let c_matches = resolve(&committed, rule.path);
            let f_matches = resolve(&fresh, rule.path);
            if c_matches.is_empty() || c_matches.len() != f_matches.len() {
                report.failures += 1;
                report.checks.push(CheckOutcome {
                    artifact: name.to_string(),
                    path: rule.path.to_string(),
                    tolerance: rule.tolerance.to_string(),
                    committed: format!("{} match(es)", c_matches.len()),
                    fresh: format!("{} match(es)", f_matches.len()),
                    pass: false,
                    detail: "gated metric path missing or cardinality changed".to_string(),
                });
                continue;
            }
            for ((cpath, cval), (_, fval)) in c_matches.iter().zip(f_matches.iter()) {
                let verdict = rule.tolerance.check(cval, fval);
                let pass = verdict.is_ok();
                if !pass {
                    report.failures += 1;
                }
                report.checks.push(CheckOutcome {
                    artifact: name.to_string(),
                    path: cpath.clone(),
                    tolerance: rule.tolerance.to_string(),
                    committed: json_text(cval),
                    fresh: json_text(fval),
                    pass,
                    detail: verdict.err().unwrap_or_default(),
                });
            }
        }
    }

    if report.compared.is_empty() && report.failures == 0 {
        return Err(format!(
            "no fresh artifacts found under {} — nothing to gate",
            fresh_dir.display()
        ));
    }
    Ok(report)
}

/// Render the report as the perfgate table.
pub fn render(report: &DiffReport) -> String {
    let mut out = String::from("PERFGATE: fresh artifacts vs committed results\n");
    out.push_str(&format!(
        "committed: {}\nfresh:     {}\n",
        report.committed_dir, report.fresh_dir
    ));
    out.push_str("artifact             | metric                           | tolerance  | status\n");
    for c in &report.checks {
        let status = if c.pass {
            "ok".to_string()
        } else {
            format!(
                "FAIL ({}; committed {}, fresh {})",
                c.detail, c.committed, c.fresh
            )
        };
        out.push_str(&format!(
            "{:<20} | {:<32} | {:<10} | {status}\n",
            c.artifact, c.path, c.tolerance
        ));
    }
    for s in &report.skipped {
        out.push_str(&format!("{s:<20} | <not regenerated — skipped>\n"));
    }
    out.push_str(&format!(
        "{} checks, {} failures, {} artifact(s) compared, {} skipped\n",
        report.checks.len(),
        report.failures,
        report.compared.len(),
        report.skipped.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_results() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pstack-bench-diff-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn tolerance_semantics() {
        use Tolerance::*;
        let f = |x: f64| Value::Float(x);
        assert!(Exact.check(&f(1.5), &f(1.5)).is_ok());
        assert!(Exact.check(&f(1.5), &f(1.5000001)).is_err());
        assert!(Exact
            .check(&Value::Bool(true), &Value::Bool(false))
            .is_err());
        assert!(RelTol(0.01).check(&f(100.0), &f(100.9)).is_ok());
        assert!(RelTol(0.01).check(&f(100.0), &f(102.0)).is_err());
        assert!(MinRatio(0.5).check(&f(10.0), &f(5.0)).is_ok());
        assert!(MinRatio(0.5).check(&f(10.0), &f(4.9)).is_err());
        // Faster than committed is never a failure.
        assert!(MinRatio(0.5).check(&f(10.0), &f(50.0)).is_ok());
        // Int/float cross-comparison goes through f64.
        assert!(MinRatio(0.5).check(&Value::Int(10), &f(9.0)).is_ok());
    }

    #[test]
    fn resolve_expands_wildcards_and_indices() {
        let v: Value =
            serde_json::from_str(r#"{"rows":[{"x":1,"y":2},{"x":3,"y":4}],"top":{"z":9}}"#)
                .unwrap();
        let xs = resolve(&v, "rows.*.x");
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].0, "rows.0.x");
        assert_eq!(xs[1].1, &Value::Int(3));
        assert_eq!(resolve(&v, "rows.1.y")[0].1, &Value::Int(4));
        assert_eq!(resolve(&v, "top.z").len(), 1);
        assert!(resolve(&v, "top.missing").is_empty());
        assert!(resolve(&v, "rows.7.x").is_empty());
    }

    /// The committed results must pass their own gate: every shipped rule
    /// resolves, and self-comparison is a clean bill.
    #[test]
    fn committed_results_pass_their_own_gate() {
        let results = repo_results();
        let report =
            diff_dirs(&results, &results, &[]).expect("committed results dir must diff cleanly");
        assert!(
            !report.compared.is_empty(),
            "no committed artifacts matched the rule set"
        );
        assert_eq!(
            report.failures,
            0,
            "self-diff must pass: {}",
            render(&report)
        );
        // Every compared artifact's rules resolved to at least one check.
        for name in &report.compared {
            assert!(
                report.checks.iter().any(|c| &c.artifact == name),
                "{name}: rules produced no checks"
            );
        }
    }

    /// Injecting a regression into a fresh copy must fail the gate — both a
    /// deterministic-output drift and a throughput collapse.
    #[test]
    fn injected_regression_fails_the_gate() {
        let results = repo_results();
        let fresh = scratch("inject");
        // Copy one artifact and corrupt a gated deterministic metric.
        let text = std::fs::read_to_string(results.join("ext_resume.json")).unwrap();
        let mut v: Value = serde_json::from_str(&text).unwrap();
        if let Value::Map(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "rows" {
                    if let Value::Seq(rows) = val {
                        if let Value::Map(row) = &mut rows[0] {
                            for (rk, rv) in row.iter_mut() {
                                if rk == "identical" {
                                    *rv = Value::Int(0);
                                }
                            }
                        }
                    }
                }
            }
        }
        std::fs::write(
            fresh.join("ext_resume.json"),
            serde_json::to_string_pretty(&v).unwrap(),
        )
        .unwrap();
        let report = diff_dirs(&results, &fresh, &[]).expect("diff runs");
        assert!(report.failures > 0, "corrupted metric must fail");
        assert!(report
            .checks
            .iter()
            .any(|c| !c.pass && c.artifact == "ext_resume" && c.path.ends_with("identical")));

        // Throughput collapse: scale a MinRatio-gated metric down 10x.
        let fresh2 = scratch("inject-ratio");
        let text = std::fs::read_to_string(results.join("bench_parallel_tuner.json")).unwrap();
        let mut v: Value = serde_json::from_str(&text).unwrap();
        if let Value::Map(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "plopper" {
                    if let Value::Map(p) = val {
                        for (pk, pv) in p.iter_mut() {
                            if pk == "speedup" {
                                if let Value::Float(f) = pv {
                                    *f /= 10.0;
                                }
                            }
                        }
                    }
                }
            }
        }
        std::fs::write(
            fresh2.join("bench_parallel_tuner.json"),
            serde_json::to_string_pretty(&v).unwrap(),
        )
        .unwrap();
        let report = diff_dirs(&results, &fresh2, &[]).expect("diff runs");
        assert!(
            report
                .checks
                .iter()
                .any(|c| !c.pass && c.path == "plopper.speedup"),
            "10x slowdown must trip the MinRatio gate: {}",
            render(&report)
        );

        let _ = std::fs::remove_dir_all(&fresh);
        let _ = std::fs::remove_dir_all(&fresh2);
    }

    /// A required artifact missing from the fresh directory is a failure;
    /// an unrequired one is merely skipped.
    #[test]
    fn required_artifacts_must_be_generated() {
        let results = repo_results();
        let fresh = scratch("require");
        std::fs::copy(
            results.join("ext_thermal.json"),
            fresh.join("ext_thermal.json"),
        )
        .unwrap();
        let relaxed = diff_dirs(&results, &fresh, &[]).expect("diff runs");
        assert_eq!(relaxed.failures, 0);
        assert!(relaxed.skipped.iter().any(|s| s == "bench_history"));

        let strict =
            diff_dirs(&results, &fresh, &["bench_history".to_string()]).expect("diff runs");
        assert!(strict.failures > 0, "required artifact missing must fail");
        let _ = std::fs::remove_dir_all(&fresh);
    }
}
