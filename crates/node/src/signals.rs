//! Variorum/PowerAPI-style typed signal catalog.
//!
//! Upper layers read node telemetry through named signals rather than by
//! reaching into model internals — the "standard interface to interact with
//! ... hardware knobs across different vendor HPC systems" the paper calls
//! for. Each signal maps to one measured or derived quantity.

use serde::{Deserialize, Serialize};

/// Readable node signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Instantaneous node power, watts.
    NodePowerWatts,
    /// Total node energy since boot, joules.
    NodeEnergyJoules,
    /// Mean effective core frequency across packages, GHz.
    CoreFreqGhz,
    /// Hottest package temperature, °C.
    MaxTemperatureC,
    /// Instructions retired (summed over packages).
    InstructionsRetired,
    /// Unhalted core cycles (summed).
    CoreCycles,
    /// Floating-point operations (summed).
    FlopsRetired,
    /// DRAM bytes moved (summed).
    DramBytes,
    /// Microseconds spent in MPI (summed).
    MpiTimeUs,
    /// Microseconds of MPI wait slack (summed).
    MpiWaitUs,
    /// Application progress units completed (summed).
    Progress,
    /// The node power cap, watts (NaN when uncapped).
    PowerCapWatts,
}

impl Signal {
    /// All signals, for enumeration in catalogs and tests.
    pub const ALL: [Signal; 12] = [
        Signal::NodePowerWatts,
        Signal::NodeEnergyJoules,
        Signal::CoreFreqGhz,
        Signal::MaxTemperatureC,
        Signal::InstructionsRetired,
        Signal::CoreCycles,
        Signal::FlopsRetired,
        Signal::DramBytes,
        Signal::MpiTimeUs,
        Signal::MpiWaitUs,
        Signal::Progress,
        Signal::PowerCapWatts,
    ];

    /// Unit string.
    pub fn unit(self) -> &'static str {
        match self {
            Signal::NodePowerWatts | Signal::PowerCapWatts => "W",
            Signal::NodeEnergyJoules => "J",
            Signal::CoreFreqGhz => "GHz",
            Signal::MaxTemperatureC => "degC",
            Signal::InstructionsRetired | Signal::CoreCycles | Signal::FlopsRetired => "count",
            Signal::DramBytes => "bytes",
            Signal::MpiTimeUs | Signal::MpiWaitUs => "us",
            Signal::Progress => "work",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_signals_have_units() {
        for s in Signal::ALL {
            assert!(!s.unit().is_empty());
        }
    }

    #[test]
    fn catalog_is_exhaustive() {
        assert_eq!(Signal::ALL.len(), 12);
    }
}
