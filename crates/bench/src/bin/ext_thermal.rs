//! Regenerate extension E2: thermal-aware node selection.
use powerstack_core::experiments::thermal;
fn main() {
    pstack_analyze::startup_gate();
    let r = pstack_bench::traced("ext_thermal", |_tc| {
        pstack_bench::timed("E2", thermal::run_default)
    });
    pstack_bench::emit("ext_thermal", &thermal::render(&r), &r);
}
