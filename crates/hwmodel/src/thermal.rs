//! Lumped-RC package thermal model with Tj_max throttling.
//!
//! ```text
//! C_th · dT/dt = P − (T − T_amb)/R_th
//! ```
//!
//! Integrated exactly over each step (the ODE is linear, so the exponential
//! solution is closed-form), which keeps long steps stable. Crossing `t_throttle`
//! engages thermal throttling; the package layer then clamps the P-state.

use serde::{Deserialize, Serialize};

/// Lumped thermal parameters of one package + heatsink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Thermal resistance junction→ambient, °C/W.
    pub r_th: f64,
    /// Thermal capacitance, J/°C.
    pub c_th: f64,
    /// Ambient (inlet) temperature, °C.
    pub t_ambient: f64,
    /// Throttle threshold, °C.
    pub t_throttle: f64,
    /// Hysteresis: throttling releases below `t_throttle - hysteresis`.
    pub hysteresis: f64,
    /// Current junction temperature, °C.
    t_now: f64,
    /// Whether the package is currently throttling.
    throttling: bool,
}

impl ThermalModel {
    /// Server default: R=0.25 °C/W, C=120 J/°C, 25 °C inlet, throttle at 95 °C.
    ///
    /// Steady state at 160 W is 25 + 40 = 65 °C; it takes sustained high power
    /// plus warm inlet (or a bad-variation chip) to throttle — matching how
    /// rarely production nodes throttle.
    pub fn server_default() -> Self {
        ThermalModel::new(0.25, 120.0, 25.0, 95.0, 5.0)
    }

    /// Build a model starting at ambient temperature.
    ///
    /// # Panics
    /// Panics on non-positive R/C or a throttle point at/below ambient.
    pub fn new(r_th: f64, c_th: f64, t_ambient: f64, t_throttle: f64, hysteresis: f64) -> Self {
        assert!(r_th > 0.0 && c_th > 0.0, "R and C must be positive");
        assert!(t_throttle > t_ambient, "throttle point must exceed ambient");
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        ThermalModel {
            r_th,
            c_th,
            t_ambient,
            t_throttle,
            hysteresis,
            t_now: t_ambient,
            throttling: false,
        }
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.t_now
    }

    /// Whether thermal throttling is currently engaged.
    pub fn is_throttling(&self) -> bool {
        self.throttling
    }

    /// Steady-state temperature at constant power `p_w`.
    pub fn steady_state_c(&self, p_w: f64) -> f64 {
        self.t_ambient + p_w * self.r_th
    }

    /// Advance the thermal state by `dt_s` seconds at constant power `p_w`,
    /// using the exact exponential solution. Updates the throttle latch.
    pub fn advance(&mut self, p_w: f64, dt_s: f64) {
        assert!(dt_s >= 0.0, "time step must be non-negative");
        assert!(p_w >= 0.0, "power must be non-negative");
        let t_inf = self.steady_state_c(p_w);
        let tau = self.r_th * self.c_th;
        let decay = (-dt_s / tau).exp();
        self.t_now = t_inf + (self.t_now - t_inf) * decay;
        if self.t_now >= self.t_throttle {
            self.throttling = true;
        } else if self.t_now <= self.t_throttle - self.hysteresis {
            self.throttling = false;
        }
    }

    /// Reset to ambient, clearing the throttle latch.
    pub fn reset(&mut self) {
        self.t_now = self.t_ambient;
        self.throttling = false;
    }

    /// Change the ambient (inlet) temperature — rack position, cooling
    /// changes. The junction temperature floor moves with it.
    pub fn set_ambient_c(&mut self, t_ambient: f64) {
        assert!(
            t_ambient < self.t_throttle,
            "ambient must stay below the throttle point"
        );
        let delta = t_ambient - self.t_ambient;
        self.t_ambient = t_ambient;
        self.t_now += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient() {
        let th = ThermalModel::server_default();
        assert_eq!(th.temperature_c(), 25.0);
        assert!(!th.is_throttling());
    }

    #[test]
    fn approaches_steady_state() {
        let mut th = ThermalModel::server_default();
        for _ in 0..1000 {
            th.advance(160.0, 1.0);
        }
        let ss = th.steady_state_c(160.0);
        assert!(
            (th.temperature_c() - ss).abs() < 0.01,
            "T={} ss={}",
            th.temperature_c(),
            ss
        );
        assert!((ss - 65.0).abs() < 1e-9);
    }

    #[test]
    fn exact_solution_step_size_invariant() {
        let mut a = ThermalModel::server_default();
        let mut b = ThermalModel::server_default();
        a.advance(200.0, 100.0);
        for _ in 0..1000 {
            b.advance(200.0, 0.1);
        }
        assert!((a.temperature_c() - b.temperature_c()).abs() < 1e-6);
    }

    #[test]
    fn throttles_and_releases_with_hysteresis() {
        // Small C so it heats fast; throttle at 60.
        let mut th = ThermalModel::new(0.25, 10.0, 25.0, 60.0, 5.0);
        while !th.is_throttling() {
            th.advance(300.0, 1.0); // steady state 100 °C — will cross
        }
        assert!(th.temperature_c() >= 60.0);
        // Cooling: must drop below 55 to release.
        th.advance(0.0, 1.0);
        while th.temperature_c() > 55.0 {
            assert!(th.is_throttling(), "hysteresis must hold until 55");
            th.advance(0.0, 1.0);
        }
        th.advance(0.0, 1.0);
        assert!(!th.is_throttling());
    }

    #[test]
    fn cooling_towards_ambient() {
        let mut th = ThermalModel::server_default();
        th.advance(300.0, 60.0);
        let hot = th.temperature_c();
        th.advance(0.0, 600.0);
        assert!(th.temperature_c() < hot);
        assert!((th.temperature_c() - 25.0).abs() < 1.0);
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut th = ThermalModel::server_default();
        th.advance(500.0, 0.0);
        assert_eq!(th.temperature_c(), 25.0);
    }
}
