//! GEOPM-like job runtime (§3.2.2, Figure 3).
//!
//! Models GEOPM's architecture: a tree of per-node controllers aggregating
//! telemetry to a root (here: [`pstack_telemetry::agg::TreeAggregator`] for
//! the topology accounting, with the root logic centralized), a plugin agent
//! selected by policy, and an **endpoint** — "a gateway between a persistent
//! compute node daemon (like SLURM) and an application power-management
//! daemon (like GEOPM root controller)" — over which the resource manager
//! pushes policy updates mid-run.
//!
//! The five prepacked policies the paper lists are implemented:
//! monitor, power governor (static node cap), power balancer (job budget
//! steered toward stragglers), frequency map (static per-region frequency),
//! and energy-efficient (per-region frequency under a performance margin).

use crate::agent::{ArbitratedNodes, JobTelemetry, KnobKind, RuntimeAgent, BARRIER_REGION};
use pstack_hwmodel::{PhaseKind, PhaseMix};
use pstack_sim::{SimDuration, SimTime};
use pstack_telemetry::agg::TreeAggregator;
use std::collections::HashMap;

/// The GEOPM policy, normally chosen by the site/RM (Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum GeopmPolicy {
    /// Telemetry only; no actuation.
    Monitor,
    /// Uniform static node power cap, watts per node.
    PowerGovernor {
        /// Cap applied to every node of the job.
        node_cap_w: f64,
    },
    /// Job-level power budget, dynamically balanced toward stragglers.
    PowerBalancer {
        /// Total budget across the job's nodes, watts.
        job_budget_w: f64,
    },
    /// Static frequency per region (from a site profile database).
    FrequencyMap {
        /// Default frequency for unmapped regions, GHz.
        default_ghz: f64,
        /// Region name → frequency, GHz.
        map: HashMap<String, f64>,
    },
    /// Per-region frequency selection under a performance-degradation margin.
    EnergyEfficient {
        /// Tolerated performance loss, e.g. 0.1 = 10%.
        perf_margin: f64,
    },
}

/// A policy update pushed through the endpoint by the resource manager.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyUpdate {
    /// The new policy.
    pub policy: GeopmPolicy,
}

/// The RM-side handle of the endpoint channel.
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: crossbeam::channel::Sender<PolicyUpdate>,
}

impl Endpoint {
    /// Push a policy update; returns `false` if the job is gone.
    pub fn send(&self, update: PolicyUpdate) -> bool {
        self.tx.send(update).is_ok()
    }
}

/// The GEOPM runtime agent.
#[derive(Debug)]
pub struct Geopm {
    policy: GeopmPolicy,
    rx: crossbeam::channel::Receiver<PolicyUpdate>,
    tx: crossbeam::channel::Sender<PolicyUpdate>,
    /// Balancer state: current per-node caps.
    caps_w: Vec<f64>,
    /// Balancer state: last-seen per-node wait seconds.
    last_wait_s: Vec<f64>,
    /// Balancer state: smoothed per-node effective frequency (EMA).
    freq_ema: Vec<f64>,
    /// Telemetry tree topology (for message accounting / reports).
    tree: Option<TreeAggregator>,
    /// Samples aggregated (monitor mode report).
    samples: usize,
    /// Energy-efficient state: per-region chosen frequency.
    region_freq: HashMap<String, f64>,
}

impl Geopm {
    /// Power floor per node the balancer will not go below, watts.
    pub const MIN_NODE_CAP_W: f64 = 120.0;

    /// Create a GEOPM instance with the given launch policy.
    pub fn new(policy: GeopmPolicy) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded();
        Geopm {
            policy,
            rx,
            tx,
            caps_w: Vec::new(),
            last_wait_s: Vec::new(),
            freq_ema: Vec::new(),
            tree: None,
            samples: 0,
            region_freq: HashMap::new(),
        }
    }

    /// The endpoint handle the resource manager keeps (§3.2.2 "Interfaces to
    /// system-level agents").
    pub fn endpoint(&self) -> Endpoint {
        Endpoint {
            tx: self.tx.clone(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &GeopmPolicy {
        &self.policy
    }

    /// Telemetry samples aggregated so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The balancer's current per-node power caps (empty for other policies).
    pub fn node_caps_w(&self) -> &[f64] {
        &self.caps_w
    }

    /// Tree levels used for telemetry aggregation (None before job start).
    pub fn tree_levels(&self) -> Option<usize> {
        self.tree.as_ref().map(|t| t.levels())
    }

    fn apply_power_policy(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        let window = SimDuration::from_millis(10);
        match &self.policy {
            GeopmPolicy::PowerGovernor { node_cap_w } => {
                for i in 0..ctl.n_nodes() {
                    ctl.set_power_cap(i, *node_cap_w, window);
                }
                self.caps_w = vec![*node_cap_w; ctl.n_nodes()];
            }
            GeopmPolicy::PowerBalancer { job_budget_w } => {
                let n = ctl.n_nodes() as f64;
                let per = (job_budget_w / n).max(Self::MIN_NODE_CAP_W);
                self.caps_w = vec![per; ctl.n_nodes()];
                for i in 0..ctl.n_nodes() {
                    ctl.set_power_cap(i, per, window);
                }
            }
            _ => {}
        }
    }

    /// Frequency choice for the energy-efficient agent: phase-aware with the
    /// margin trading depth of down-scaling.
    fn efficient_freq(mix: &PhaseMix, perf_margin: f64) -> f64 {
        // Deeper margins permit deeper down-scaling of non-compute phases.
        let depth = perf_margin.clamp(0.0, 0.5);
        match mix.dominant() {
            PhaseKind::ComputeBound => 3.5 - 1.5 * depth,
            PhaseKind::MemoryBound => 2.6 - 2.0 * depth,
            PhaseKind::CommBound => 1.2,
            PhaseKind::IoBound => 1.0,
        }
        .max(1.0)
    }
}

impl RuntimeAgent for Geopm {
    fn name(&self) -> &str {
        "geopm"
    }

    fn knobs(&self) -> Vec<KnobKind> {
        match self.policy {
            GeopmPolicy::Monitor => vec![],
            GeopmPolicy::PowerGovernor { .. } | GeopmPolicy::PowerBalancer { .. } => {
                vec![KnobKind::PowerCap]
            }
            GeopmPolicy::FrequencyMap { .. } | GeopmPolicy::EnergyEfficient { .. } => {
                vec![KnobKind::CoreFreq]
            }
        }
    }

    fn control_period(&self) -> SimDuration {
        // GEOPM's control loop runs at 5–10 ms on real systems; 100 ms keeps
        // the co-simulation tractable while staying far below phase lengths.
        SimDuration::from_millis(100)
    }

    fn on_job_start(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        let n = ctl.n_nodes();
        self.tree = Some(TreeAggregator::new(n, 8));
        self.last_wait_s = vec![0.0; n];
        self.freq_ema = vec![0.0; n];
        self.apply_power_policy(ctl);
    }

    fn on_region_enter(
        &mut self,
        _now: SimTime,
        node: usize,
        region: &str,
        mix: &PhaseMix,
        ctl: &mut ArbitratedNodes<'_>,
    ) {
        match &self.policy {
            GeopmPolicy::FrequencyMap { default_ghz, map } => {
                let f = map.get(region).copied().unwrap_or(*default_ghz);
                ctl.set_freq_limit_ghz(node, f);
            }
            GeopmPolicy::EnergyEfficient { perf_margin } => {
                if region == BARRIER_REGION {
                    ctl.set_freq_limit_ghz(node, 1.2);
                    return;
                }
                let margin = *perf_margin;
                let f = *self
                    .region_freq
                    .entry(region.to_string())
                    .or_insert_with(|| Self::efficient_freq(mix, margin));
                ctl.set_freq_limit_ghz(node, f);
            }
            _ => {}
        }
    }

    fn on_control(
        &mut self,
        _now: SimTime,
        telemetry: &JobTelemetry,
        ctl: &mut ArbitratedNodes<'_>,
    ) {
        self.samples += 1;
        // Drain endpoint updates (RM interaction, Figure 3).
        let mut new_policy = None;
        while let Ok(update) = self.rx.try_recv() {
            new_policy = Some(update.policy);
        }
        if let Some(p) = new_policy {
            self.policy = p;
            self.apply_power_policy(ctl);
        }

        if let GeopmPolicy::PowerBalancer { job_budget_w } = &self.policy {
            let n = ctl.n_nodes();
            if self.caps_w.len() != n {
                self.apply_power_policy(ctl);
                return;
            }
            // Steering signal: the cap-clamped effective core frequency.
            // A node whose RAPL controller had to clip deeper than its peers
            // is the persistent critical path — barrier-wait accounting lags
            // a full phase behind and makes the loop chase its own tail.
            let budget = *job_budget_w;
            let alpha = 0.3;
            for i in 0..self.freq_ema.len() {
                self.freq_ema[i] =
                    (1.0 - alpha) * self.freq_ema[i] + alpha * telemetry.node_freq_ghz[i];
            }
            self.last_wait_s = telemetry.node_wait_s.clone();
            let ema = &self.freq_ema;
            let max_f = ema.iter().cloned().fold(0.0, f64::max);
            let min_f = ema.iter().cloned().fold(f64::INFINITY, f64::min);
            if max_f - min_f > 0.02 {
                let step_w = 4.0;
                // Slowest node receives power; fastest donates.
                let straggler = ema
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("nodes");
                let donor = ema
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("nodes");
                if donor != straggler && self.caps_w[donor] - step_w >= Self::MIN_NODE_CAP_W {
                    self.caps_w[donor] -= step_w;
                    self.caps_w[straggler] += step_w;
                }
            }
            // Renormalize to the budget (guards drift) and apply.
            let sum: f64 = self.caps_w.iter().sum();
            if sum > 0.0 {
                let scale = budget / sum;
                for c in &mut self.caps_w {
                    *c = (*c * scale).max(Self::MIN_NODE_CAP_W);
                }
            }
            let window = SimDuration::from_millis(10);
            for i in 0..n {
                ctl.set_power_cap(i, self.caps_w[i], window);
            }
        }
    }

    fn on_job_end(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        match self.policy {
            GeopmPolicy::PowerGovernor { .. } | GeopmPolicy::PowerBalancer { .. } => {
                for i in 0..ctl.n_nodes() {
                    ctl.clear_power_cap(i);
                }
            }
            GeopmPolicy::FrequencyMap { .. } | GeopmPolicy::EnergyEfficient { .. } => {
                for i in 0..ctl.n_nodes() {
                    ctl.clear_freq_limit(i);
                }
            }
            GeopmPolicy::Monitor => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterMode;
    use crate::exec::{JobResult, JobRunner};
    use pstack_apps::synthetic::{Profile, SyntheticApp};
    use pstack_apps::workload::AppModel;
    use pstack_apps::MpiModel;
    use pstack_hwmodel::{NodeConfig, VariationModel};
    use pstack_node::NodeManager;
    use pstack_sim::SeedTree;

    fn varied_fleet(n: usize, seed: u64) -> Vec<NodeManager> {
        let seeds = SeedTree::new(seed);
        NodeManager::fleet(
            n,
            NodeConfig::server_default(),
            &VariationModel::typical(),
            &seeds,
        )
    }

    fn run_policy(policy: GeopmPolicy, seed: u64) -> (JobResult, usize) {
        let app = SyntheticApp::new(Profile::ComputeHeavy, 30.0, 20);
        let n = 8;
        let mut nodes = varied_fleet(n, seed);
        let seeds = SeedTree::new(seed + 1000);
        // No application-side imbalance: the slack the balancer corrects here
        // comes purely from manufacturing variation under the power cap.
        let mut runner = JobRunner::new(
            &app.workload(n),
            n,
            &MpiModel::balanced_light(),
            &seeds,
            ArbiterMode::Gated,
        );
        let mut geopm = Geopm::new(policy);
        let result = {
            let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut geopm];
            runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut agents)
        };
        (result, geopm.samples())
    }

    #[test]
    fn monitor_collects_without_actuating() {
        let (free, samples) = run_policy(GeopmPolicy::Monitor, 1);
        assert!(samples > 10, "control loop ran: {samples}");
        assert!(free.avg_power_w > 200.0, "no caps applied");
    }

    #[test]
    fn governor_caps_power() {
        let (free, _) = run_policy(GeopmPolicy::Monitor, 2);
        let (capped, _) = run_policy(GeopmPolicy::PowerGovernor { node_cap_w: 280.0 }, 2);
        assert!(
            capped.avg_power_w < 280.0 * 8.0 * 1.05,
            "job power {} under 8×280",
            capped.avg_power_w
        );
        assert!(capped.avg_power_w < free.avg_power_w);
        assert!(capped.makespan > free.makespan, "capping costs time");
    }

    #[test]
    fn balancer_beats_uniform_governor_under_same_budget() {
        // Under manufacturing variation, steering power at stragglers should
        // finish faster than a uniform split of the same budget.
        let budget = 8.0 * 280.0;
        let mut balancer_wins = 0;
        for seed in [3, 4, 5] {
            let (gov, _) = run_policy(GeopmPolicy::PowerGovernor { node_cap_w: 280.0 }, seed);
            let (bal, _) = run_policy(
                GeopmPolicy::PowerBalancer {
                    job_budget_w: budget,
                },
                seed,
            );
            assert!(
                bal.avg_power_w <= budget * 1.05,
                "balancer respects budget: {}",
                bal.avg_power_w
            );
            eprintln!(
                "seed {seed}: gov {:.2}s {:.0}W, bal {:.2}s {:.0}W",
                gov.makespan.as_secs_f64(),
                gov.avg_power_w,
                bal.makespan.as_secs_f64(),
                bal.avg_power_w
            );
            if bal.makespan <= gov.makespan {
                balancer_wins += 1;
            }
        }
        assert!(
            balancer_wins >= 2,
            "balancer won only {balancer_wins}/3 seeds"
        );
    }

    #[test]
    fn frequency_map_applies_per_region() {
        let mut map = HashMap::new();
        map.insert("exchange".to_string(), 1.2);
        let (mapped, _) = run_policy(
            GeopmPolicy::FrequencyMap {
                default_ghz: 3.5,
                map,
            },
            6,
        );
        let (free, _) = run_policy(GeopmPolicy::Monitor, 6);
        assert!(
            mapped.energy_j < free.energy_j,
            "mapping comm low saves energy"
        );
    }

    #[test]
    fn energy_efficient_saves_energy_within_margin() {
        let app = SyntheticApp::new(Profile::MemoryHeavy, 30.0, 20);
        let n = 4;
        let run = |policy: GeopmPolicy| {
            let mut nodes = varied_fleet(n, 9);
            let seeds = SeedTree::new(10);
            let mut runner = JobRunner::new(
                &app.workload(n),
                n,
                &MpiModel::typical(),
                &seeds,
                ArbiterMode::Gated,
            );
            let mut geopm = Geopm::new(policy);
            let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut geopm];
            runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut agents)
        };
        let free = run(GeopmPolicy::Monitor);
        let ee = run(GeopmPolicy::EnergyEfficient { perf_margin: 0.10 });
        assert!(
            ee.energy_j < free.energy_j * 0.95,
            "memory-bound app should save >5%: {} vs {}",
            ee.energy_j,
            free.energy_j
        );
        let slowdown = ee.makespan.as_secs_f64() / free.makespan.as_secs_f64();
        assert!(slowdown < 1.15, "margin respected: {slowdown}");
    }

    #[test]
    fn endpoint_policy_update_mid_run() {
        let app = SyntheticApp::new(Profile::ComputeHeavy, 60.0, 40);
        let n = 2;
        let mut nodes = varied_fleet(n, 11);
        let seeds = SeedTree::new(12);
        let mut runner = JobRunner::new(
            &app.workload(n),
            n,
            &MpiModel::typical(),
            &seeds,
            ArbiterMode::Gated,
        );
        let mut geopm = Geopm::new(GeopmPolicy::Monitor);
        let endpoint = geopm.endpoint();
        let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut geopm];
        // Run 10 s uncapped, then the "RM" pushes a power governor policy.
        let t = runner.advance(
            SimTime::ZERO,
            SimTime::from_secs(10),
            &mut nodes,
            &mut agents,
        );
        assert!(endpoint.send(PolicyUpdate {
            policy: GeopmPolicy::PowerGovernor { node_cap_w: 250.0 },
        }));
        runner.advance(t, SimTime::from_secs(11), &mut nodes, &mut agents);
        drop(agents);
        // The cap must now be installed on the hardware.
        for nm in &nodes {
            assert_eq!(nm.read(pstack_node::Signal::PowerCapWatts), 250.0);
        }
    }

    #[test]
    fn tree_topology_sized_to_job() {
        let mut geopm = Geopm::new(GeopmPolicy::Monitor);
        assert_eq!(geopm.tree_levels(), None);
        let mut nodes = varied_fleet(64, 13);
        let arb = crate::arbiter::Arbiter::new(ArbiterMode::Gated);
        let mut ctl = ArbitratedNodes::new(&mut nodes, &arb, 0, SimTime::ZERO);
        geopm.on_job_start(&mut ctl);
        assert_eq!(geopm.tree_levels(), Some(2)); // 64 leaves, fanout 8
    }
}
