//! Regenerate use case 3.2.3's cross-layer extension: the ytopt loop over
//! application + system knobs *under an imposed power cap*.
//!
//! "Under a system power cap, the framework can be used to find the best
//! combination of different parameters for the optimal solution (the
//! smallest runtime, the lowest power, or the lowest energy)."
//!
//! Part A sweeps the imposed node power cap and tunes runtime at each level:
//! the best transformation **changes with the cap** (echoing §3.2.1's moving
//! optimum at the loop-transformation layer). Part B fixes a tight cap and
//! sweeps the objective: each objective lands on a different configuration.

use powerstack_core::cotune::KernelCoTune;
use powerstack_core::Objective;
use pstack_autotune::ForestSearch;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    label: String,
    best_cost: f64,
    config: String,
    time_s: f64,
    energy_j: f64,
    power_w: f64,
}

fn tune_at(caps: Vec<f64>, objective: Objective, label: &str, seed: u64) -> Row {
    let mut cotune = KernelCoTune::new(objective);
    cotune.node_caps_w = caps;
    let space = cotune.space();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = pstack_bench::timed(label, || {
        pstack_bench::run_or_exit(
            label,
            cotune.tune_parallel(&mut ForestSearch::new(), 60, seed, workers),
        )
    });
    let best = report.db.best().expect("evaluated").clone();
    Row {
        label: label.to_string(),
        best_cost: report.best_objective,
        config: space.describe(&report.best_config),
        time_s: best.aux.get("time_s").copied().unwrap_or(f64::NAN),
        energy_j: best.aux.get("energy_j").copied().unwrap_or(f64::NAN),
        power_w: best.aux.get("power_w").copied().unwrap_or(f64::NAN),
    }
}

fn main() {
    pstack_analyze::startup_gate();
    let seed = 20200909;
    let rows = pstack_bench::traced("uc3_cross_layer_ytopt", |_tc| {
        // Part A: min-time at three imposed cap levels.
        let mut rows = vec![
            tune_at(vec![0.0], Objective::MinTime, "uncapped/min-time", seed),
            tune_at(vec![300.0], Objective::MinTime, "cap300W/min-time", seed),
            tune_at(vec![240.0], Objective::MinTime, "cap240W/min-time", seed),
        ];
        // Part B: the cap itself becomes a knob; the paper's three objectives
        // ("smallest runtime, lowest power, lowest energy") pick different caps.
        let all_caps = || vec![0.0, 300.0, 240.0];
        rows.push(tune_at(
            all_caps(),
            Objective::MinTime,
            "free-cap/min-time",
            seed,
        ));
        rows.push(tune_at(
            all_caps(),
            Objective::MinEnergy,
            "free-cap/min-energy",
            seed,
        ));
        rows.push(tune_at(
            all_caps(),
            Objective::MinPower,
            "free-cap/min-power",
            seed,
        ));
        rows
    });

    let mut out = String::from(
        "USE CASE 3.2.3 / CROSS-LAYER YTOPT UNDER IMPOSED POWER CAPS (60 evals each)\n\
         scenario            | time_s | energy_kJ | power_W | configuration\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<19} | {:>6.1} | {:>9.2} | {:>7.0} | {}\n",
            r.label,
            r.time_s,
            r.energy_j / 1e3,
            r.power_w,
            r.config,
        ));
    }
    pstack_bench::emit("uc3_cross_layer_ytopt", &out, &rows);
}
