//! The write-ahead log: an append-only file of checksummed JSON frames.
//!
//! Layout:
//!
//! ```text
//! [magic: 8 bytes "PSTKWAL\0"] [format version: u32 LE]
//! [frame]*
//!
//! frame := [len: u32 LE] [crc: u64 LE, FNV-1a of payload] [payload: len bytes of JSON]
//! ```
//!
//! The first frame is the *header record* (session metadata); every later
//! frame is one durable event. Appends go to disk before the in-memory
//! search sees the outcome, so the log is always at least as new as the
//! session it protects. `fsync` is batched: the writer syncs every
//! `fsync_every` appends (and on demand), trading a bounded window of
//! re-evaluable work for throughput.
//!
//! Reading is longest-valid-prefix: the reader walks frames until the
//! first one that is short, fails its checksum, or fails to parse, and
//! reports everything before it plus a [`TornTail`] marker — it never
//! panics on a half-written file. [`WalWriter::open_append`] physically
//! truncates such a tail before appending new frames.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

use crate::error::CkptError;
use crate::fnv1a64;

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"PSTKWAL\0";

/// Format version this build writes and understands.
pub const WAL_FORMAT_VERSION: u32 = 1;

/// Bytes of magic + version that precede the first frame.
const WAL_PREAMBLE: usize = 12;

/// Bytes of length + checksum that precede each frame payload.
const FRAME_HEADER: usize = 12;

/// Description of an invalid suffix found while reading a WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the valid prefix ends.
    pub offset: u64,
    /// Why the frame at `offset` was rejected.
    pub reason: String,
}

/// Everything recovered from a WAL file.
#[derive(Debug, Clone)]
pub struct WalContents {
    /// Format version stamped in the preamble.
    pub version: u32,
    /// The header record (first frame).
    pub header: Value,
    /// Data records, in append order.
    pub records: Vec<Value>,
    /// Present when the file ends in an invalid frame; the valid prefix
    /// was returned and the tail should be truncated before appending.
    pub torn_tail: Option<TornTail>,
}

/// Append handle over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync_every: usize,
    unsynced: usize,
    records: usize,
}

impl WalWriter {
    /// Create a fresh WAL at `path` (truncating any existing file) and
    /// write the preamble plus the header record.
    pub fn create(path: &Path, header: &Value, fsync_every: usize) -> Result<Self, CkptError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| CkptError::io(path, e))?;
        let mut preamble = Vec::with_capacity(WAL_PREAMBLE);
        preamble.extend_from_slice(&WAL_MAGIC);
        preamble.extend_from_slice(&WAL_FORMAT_VERSION.to_le_bytes());
        file.write_all(&preamble)
            .map_err(|e| CkptError::io(path, e))?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            fsync_every: fsync_every.max(1),
            unsynced: 0,
            records: 0,
        };
        w.write_frame(header)?;
        w.sync()?;
        w.records = 0; // the header is not a data record
        Ok(w)
    }

    /// Reopen an existing WAL for appending: validate it, truncate any
    /// torn tail, and return the writer together with the recovered
    /// contents.
    pub fn open_append(path: &Path, fsync_every: usize) -> Result<(Self, WalContents), CkptError> {
        let contents = read_wal(path)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| CkptError::io(path, e))?;
        if let Some(tail) = &contents.torn_tail {
            // Truncate-and-warn: drop the invalid suffix so new frames
            // start on a clean boundary.
            file.set_len(tail.offset)
                .map_err(|e| CkptError::io(path, e))?;
        }
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            fsync_every: fsync_every.max(1),
            unsynced: 0,
            records: contents.records.len(),
        };
        w.file
            .seek(SeekFrom::End(0))
            .map_err(|e| CkptError::io(&w.path, e))?;
        Ok((w, contents))
    }

    /// Append one data record. The frame hits the file immediately;
    /// `fsync` happens every `fsync_every` appends.
    pub fn append<T: Serialize>(&mut self, record: &T) -> Result<(), CkptError> {
        self.write_frame(&record.to_value())?;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force all buffered frames to stable storage.
    pub fn sync(&mut self) -> Result<(), CkptError> {
        self.file
            .sync_data()
            .map_err(|e| CkptError::io(&self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Replace the log with an empty one carrying `header` (called after
    /// a snapshot made the old records redundant). Atomic: the new log is
    /// staged in a sibling temp file and renamed into place, so a crash
    /// mid-compaction leaves either the old or the new log, never a mix.
    pub fn compact(&mut self, header: &Value) -> Result<(), CkptError> {
        let tmp = self.path.with_extension("wal.tmp");
        let fresh = WalWriter::create(&tmp, header, self.fsync_every)?;
        drop(fresh);
        std::fs::rename(&tmp, &self.path).map_err(|e| CkptError::io(&self.path, e))?;
        crate::snapshot::sync_parent_dir(&self.path);
        let mut file = OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| CkptError::io(&self.path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| CkptError::io(&self.path, e))?;
        self.file = file;
        self.unsynced = 0;
        self.records = 0;
        Ok(())
    }

    /// Number of data records appended (or recovered) so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_frame(&mut self, payload: &Value) -> Result<(), CkptError> {
        let json = serde_json::to_string(payload).map_err(|e| CkptError::Encode {
            detail: e.to_string(),
        })?;
        let bytes = json.as_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.file
            .write_all(&frame)
            .map_err(|e| CkptError::io(&self.path, e))
    }
}

/// Read and validate a whole WAL, returning its longest valid prefix.
///
/// A bad preamble or an unreadable *header record* is unrecoverable
/// ([`CkptError::Corrupt`] / [`CkptError::SchemaMismatch`]): without the
/// session metadata there is nothing to resume. Any later invalid frame
/// merely ends the scan and is reported as a [`TornTail`].
pub fn read_wal(path: &Path) -> Result<WalContents, CkptError> {
    let mut file = File::open(path).map_err(|e| CkptError::io(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| CkptError::io(path, e))?;

    if bytes.len() < WAL_PREAMBLE {
        return Err(CkptError::corrupt(path, "file shorter than the preamble"));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(CkptError::corrupt(path, "bad magic; not a session WAL"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != WAL_FORMAT_VERSION {
        return Err(CkptError::SchemaMismatch {
            path: path.display().to_string(),
            expected: WAL_FORMAT_VERSION,
            found: version,
        });
    }

    let mut offset = WAL_PREAMBLE;
    let mut header: Option<Value> = None;
    let mut records = Vec::new();
    let mut torn_tail = None;
    while offset < bytes.len() {
        match decode_frame(&bytes, offset) {
            Ok((payload, next)) => {
                if header.is_none() {
                    header = Some(payload);
                } else {
                    records.push(payload);
                }
                offset = next;
            }
            Err(reason) => {
                if header.is_none() {
                    // The header itself is unreadable: unrecoverable.
                    return Err(CkptError::corrupt(path, format!("header record: {reason}")));
                }
                torn_tail = Some(TornTail {
                    offset: offset as u64,
                    reason,
                });
                break;
            }
        }
    }
    let header = header.ok_or_else(|| CkptError::corrupt(path, "missing header record"))?;
    Ok(WalContents {
        version,
        header,
        records,
        torn_tail,
    })
}

/// Decode the data records of a WAL into a concrete type.
pub fn decode_records<T: Deserialize>(contents: &WalContents) -> Result<Vec<T>, CkptError> {
    contents
        .records
        .iter()
        .map(|v| {
            T::from_value(v).map_err(|e| CkptError::Encode {
                detail: e.to_string(),
            })
        })
        .collect()
}

fn decode_frame(bytes: &[u8], offset: usize) -> Result<(Value, usize), String> {
    let remaining = bytes.len() - offset;
    if remaining < FRAME_HEADER {
        return Err(format!(
            "{remaining}-byte fragment where a frame header was expected"
        ));
    }
    let len = u32::from_le_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]) as usize;
    let crc = u64::from_le_bytes([
        bytes[offset + 4],
        bytes[offset + 5],
        bytes[offset + 6],
        bytes[offset + 7],
        bytes[offset + 8],
        bytes[offset + 9],
        bytes[offset + 10],
        bytes[offset + 11],
    ]);
    let start = offset + FRAME_HEADER;
    if bytes.len() - start < len {
        return Err(format!(
            "frame claims {len} payload bytes but only {} remain",
            bytes.len() - start
        ));
    }
    let payload = &bytes[start..start + len];
    if fnv1a64(payload) != crc {
        return Err("payload checksum mismatch".to_string());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("payload is not valid JSON: {e}"))?;
    Ok((value, start + len))
}
