//! Use case §3.2.7 — two co-resident runtimes: COUNTDOWN + MERIC.
//!
//! "The challenge is to implement a communication layer ... which guarantees
//! that both tools keep the system's knowledge of which tool is in charge
//! ... without creating a conflict." Variants compared:
//!
//! - **none** — no runtime;
//! - **countdown-only** — MPI phases handled, app regions untouched;
//! - **meric-only** — app regions tuned, barrier slack untouched;
//! - **both-conflicting** — both actuate core frequency with no coordination
//!   (MERIC's region measurements get corrupted by COUNTDOWN's overwrites);
//! - **both-coordinated** — the communication layer: MERIC delegates
//!   communication regions to COUNTDOWN ([`Meric::with_comm_delegation`])
//!   and agent ordering lets MERIC own compute/memory regions;
//! - **both-gated** — the ownership arbiter simply blocks the second tool's
//!   frequency writes (safe, but forfeits the synergy).
//!
//! Expected shape: coordinated ≈ best energy (≥ each alone); conflicting
//! loses savings or corrupts tuning; gated equals the owning tool alone.

use pstack_apps::workload::{AppModel, Phase, Workload};
use pstack_apps::MpiModel;
use pstack_hwmodel::{Node, NodeConfig, NodeId, PhaseMix};
use pstack_node::NodeManager;
use pstack_runtime::{ArbiterMode, Countdown, CountdownMode, JobRunner, Meric, RuntimeAgent};
use pstack_sim::{SeedTree, SimTime};
use serde::{Deserialize, Serialize};

/// An application with both long tunable regions and substantial MPI phases
/// — the workload where the two tools are complementary.
struct HybridApp {
    iterations: usize,
    scale: f64,
}

impl AppModel for HybridApp {
    fn name(&self) -> &str {
        "hybrid-regions-mpi"
    }
    fn workload(&self, n_nodes: usize) -> Workload {
        let comm = MpiModel::comm_heavy().comm_fraction(n_nodes).max(0.2);
        let s = self.scale;
        let body = [
            Phase::new("assemble", PhaseMix::new(0.9, 0.1, 0.0, 0.0), 0.5 * s),
            Phase::new("stream_update", PhaseMix::new(0.1, 0.9, 0.0, 0.0), 0.5 * s),
            Phase::new(
                "mpi_exchange",
                PhaseMix::new(0.02, 0.08, 0.9, 0.0),
                (s * comm).max(1e-6),
            ),
        ];
        let mut w = Workload::new();
        w.repeat(&body, self.iterations);
        w
    }
}

/// One variant's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Uc7Row {
    /// Variant label.
    pub variant: String,
    /// Runtime, seconds.
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Energy saving vs `none`, percent.
    pub energy_saving_pct: f64,
    /// Slowdown vs `none`, percent.
    pub slowdown_pct: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Uc7Result {
    /// One row per variant.
    pub rows: Vec<Uc7Row>,
}

enum Variant {
    None,
    CountdownOnly,
    MericOnly,
    BothConflicting,
    /// Same uncoordinated pair with the hook order reversed — conflicting
    /// results are *order-dependent*, the hallmark of broken coexistence.
    BothConflictingReversed,
    BothCoordinated,
    BothGated,
}

fn run_variant(
    v: &Variant,
    n_nodes: usize,
    iterations: usize,
    scale: f64,
    seed: u64,
) -> (f64, f64) {
    let app = HybridApp { iterations, scale };
    let mut nodes: Vec<NodeManager> = (0..n_nodes)
        .map(|i| NodeManager::new(Node::nominal(NodeId(i), NodeConfig::server_default())))
        .collect();
    let seeds = SeedTree::new(seed);
    let arbiter_mode = match v {
        Variant::BothGated => ArbiterMode::Gated,
        _ => ArbiterMode::Naive,
    };
    let mut runner = JobRunner::new(
        &app.workload(n_nodes),
        n_nodes,
        &MpiModel::comm_heavy(),
        &seeds,
        arbiter_mode,
    );
    // A lean candidate grid keeps MERIC's online exploration cost small
    // relative to the job (design-time analysis would amortize it entirely).
    let lean = || {
        use pstack_runtime::meric::RegionConfig;
        let grid = [3.5, 3.0, 2.5, 2.0]
            .into_iter()
            .flat_map(|f| {
                [8usize, 2].into_iter().map(move |u| RegionConfig {
                    freq_ghz: f,
                    uncore_idx: u,
                })
            })
            .collect();
        Meric::with_candidates(grid, 1)
    };
    let mut countdown = Countdown::new(CountdownMode::WaitAndCopy);
    // Legacy COUNTDOWN writes the *base* frequency limit — the §3.2.7
    // conflict: restoring after MPI clobbers whatever MERIC had applied.
    let mut countdown_legacy = Countdown::new(CountdownMode::WaitAndCopy).without_override_layer();
    let mut meric_all = lean();
    let mut meric_deleg = lean().with_comm_delegation();
    let result = {
        let mut agents: Vec<&mut dyn RuntimeAgent> = match v {
            Variant::None => vec![],
            Variant::CountdownOnly => vec![&mut countdown],
            Variant::MericOnly => vec![&mut meric_all],
            // No communication layer: both tools write the same base knob.
            Variant::BothConflicting => vec![&mut meric_all, &mut countdown_legacy],
            Variant::BothConflictingReversed => vec![&mut countdown_legacy, &mut meric_all],
            // The communication layer: COUNTDOWN stacks an MPI override
            // under MERIC's base settings; MERIC delegates comm regions.
            Variant::BothCoordinated => vec![&mut countdown, &mut meric_deleg],
            // Ownership gating without the layer: COUNTDOWN (second claimant
            // on CoreFreq) is blocked — safe but synergy-free.
            Variant::BothGated => vec![&mut meric_all, &mut countdown_legacy],
        };
        runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut agents)
    };
    (result.makespan.as_secs_f64(), result.energy_j)
}

/// Run all variants.
pub fn run(n_nodes: usize, iterations: usize, scale: f64, seed: u64) -> Uc7Result {
    let variants = [
        (Variant::None, "none"),
        (Variant::CountdownOnly, "countdown-only"),
        (Variant::MericOnly, "meric-only"),
        (Variant::BothConflicting, "both-conflicting"),
        (Variant::BothConflictingReversed, "conflicting-rev"),
        (Variant::BothCoordinated, "both-coordinated"),
        (Variant::BothGated, "both-gated"),
    ];
    let (t0, e0) = run_variant(&Variant::None, n_nodes, iterations, scale, seed);
    let mut rows = Vec::new();
    for (v, name) in &variants {
        let (t, e) = match v {
            Variant::None => (t0, e0),
            _ => run_variant(v, n_nodes, iterations, scale, seed),
        };
        rows.push(Uc7Row {
            variant: name.to_string(),
            time_s: t,
            energy_j: e,
            energy_saving_pct: 100.0 * (e0 - e) / e0,
            slowdown_pct: 100.0 * (t - t0) / t0,
        });
    }
    Uc7Result { rows }
}

/// Default full-scale run.
pub fn run_default() -> Uc7Result {
    run(4, 60, 1.0, 20200908)
}

/// Render the comparison.
pub fn render(r: &Uc7Result) -> String {
    let mut out = String::from(
        "USE CASE 3.2.7 / COUNTDOWN+MERIC: coordination of two runtimes\n\
         variant           | time_s | energy_kJ | saving_pct | slowdown_pct\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:<17} | {:>6.1} | {:>9.2} | {:>+10.1} | {:>+12.2}\n",
            row.variant,
            row.time_s,
            row.energy_j / 1e3,
            row.energy_saving_pct,
            row.slowdown_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Uc7Result {
        run(2, 40, 0.6, 3)
    }

    #[test]
    fn each_tool_alone_saves_energy() {
        let r = small();
        let get = |name: &str| r.rows.iter().find(|x| x.variant == name).unwrap();
        assert!(get("countdown-only").energy_saving_pct > 0.5);
        assert!(get("meric-only").energy_saving_pct > 0.5);
    }

    #[test]
    fn coordination_beats_conflict() {
        let r = small();
        let get = |name: &str| r.rows.iter().find(|x| x.variant == name).unwrap();
        let coord = get("both-coordinated");
        let confl = get("both-conflicting");
        assert!(
            coord.energy_j <= confl.energy_j,
            "coordinated {} vs conflicting {}",
            coord.energy_j,
            confl.energy_j
        );
    }

    #[test]
    fn coordination_at_least_matches_best_single_tool() {
        let r = small();
        let get = |name: &str| r.rows.iter().find(|x| x.variant == name).unwrap();
        let best_single = get("countdown-only")
            .energy_saving_pct
            .max(get("meric-only").energy_saving_pct);
        let coord = get("both-coordinated").energy_saving_pct;
        assert!(
            coord >= best_single - 1.0,
            "coordinated {coord}% vs best single {best_single}%"
        );
    }

    #[test]
    fn gated_mode_is_safe() {
        let r = small();
        let get = |name: &str| r.rows.iter().find(|x| x.variant == name).unwrap();
        // Gated never does worse than no tuning.
        assert!(get("both-gated").energy_saving_pct >= -1.0);
    }
}
