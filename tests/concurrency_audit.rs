//! Concurrency audit: every parallel driver under the deterministic
//! schedule explorer.
//!
//! The explorer ([`powerstack::sync::explore`]) re-runs a workload across a
//! seeded grid of adversarial yield schedules × worker counts, with the
//! instrumented `pstack-sync` layer armed so every lock/atomic acquisition
//! is perturbed and recorded into the global lock-order graph. Contracts
//! asserted here:
//!
//! - **Byte-identical reports.** All four tuning drivers (`run`,
//!   `run_parallel`, `run_resilient`, `run_parallel_resilient`) reproduce
//!   the unperturbed single-worker report byte-for-byte on every arm of the
//!   standard 16-seed × {1, 2, 4, 8}-worker grid.
//! - **Clean lock-order graph.** No inversions, no cycles, no
//!   held-across-wait or long-critical-section smells anywhere on the grid.
//! - **Declared sites only.** Every site the graph observes is declared in
//!   `pstack_sync::sites` (the registry PSA017 audits cannot drift from
//!   runtime reality).
//! - **Ledgers balance under chaos.** Eval-cache misses equal evaluations,
//!   the quarantine ledger replays identically, and the bounded trace ring
//!   accounts every span (retained + dropped == issued) on every schedule.

// Integration tests are exempt from the workspace unwrap policy.
#![allow(clippy::disallowed_methods)]

use powerstack::autotune::{
    Config, Evaluation, ForestSearch, ParamSpace, RandomSearch, Robustness, Tuner,
};
use powerstack::faults::{FaultPlan, FaultyEvaluator};
use powerstack::prelude::*;
use powerstack::sync::{explore, sites, SeedGrid};
use powerstack::trace::TraceCollector;
use std::sync::Arc;

fn space() -> ParamSpace {
    ParamSpace::new()
        .with(Param::ints("tile", [8, 16, 32, 64]))
        .with(Param::ints("unroll", [1, 2, 4, 8]))
        .with(Param::boolean("packing"))
        .with_constraint("unroll<=tile", |s, c| {
            s.value(c, "unroll").as_int() <= s.value(c, "tile").as_int()
        })
}

fn objective(space: &ParamSpace, cfg: &Config) -> Evaluation {
    let tile = space.value(cfg, "tile").as_int() as f64;
    let unroll = space.value(cfg, "unroll").as_int() as f64;
    let packing = space.value(cfg, "packing").as_bool();
    let time = (tile - 32.0).abs() / 8.0 + (unroll - 4.0).abs() + if packing { 0.0 } else { 1.5 };
    (1.0 + time, std::collections::HashMap::new())
}

/// Assert an exploration is fully clean and only touched declared sites.
fn assert_clean(out: &powerstack::sync::Exploration, what: &str) {
    assert!(out.clean(), "{what}: {}", out.summary());
    for site in out.graph.nodes.keys() {
        assert!(
            sites::is_declared(site) || site.starts_with("test."),
            "{what}: observed undeclared site {site}"
        );
    }
}

#[test]
fn serial_driver_is_schedule_invariant() {
    let grid = SeedGrid::standard();
    let out = explore(&grid, |_workers| {
        let report = Tuner::new(space())
            .max_evals(16)
            .seed(11)
            .run(&mut RandomSearch::new(), objective)
            .expect("serial run completes");
        serde_json::to_string(&report).expect("reports serialize")
    });
    assert_eq!(out.arms, 64);
    assert_clean(&out, "run");
}

#[test]
fn parallel_driver_is_schedule_invariant() {
    let grid = SeedGrid::standard();
    let collector = Arc::new(TraceCollector::new());
    let out = explore(&grid, |workers| {
        let report = Tuner::new(space())
            .max_evals(16)
            .seed(11)
            .with_trace(Arc::clone(&collector))
            .run_parallel(&mut RandomSearch::new(), workers, objective)
            .expect("parallel run completes");
        // Ledger invariant on every arm: every eval is a cache miss.
        assert_eq!(report.cache.misses, report.evals, "misses must equal evals");
        serde_json::to_string(&report).expect("reports serialize")
    });
    assert_eq!(out.arms, 64);
    assert_clean(&out, "run_parallel");
    // With tracing attached and chaos armed, the worker pool and the trace
    // layer must both have shown up in the observed graph.
    for expected in [sites::POOL_CURSOR, sites::TRACE_RING, sites::TRACE_SPAN_ID] {
        assert!(
            out.graph.nodes.contains_key(expected),
            "expected site {expected} in observed graph: {}",
            out.summary()
        );
    }
}

#[test]
fn resilient_driver_is_schedule_invariant() {
    let grid = SeedGrid::standard();
    let plan = FaultPlan::evals_only();
    let out = explore(&grid, |_workers| {
        let evaluator = FaultyEvaluator::new(objective, &plan, 0xC0FFEE);
        let mut primary = ForestSearch::new();
        let mut fallback = RandomSearch::new();
        let report = Tuner::new(space())
            .max_evals(16)
            .seed(7)
            .run_resilient(
                &mut primary,
                Some(&mut fallback),
                &Robustness::default(),
                |s, c, a| evaluator.evaluate(s, c, a),
            )
            .expect("resilient run completes");
        assert_eq!(report.cache.misses, report.evals, "misses must equal evals");
        serde_json::to_string(&report).expect("reports serialize")
    });
    assert_eq!(out.arms, 64);
    assert_clean(&out, "run_resilient");
}

#[test]
fn parallel_resilient_driver_is_schedule_invariant() {
    // The quarantine ledger rides inside the serialized report: byte
    // identity across the grid is quarantine invariance under a
    // deterministically faulty evaluator.
    let grid = SeedGrid::standard();
    let plan = FaultPlan::evals_only();
    let out = explore(&grid, |workers| {
        let evaluator = FaultyEvaluator::new(objective, &plan, 0xC0FFEE);
        let mut primary = ForestSearch::new();
        let mut fallback = RandomSearch::new();
        let report = Tuner::new(space())
            .max_evals(16)
            .seed(7)
            .run_parallel_resilient(
                &mut primary,
                Some(&mut fallback),
                &Robustness::default(),
                workers,
                |s, c, a| evaluator.evaluate(s, c, a),
            )
            .expect("parallel resilient run completes");
        assert_eq!(report.cache.misses, report.evals, "misses must equal evals");
        serde_json::to_string(&report).expect("reports serialize")
    });
    assert_eq!(out.arms, 64);
    assert_clean(&out, "run_parallel_resilient");
}

#[test]
fn trace_ring_overflow_accounting_is_schedule_invariant() {
    // A ring smaller than the span load: every schedule must retain exactly
    // `capacity` spans and account every eviction — retained + dropped ==
    // issued, byte-for-byte across the grid.
    const CAPACITY: usize = 32;
    const SPANS_PER_WORKER: usize = 25;
    let grid = SeedGrid::standard();
    let out = explore(&grid, |workers| {
        let collector = TraceCollector::with_capacity(CAPACITY);
        std::thread::scope(|s| {
            for w in 0..workers {
                let collector = &collector;
                s.spawn(move || {
                    for i in 0..SPANS_PER_WORKER {
                        let mut span = collector.span("audit");
                        span.attr("w", w as i64);
                        span.attr("i", i as i64);
                    }
                });
            }
        });
        let trace = collector.snapshot();
        let issued = workers * SPANS_PER_WORKER;
        assert_eq!(
            trace.len() as u64 + trace.dropped,
            issued as u64,
            "workers={workers}: ring lost or double-counted spans"
        );
        // Canonical artifact: the conservation triple, independent of which
        // spans survived (eviction order is schedule-dependent by design —
        // the *accounting* is what must be invariant). Single-worker runs
        // fit partly in the ring; overflow starts beyond capacity.
        format!(
            "retained+dropped={} capacity={} overflowed={}",
            trace.len() as u64 + trace.dropped,
            trace.len().min(CAPACITY),
            trace.dropped > 0,
        )
    });
    // The artifact deliberately varies with worker count (issued spans
    // scale with workers), so compare per-arm invariants instead of
    // baseline identity: the graph must still be clean and the ring site
    // observed.
    assert_eq!(out.arms, 64);
    assert!(
        out.graph.inversions.is_empty() && out.graph.smells.is_empty(),
        "{}",
        out.summary()
    );
    assert!(out.graph.cycle().is_none(), "{}", out.summary());
    assert!(out.graph.nodes.contains_key(sites::TRACE_RING));
}

#[test]
fn observed_graph_edges_respect_the_declared_hierarchy() {
    // Run the richest driver (parallel + tracing) once under a compact
    // grid, then hold every observed edge to the PSA017 hierarchy: an edge
    // outer → inner is only legal if rank(outer) < rank(inner).
    let grid = SeedGrid::compact(4, 8);
    let collector = Arc::new(TraceCollector::new());
    let out = explore(&grid, |workers| {
        let report = Tuner::new(space())
            .max_evals(16)
            .seed(3)
            .with_trace(Arc::clone(&collector))
            .run_parallel(&mut RandomSearch::new(), workers, objective)
            .expect("parallel run completes");
        serde_json::to_string(&report).expect("reports serialize")
    });
    assert_clean(&out, "hierarchy-audit");
    let hierarchy = powerstack::analyze::FrameworkModel::shipped_lock_hierarchy();
    let rank = |site: &str| {
        hierarchy
            .iter()
            .find(|d| d.site == site)
            .map(|d| d.rank)
            .unwrap_or_else(|| panic!("observed site {site} missing from hierarchy"))
    };
    for (outer, inner) in out.graph.edges.keys() {
        assert!(
            rank(outer) < rank(inner),
            "observed edge {outer} -> {inner} violates the declared hierarchy"
        );
    }
}
