//! Figure 6 / §3.2.5 — power-corridor enforcement by dynamic resource
//! redistribution.
//!
//! "As shown in Figure 6, the node distribution was dynamically changed by
//! IRM to maintain the power budget." The experiment runs the same malleable
//! EPOP job mix under each corridor strategy and reports corridor adherence,
//! makespan and energy, plus the power time series (the actual Figure 6
//! curve).
//!
//! Expected shape: redistribution drives violations toward zero while
//! completing all work; capping fixes only upper violations; DVFS is in
//! between; the baseline violates freely.

use pstack_apps::epop::EpopApp;
use pstack_apps::workload::NodeCountRule;
use pstack_hwmodel::{NodeConfig, VariationModel};
use pstack_node::NodeManager;
use pstack_rm::{CorridorStrategy, Irm, IrmReport};
use pstack_sim::{SeedTree, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One strategy's outcome plus its power trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Strategy label.
    pub strategy: String,
    /// Fraction of samples inside the corridor.
    pub in_corridor_fraction: f64,
    /// Upper-bound violations (samples).
    pub upper_violations: usize,
    /// Lower-bound violations (samples).
    pub lower_violations: usize,
    /// Completion time of the whole mix, seconds.
    pub makespan_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Node redistribution actions.
    pub redistributions: usize,
    /// `(t_seconds, system_power_w)` series for plotting.
    pub power_series: Vec<(f64, f64)>,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Corridor bounds `(low_w, high_w)`.
    pub corridor: (f64, f64),
    /// One row per strategy.
    pub rows: Vec<Fig6Row>,
}

/// Run the corridor comparison: `n_nodes` fleet, two malleable jobs sized by
/// `work`, corridor as a fraction of fleet peak.
pub fn run(n_nodes: usize, work: f64, seed: u64) -> Fig6Result {
    let peak = n_nodes as f64 * 450.0;
    let corridor = (peak * 0.35, peak * 0.75);
    let mut rows = Vec::new();
    for strategy in [
        CorridorStrategy::None,
        CorridorStrategy::NodeRedistribution,
        CorridorStrategy::PowerCapping,
        CorridorStrategy::Dvfs,
    ] {
        let seeds = SeedTree::new(seed);
        let nodes = NodeManager::fleet(
            n_nodes,
            NodeConfig::server_default(),
            &VariationModel::typical(),
            &seeds,
        );
        let mut irm = Irm::new(nodes, corridor, strategy, seeds.subtree("irm"));
        let big = (n_nodes / 2).max(1);
        let small = (n_nodes * 3 / 8).max(1);
        irm.launch(
            EpopApp::uniform("epop-a", work, 20, NodeCountRule::Any),
            big,
        );
        irm.launch(
            EpopApp::uniform("epop-b", work, 20, NodeCountRule::Any),
            small,
        );
        let report: IrmReport = irm.run(SimDuration::from_secs(1), SimTime::from_secs(4 * 3600));
        rows.push(Fig6Row {
            strategy: format!("{strategy:?}"),
            in_corridor_fraction: report.in_corridor_fraction,
            upper_violations: report.upper_violations,
            lower_violations: report.lower_violations,
            makespan_s: report.makespan.as_secs_f64(),
            energy_j: report.energy_j,
            redistributions: report.redistributions,
            power_series: irm.trace().series("system_power"),
        });
    }
    Fig6Result { corridor, rows }
}

/// Default full-scale run (16 nodes).
pub fn run_default() -> Fig6Result {
    run(16, 800.0, 20200905)
}

/// Render the comparison table (series lengths summarized).
pub fn render(r: &Fig6Result) -> String {
    let mut out = format!(
        "FIGURE 6 / POWER CORRIDOR [{:.0} W, {:.0} W]: enforcement strategies\n\
         strategy           | in_corr | over | under | makespan_s | energy_MJ | redistributions\n",
        r.corridor.0, r.corridor.1
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:<18} | {:>6.1}% | {:>4} | {:>5} | {:>10.0} | {:>9.2} | {:>4}\n",
            row.strategy,
            row.in_corridor_fraction * 100.0,
            row.upper_violations,
            row.lower_violations,
            row.makespan_s,
            row.energy_j / 1e6,
            row.redistributions,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribution_beats_baseline_on_corridor_adherence() {
        let r = run(8, 200.0, 3);
        let get = |name: &str| r.rows.iter().find(|x| x.strategy == name).unwrap();
        let base = get("None");
        let redis = get("NodeRedistribution");
        assert!(redis.in_corridor_fraction > base.in_corridor_fraction);
        assert!(redis.redistributions > 0);
    }

    #[test]
    fn power_series_is_recorded() {
        let r = run(4, 60.0, 4);
        for row in &r.rows {
            assert!(!row.power_series.is_empty());
            // Power values are physically sane.
            for &(_, p) in &row.power_series {
                assert!((0.0..4.0 * 600.0).contains(&p));
            }
        }
    }

    #[test]
    fn all_strategies_complete_the_work() {
        let r = run(8, 100.0, 5);
        // Makespans finite (inside the horizon) for every strategy.
        for row in &r.rows {
            assert!(
                row.makespan_s < 4.0 * 3600.0,
                "{} hit horizon",
                row.strategy
            );
        }
    }
}
