//! Crash-safe tuning sessions: write-ahead checkpointing and resume.
//!
//! Long campaigns die — node reboots, queue-manager kills, power caps
//! tripping the very job that tunes them. This module makes every driver
//! optionally durable: with [`Tuner::checkpoint`] set, the tuner keeps a
//! session directory containing
//!
//! - a **write-ahead log** (`session.wal`): one [`EvalRecord`] appended —
//!   and, per the fsync policy, flushed — *before* the in-memory search
//!   observes an evaluation's outcome, so no completed evaluation is ever
//!   repeated after a crash;
//! - a **snapshot** (`session.snap`): the full [`SessionSnapshot`] (database,
//!   evaluation cache, RNG state, search-algorithm state, quarantine ledger,
//!   fault log) written atomically every few records, after which the WAL is
//!   compacted.
//!
//! [`Tuner::resume`] (and the `resume_*` siblings) reload the snapshot,
//! re-drive the search from it, and *replay* the WAL tail: each logged
//! record answers the re-suggested configuration it belongs to without
//! re-evaluating. Because every driver is deterministic given its seed, the
//! resumed run reproduces the uninterrupted run's [`TuneReport`]
//! byte-for-byte — for any kill point and any worker count. A resumed
//! session that diverges from its log (wrong config at an ordinal) is a
//! typed [`TuneError::Checkpoint`], never a silently wrong report.
//!
//! Storage-format concerns (framing, checksums, atomic rename, torn-tail
//! recovery) live in the `pstack-ckpt` crate; this module owns the schema.

use crate::db::PerfDatabase;
use crate::faultlog::FaultLog;
use crate::resilient::Robustness;
use crate::search::SearchAlgorithm;
use crate::space::Config;
use crate::tuner::{CacheStats, Evaluation, TuneError, Tuner};
use pstack_ckpt::{CkptError, SessionDir, WalWriter};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

pub use pstack_ckpt::{SNAPSHOT_FORMAT_VERSION, WAL_FORMAT_VERSION};

/// Crash-injection hook: called with each ordinal just after its WAL
/// append; returning `true` aborts the run as if the process died there.
pub type InterruptFn = dyn Fn(usize) -> bool + Send + Sync;

/// Where and how often to checkpoint a session.
#[derive(Debug, Clone)]
pub struct CheckpointOpts {
    /// Session directory (created if missing) holding WAL + snapshot.
    pub dir: PathBuf,
    /// Take a full snapshot (and compact the WAL) every this many records.
    pub snapshot_every: usize,
    /// `fsync` the WAL every this many appends (1 = every record durable
    /// immediately; larger values trade a bounded window of re-evaluable
    /// work for throughput).
    pub fsync_every: usize,
}

impl CheckpointOpts {
    /// Default snapshot cadence, in records.
    pub const DEFAULT_SNAPSHOT_EVERY: usize = 8;

    /// Checkpoint into `dir` with the default cadence and per-record fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOpts {
            dir: dir.into(),
            snapshot_every: Self::DEFAULT_SNAPSHOT_EVERY,
            fsync_every: 1,
        }
    }
}

/// Immutable facts about a session, stamped into the WAL header and every
/// snapshot. On resume these are validated against the caller's arguments
/// (space fingerprint, driver, algorithm name + schema version) and
/// override the resuming tuner's settings, so a resumed run cannot
/// silently diverge from the run it continues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMeta {
    /// Which driver started the session: `run`, `run_parallel`,
    /// `run_resilient`, or `run_parallel_resilient`.
    pub driver: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Evaluation budget.
    pub max_evals: usize,
    /// Ask-tell round size (parallel drivers; recorded for all).
    pub batch_size: usize,
    /// Consecutive-duplicate exit threshold.
    pub max_consecutive_duplicates: usize,
    /// Observations in the warm-start prior (not counted against budget).
    pub prior_len: usize,
    /// [`crate::ParamSpace::fingerprint`] of the tuned space.
    pub space_fingerprint: String,
    /// Primary algorithm name.
    pub algorithm: String,
    /// Primary algorithm checkpoint-schema version
    /// ([`crate::search::SearchState::schema_version`]).
    pub algorithm_schema: u32,
    /// Fallback algorithm name (resilient drivers with degradation).
    pub fallback: Option<String>,
    /// Fallback checkpoint-schema version (0 when no fallback).
    pub fallback_schema: u32,
    /// Robustness settings (resilient drivers only).
    pub robustness: Option<Robustness>,
}

/// One durable evaluation outcome — the unit the WAL appends *before* the
/// search observes it. Plain drivers use only `ordinal`/`config`/
/// `objective`/`aux`; resilient drivers also persist the retry loop's
/// fault events so replay reconstructs the identical fault log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Position in the session's fresh-evaluation sequence (0-based; cache
    /// hits and quarantine skips do not consume ordinals).
    pub ordinal: usize,
    /// The evaluated configuration.
    pub config: Config,
    /// The objective, or `None` when every retry failed (the configuration
    /// was quarantined).
    pub objective: Option<f64>,
    /// Auxiliary metrics of the successful attempt (empty on quarantine).
    pub aux: HashMap<String, f64>,
    /// Fault events of the retry loop: `(kind name, attempt, detail)`.
    pub events: Vec<(String, usize, String)>,
    /// Attempts that failed (counts against the run-level fault budget).
    pub failed_attempts: usize,
    /// Virtual backoff accounted while retrying, seconds.
    pub backoff_s: f64,
}

/// Resilient-loop state persisted alongside the core snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilientSnapshot {
    /// Quarantined configurations, sorted for deterministic serialization.
    pub quarantined: Vec<Config>,
    /// Fault log as of the snapshot ordinal.
    pub faults: FaultLog,
    /// Ordinal of the next fresh configuration.
    pub fresh_idx: usize,
    /// Failed attempts so far vs. the run-level budget.
    pub failed_attempts: usize,
    /// Whether the search already degraded to the fallback.
    pub degraded: bool,
}

/// Full session state at a consistent point: everything needed to re-drive
/// the search as if the run had never stopped. Serial drivers snapshot
/// after a recorded outcome; parallel drivers only at ask-tell round
/// boundaries (mid-round the RNG has already advanced past suggestions
/// that are not yet recorded, so a mid-round snapshot could not resume
/// deterministically).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session's immutable metadata.
    pub meta: SessionMeta,
    /// Records written to the WAL when this snapshot was taken (== the
    /// next ordinal to be assigned).
    pub ordinal: usize,
    /// The performance database (prior + fresh observations).
    pub db: PerfDatabase,
    /// Evaluation cache as sorted rows `(config, objective, aux)`.
    pub cache: Vec<(Config, f64, HashMap<String, f64>)>,
    /// Cache hit/miss counters.
    pub stats: CacheStats,
    /// xoshiro256++ state of the driver RNG.
    pub rng: [u64; 4],
    /// Consecutive-duplicate streak at the snapshot point.
    pub consecutive_dups: usize,
    /// Primary algorithm state ([`crate::search::SearchState::save_state`];
    /// `Null` for stateless algorithms).
    pub algorithm_state: Value,
    /// Fallback algorithm state (`Null` when absent or stateless).
    pub fallback_state: Value,
    /// Resilient-loop state (`None` for the fault-free drivers).
    pub resilient: Option<ResilientSnapshot>,
}

impl SessionSnapshot {
    /// Assemble a snapshot from live loop state (sorts the cache so the
    /// payload — and therefore the on-disk bytes — are deterministic).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect(
        meta: &SessionMeta,
        ordinal: usize,
        db: &PerfDatabase,
        cache: &HashMap<Config, Evaluation>,
        stats: CacheStats,
        rng: &SmallRng,
        consecutive_dups: usize,
        algorithm_state: Value,
        fallback_state: Value,
        resilient: Option<ResilientSnapshot>,
    ) -> SessionSnapshot {
        let mut rows: Vec<(Config, f64, HashMap<String, f64>)> = cache
            .iter()
            .map(|(c, (o, a))| (c.clone(), *o, a.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        SessionSnapshot {
            meta: meta.clone(),
            ordinal,
            db: db.clone(),
            cache: rows,
            stats,
            rng: rng.state(),
            consecutive_dups,
            algorithm_state,
            fallback_state,
            resilient,
        }
    }
}

impl From<CkptError> for TuneError {
    fn from(e: CkptError) -> Self {
        TuneError::Checkpoint {
            detail: e.to_string(),
        }
    }
}

/// Resilient fields of a [`RestoredState`].
pub(crate) struct RestoredResilient {
    pub(crate) quarantined: HashSet<Config>,
    pub(crate) faults: FaultLog,
    pub(crate) fresh_idx: usize,
    pub(crate) failed_attempts: usize,
    pub(crate) degraded: bool,
}

/// Loop state rebuilt from a snapshot, handed to the driver internals in
/// place of a fresh start.
pub(crate) struct RestoredState {
    pub(crate) db: PerfDatabase,
    pub(crate) cache: HashMap<Config, Evaluation>,
    pub(crate) stats: CacheStats,
    pub(crate) rng: SmallRng,
    pub(crate) consecutive_dups: usize,
    pub(crate) prior_len: usize,
    pub(crate) resilient: Option<RestoredResilient>,
}

impl RestoredState {
    fn from_snapshot(snap: &SessionSnapshot) -> Self {
        RestoredState {
            db: snap.db.clone(),
            cache: snap
                .cache
                .iter()
                .map(|(c, o, a)| (c.clone(), (*o, a.clone())))
                .collect(),
            stats: snap.stats,
            rng: SmallRng::from_state(snap.rng),
            consecutive_dups: snap.consecutive_dups,
            prior_len: snap.meta.prior_len,
            resilient: snap.resilient.as_ref().map(|r| RestoredResilient {
                quarantined: r.quarantined.iter().cloned().collect(),
                faults: r.faults.clone(),
                fresh_idx: r.fresh_idx,
                failed_attempts: r.failed_attempts,
                degraded: r.degraded,
            }),
        }
    }
}

/// A live checkpointed session: the open WAL, the replay queue rebuilt on
/// resume, and the snapshot cadence bookkeeping.
pub(crate) struct ActiveSession {
    wal: WalWriter,
    meta: SessionMeta,
    snapshot_path: PathBuf,
    snapshot_every: usize,
    interrupt: Option<Arc<InterruptFn>>,
    /// WAL-tail records not yet re-consumed by the resumed loop, in
    /// ordinal order. Empty on fresh sessions and once replay completes.
    replay: VecDeque<EvalRecord>,
    /// The next ordinal to replay or log.
    next_ordinal: usize,
    last_snapshot_ordinal: usize,
    needs_initial_snapshot: bool,
}

impl ActiveSession {
    /// Start a fresh session in `opts.dir`, truncating any previous one.
    fn start(
        opts: &CheckpointOpts,
        interrupt: Option<Arc<InterruptFn>>,
        meta: SessionMeta,
    ) -> Result<Self, TuneError> {
        let dir = SessionDir::new(&opts.dir)?;
        let wal = WalWriter::create(&dir.wal_path(), &meta.to_value(), opts.fsync_every.max(1))?;
        // A fresh run must never resume into a stale snapshot.
        let _ = std::fs::remove_file(dir.snapshot_path());
        Ok(ActiveSession {
            wal,
            meta,
            snapshot_path: dir.snapshot_path(),
            snapshot_every: opts.snapshot_every.max(1),
            interrupt,
            replay: VecDeque::new(),
            next_ordinal: 0,
            last_snapshot_ordinal: 0,
            needs_initial_snapshot: true,
        })
    }

    /// Reopen a session from its snapshot + WAL tail.
    fn resume(
        opts: &CheckpointOpts,
        interrupt: Option<Arc<InterruptFn>>,
    ) -> Result<(Self, SessionSnapshot), TuneError> {
        let dir = SessionDir::new(&opts.dir)?;
        let snap_value = pstack_ckpt::read_snapshot(&dir.snapshot_path())?;
        let snap = SessionSnapshot::from_value(&snap_value).map_err(|e| TuneError::Checkpoint {
            detail: format!("snapshot decode: {e}"),
        })?;
        let (wal, contents) = WalWriter::open_append(&dir.wal_path(), opts.fsync_every.max(1))?;
        if let Some(tail) = &contents.torn_tail {
            eprintln!(
                "warning: {} had a torn tail at byte {} ({}); resuming from the last valid record",
                dir.wal_path().display(),
                tail.offset,
                tail.reason
            );
        }
        let header =
            SessionMeta::from_value(&contents.header).map_err(|e| TuneError::Checkpoint {
                detail: format!("WAL header decode: {e}"),
            })?;
        if header != snap.meta {
            return Err(TuneError::Checkpoint {
                detail: "WAL header and snapshot metadata disagree; the session directory mixes \
                         two different runs"
                    .to_string(),
            });
        }
        let records: Vec<EvalRecord> = pstack_ckpt::decode_records(&contents)?;
        let mut replay = VecDeque::new();
        for rec in records {
            if rec.ordinal < snap.ordinal {
                // Stale pre-snapshot record: a crash landed between the
                // snapshot rename and the WAL compaction. The snapshot
                // already contains its effect.
                continue;
            }
            let expect = snap.ordinal + replay.len();
            if rec.ordinal != expect {
                return Err(TuneError::Checkpoint {
                    detail: format!(
                        "WAL record has ordinal {} where {expect} was expected",
                        rec.ordinal
                    ),
                });
            }
            replay.push_back(rec);
        }
        Ok((
            ActiveSession {
                wal,
                meta: snap.meta.clone(),
                snapshot_path: dir.snapshot_path(),
                snapshot_every: opts.snapshot_every.max(1),
                interrupt,
                replay,
                next_ordinal: snap.ordinal,
                last_snapshot_ordinal: snap.ordinal,
                needs_initial_snapshot: false,
            },
            snap,
        ))
    }

    pub(crate) fn meta(&self) -> &SessionMeta {
        &self.meta
    }

    /// The next ordinal to be replayed or logged.
    pub(crate) fn next_ordinal(&self) -> usize {
        self.next_ordinal
    }

    /// Answer the next fresh configuration from the replay queue, if the
    /// queue is non-empty. `Ok(None)` means replay is over and the caller
    /// must evaluate live; a front record that does not match `cfg` means
    /// the resumed search diverged from the logged one — a hard error, not
    /// a wrong report.
    pub(crate) fn replay_next(&mut self, cfg: &Config) -> Result<Option<EvalRecord>, TuneError> {
        let Some(front) = self.replay.front() else {
            return Ok(None);
        };
        if front.ordinal != self.next_ordinal || &front.config != cfg {
            return Err(TuneError::Checkpoint {
                detail: format!(
                    "resume diverged from the write-ahead log: log has config {:?} at ordinal \
                     {}, but the search suggested {:?} at ordinal {}",
                    front.config, front.ordinal, cfg, self.next_ordinal
                ),
            });
        }
        self.next_ordinal += 1;
        Ok(self.replay.pop_front())
    }

    /// Append one live outcome to the WAL — called *before* the outcome is
    /// recorded in the database. Afterwards the crash-injection hook may
    /// abort the run with [`TuneError::Interrupted`] (the record is synced
    /// first, so resume finds it).
    pub(crate) fn log(&mut self, rec: &EvalRecord) -> Result<(), TuneError> {
        debug_assert_eq!(rec.ordinal, self.next_ordinal, "ordinals are dense");
        self.wal.append(rec)?;
        self.next_ordinal += 1;
        if let Some(interrupt) = &self.interrupt {
            if interrupt(rec.ordinal) {
                self.wal.sync()?;
                return Err(TuneError::Interrupted {
                    at_ordinal: rec.ordinal,
                });
            }
        }
        Ok(())
    }

    /// Whether the cadence calls for a snapshot now. Never during replay:
    /// the on-disk state already covers replayed ordinals.
    pub(crate) fn snapshot_due(&self) -> bool {
        self.replay.is_empty()
            && (self.needs_initial_snapshot
                || self.next_ordinal - self.last_snapshot_ordinal >= self.snapshot_every)
    }

    /// Write `snap` atomically and compact the WAL down to its header.
    pub(crate) fn write_snapshot(&mut self, snap: &SessionSnapshot) -> Result<(), TuneError> {
        pstack_ckpt::write_snapshot(&self.snapshot_path, snap)?;
        self.wal.compact(&self.meta.to_value())?;
        self.last_snapshot_ordinal = self.next_ordinal;
        self.needs_initial_snapshot = false;
        Ok(())
    }

    /// Flush the WAL at a clean end of run.
    pub(crate) fn finish(&mut self) -> Result<(), TuneError> {
        self.wal.sync()?;
        Ok(())
    }
}

/// Snapshot-if-due, shared by every driver: collects a [`SessionSnapshot`]
/// from the live loop state when the session's cadence calls for one.
/// `resilient` is a thunk so the fault-log clone only happens when due.
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpoint_tick(
    session: &mut Option<ActiveSession>,
    db: &PerfDatabase,
    cache: &HashMap<Config, Evaluation>,
    stats: CacheStats,
    rng: &SmallRng,
    consecutive_dups: usize,
    algorithm: &dyn SearchAlgorithm,
    fallback: Option<&dyn SearchAlgorithm>,
    resilient: impl FnOnce() -> Option<ResilientSnapshot>,
) -> Result<(), TuneError> {
    let Some(s) = session.as_mut() else {
        return Ok(());
    };
    if !s.snapshot_due() {
        return Ok(());
    }
    let snap = SessionSnapshot::collect(
        s.meta(),
        s.next_ordinal(),
        db,
        cache,
        stats,
        rng,
        consecutive_dups,
        algorithm.save_state(),
        fallback.map(|f| f.save_state()).unwrap_or(Value::Null),
        resilient(),
    );
    s.write_snapshot(&snap)
}

impl Tuner {
    /// Open a fresh checkpointed session when the tuner has a checkpoint
    /// directory configured; `None` otherwise.
    pub(crate) fn open_session(
        &self,
        driver: &str,
        algorithm: &dyn SearchAlgorithm,
        fallback: Option<&dyn SearchAlgorithm>,
        robustness: Option<&Robustness>,
    ) -> Result<Option<ActiveSession>, TuneError> {
        let Some(opts) = &self.checkpoint else {
            return Ok(None);
        };
        let meta = SessionMeta {
            driver: driver.to_string(),
            seed: self.seed,
            max_evals: self.max_evals,
            batch_size: self.batch_size,
            max_consecutive_duplicates: self.max_consecutive_duplicates,
            prior_len: self.warm_start.as_ref().map(|d| d.len()).unwrap_or(0),
            space_fingerprint: self.space.fingerprint(),
            algorithm: algorithm.name().to_string(),
            algorithm_schema: algorithm.schema_version(),
            fallback: fallback.map(|f| f.name().to_string()),
            fallback_schema: fallback.map(|f| f.schema_version()).unwrap_or(0),
            robustness: robustness.copied(),
        };
        Ok(Some(ActiveSession::start(
            opts,
            self.interrupt.clone(),
            meta,
        )?))
    }

    /// Reload a session for resumption: validate its metadata against this
    /// tuner and the supplied algorithms, restore algorithm state, and
    /// return a settings-matched tuner plus the live session and restored
    /// loop state.
    pub(crate) fn load_session(
        &self,
        driver: &str,
        algorithm: &mut (dyn SearchAlgorithm + '_),
        fallback: Option<&mut (dyn SearchAlgorithm + '_)>,
    ) -> Result<(Tuner, ActiveSession, RestoredState), TuneError> {
        let Some(opts) = &self.checkpoint else {
            return Err(TuneError::Checkpoint {
                detail: "no checkpoint directory configured; call Tuner::checkpoint(dir) before \
                         resuming"
                    .to_string(),
            });
        };
        let (session, snap) = ActiveSession::resume(opts, self.interrupt.clone())?;
        let meta = &snap.meta;
        if meta.driver != driver {
            return Err(TuneError::Checkpoint {
                detail: format!(
                    "session was started by `{}`; resume it with the matching driver, not `{driver}`",
                    meta.driver
                ),
            });
        }
        let fingerprint = self.space.fingerprint();
        if meta.space_fingerprint != fingerprint {
            return Err(TuneError::Checkpoint {
                detail: format!(
                    "parameter space changed since the checkpoint was written (fingerprint \
                     {fingerprint} vs recorded {})",
                    meta.space_fingerprint
                ),
            });
        }
        check_algorithm(
            "algorithm",
            &meta.algorithm,
            meta.algorithm_schema,
            algorithm,
        )?;
        match (&meta.fallback, fallback.as_deref()) {
            (Some(name), Some(f)) => check_algorithm("fallback", name, meta.fallback_schema, f)?,
            (None, None) => {}
            (Some(name), None) => {
                return Err(TuneError::Checkpoint {
                    detail: format!("session used fallback `{name}`; supply it when resuming"),
                });
            }
            (None, Some(f)) => {
                return Err(TuneError::Checkpoint {
                    detail: format!(
                        "session had no fallback algorithm, but `{}` was supplied on resume",
                        f.name()
                    ),
                });
            }
        }
        algorithm
            .load_state(&snap.algorithm_state)
            .map_err(|e| TuneError::Checkpoint {
                detail: format!("algorithm state: {e}"),
            })?;
        if let Some(f) = fallback {
            f.load_state(&snap.fallback_state)
                .map_err(|e| TuneError::Checkpoint {
                    detail: format!("fallback state: {e}"),
                })?;
        }
        let restored = RestoredState::from_snapshot(&snap);
        let tuner = self.with_meta(meta);
        Ok((tuner, session, restored))
    }

    /// A clone of this tuner with the trajectory-determining settings
    /// overridden from the session metadata. The warm-start prior is
    /// dropped: the restored database already contains it.
    fn with_meta(&self, meta: &SessionMeta) -> Tuner {
        let mut t = self.clone();
        t.seed = meta.seed;
        t.max_evals = meta.max_evals;
        t.batch_size = meta.batch_size;
        t.max_consecutive_duplicates = meta.max_consecutive_duplicates;
        t.warm_start = None;
        t
    }
}

/// Name + checkpoint-schema validation for one algorithm on resume.
fn check_algorithm(
    role: &str,
    recorded_name: &str,
    recorded_schema: u32,
    supplied: &dyn SearchAlgorithm,
) -> Result<(), TuneError> {
    if recorded_name != supplied.name() {
        return Err(TuneError::Checkpoint {
            detail: format!(
                "session {role} was `{recorded_name}`, but `{}` was supplied on resume",
                supplied.name()
            ),
        });
    }
    if recorded_schema != supplied.schema_version() {
        return Err(TuneError::Checkpoint {
            detail: format!(
                "{role} `{recorded_name}` checkpoint schema changed: snapshot has v{recorded_schema}, \
                 this build has v{} — the session cannot be resumed by this binary",
                supplied.schema_version()
            ),
        });
    }
    Ok(())
}
