//! The trace collector: a bounded, lock-cheap sink for spans.
//!
//! Design constraints (mirrored from the exporters' contracts):
//!
//! - **lock-cheap**: a [`SpanGuard`] accumulates its attributes and events
//!   in thread-local storage (the guard itself) and takes the collector
//!   lock exactly once, at span close, to flush the finished span;
//! - **bounded**: the ring buffer holds at most `capacity` spans; overflow
//!   evicts the oldest span and is *accounted* ([`Trace::dropped`]), never
//!   silent;
//! - **deterministic ordering**: [`TraceCollector::snapshot`] sorts by
//!   `(start_ns, id)`, so the rendered shape of a trace does not depend on
//!   which worker thread flushed first.

use crate::span::{AttrValue, Event, Span, SpanId};
use pstack_sync::{sites, Ordering, SyncAtomicU64, SyncMutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Process-wide small-integer thread ids (0 is reserved for "unassigned").
// Relaxed fetch_add: tid dispenser — uniqueness is the whole contract (see
// the `trace.tid` entry in `pstack_sync::sites`).
static NEXT_TID: SyncAtomicU64 = SyncAtomicU64::new(sites::TRACE_TID, 1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Small integer identifying the calling thread, assigned on first use.
pub(crate) fn current_tid() -> u64 {
    TID.with(|cell| {
        let v = cell.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(v);
            v
        }
    })
}

/// A finished, ordered view of everything a collector holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Spans sorted by `(start_ns, id)`.
    pub spans: Vec<Span>,
    /// Spans evicted by ring overflow (they are *not* in `spans`).
    pub dropped: u64,
}

impl Trace {
    /// Total spans retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace retained no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans with this name, in trace order.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

struct Ring {
    spans: VecDeque<Span>,
    dropped: u64,
}

/// Bounded sink for [`Span`]s; shared by reference across worker threads.
pub struct TraceCollector {
    capacity: usize,
    epoch: Instant,
    next_id: SyncAtomicU64,
    inner: SyncMutex<Ring>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// Default ring capacity: enough for every span of a full
    /// `regenerate_all` figure at the default budgets.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A collector with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A collector retaining at most `capacity` spans (the oldest are
    /// evicted first; evictions are counted, not silent).
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        TraceCollector {
            capacity,
            epoch: Instant::now(),
            // Relaxed: span-id dispenser; snapshot order is reconstructed
            // from (start_ns, id), so ids only need to be unique.
            next_id: SyncAtomicU64::new(sites::TRACE_SPAN_ID, 1),
            inner: SyncMutex::new(
                sites::TRACE_RING,
                Ring {
                    spans: VecDeque::new(),
                    dropped: 0,
                },
            ),
        }
    }

    /// Monotonic nanoseconds since this collector was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Open a root span. The span is recorded when the guard closes (or
    /// drops).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.open(name, None)
    }

    /// Open a span under `parent`.
    pub fn child(&self, name: &str, parent: SpanId) -> SpanGuard<'_> {
        self.open(name, Some(parent))
    }

    /// Record an instantaneous moment as a zero-duration span (renders as a
    /// point in the Chrome viewer). Returns its id.
    pub fn instant(
        &self,
        parent: Option<SpanId>,
        name: &str,
        attrs: Vec<(String, AttrValue)>,
    ) -> SpanId {
        let mut guard = self.open(name, parent);
        guard
            .span
            .as_mut()
            .expect("open guard holds its span")
            .attrs = attrs;
        guard.id()
        // guard drops here: dur_ns ~ 0
    }

    fn open(&self, name: &str, parent: Option<SpanId>) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let wall_start_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        SpanGuard {
            collector: self,
            span: Some(Span {
                id,
                parent,
                name: name.to_string(),
                tid: current_tid(),
                start_ns: self.now_ns(),
                dur_ns: 0,
                wall_start_us,
                attrs: Vec::new(),
                events: Vec::new(),
            }),
        }
    }

    fn push(&self, span: Span) {
        let mut ring = self.inner.lock();
        if ring.spans.len() == self.capacity {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(span);
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// An ordered copy of the current contents (the ring is untouched).
    pub fn snapshot(&self) -> Trace {
        let ring = self.inner.lock();
        let mut spans: Vec<Span> = ring.spans.iter().cloned().collect();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Trace {
            spans,
            dropped: ring.dropped,
        }
    }

    /// Drain the ring into an ordered trace, resetting the drop counter.
    pub fn take(&self) -> Trace {
        let mut ring = self.inner.lock();
        let mut spans: Vec<Span> = ring.spans.drain(..).collect();
        let dropped = std::mem::take(&mut ring.dropped);
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Trace { spans, dropped }
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// An open span. Attributes and events accumulate locally (no lock); the
/// span flushes to the collector exactly once, when the guard closes or
/// drops.
pub struct SpanGuard<'a> {
    collector: &'a TraceCollector,
    span: Option<Span>,
}

impl SpanGuard<'_> {
    /// The span's stable id (usable as a parent for children on other
    /// threads).
    pub fn id(&self) -> SpanId {
        self.span.as_ref().expect("open guard holds its span").id
    }

    /// Attach a typed attribute.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.span
            .as_mut()
            .expect("open guard holds its span")
            .attrs
            .push((key.to_string(), value.into()));
    }

    /// Record an instantaneous moment inside this span.
    pub fn event(&mut self, name: &str) {
        self.event_with(name, Vec::new());
    }

    /// Record an instantaneous moment with attributes.
    pub fn event_with(&mut self, name: &str, attrs: Vec<(String, AttrValue)>) {
        let at_ns = self.collector.now_ns();
        self.span
            .as_mut()
            .expect("open guard holds its span")
            .events
            .push(Event {
                name: name.to_string(),
                at_ns,
                attrs,
            });
    }

    /// Open a child span of this one.
    pub fn child(&self, name: &str) -> SpanGuard<'_> {
        self.collector.child(name, self.id())
    }

    /// Close the span now (equivalent to dropping the guard).
    pub fn close(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut span) = self.span.take() {
            span.dur_ns = self.collector.now_ns().saturating_sub(span.start_ns);
            self.collector.push(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_flush_in_deterministic_order() {
        let collector = TraceCollector::new();
        {
            let mut root = collector.span("root");
            root.attr("k", 1i64);
            {
                let mut child = root.child("child");
                child.event("tick");
            }
            root.event_with("done", vec![("ok".into(), AttrValue::Bool(true))]);
        }
        let trace = collector.snapshot();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped, 0);
        // Sorted by start: root opened first.
        assert_eq!(trace.spans[0].name, "root");
        assert_eq!(trace.spans[1].name, "child");
        assert_eq!(trace.spans[1].parent, Some(trace.spans[0].id));
        assert_eq!(trace.spans[0].events.len(), 1);
        assert_eq!(trace.spans[1].events[0].name, "tick");
        assert_eq!(trace.spans[0].attr("k"), Some(&AttrValue::Int(1)));
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_accounts() {
        let collector = TraceCollector::with_capacity(4);
        for i in 0..10 {
            let mut s = collector.span("s");
            s.attr("i", i as i64);
        }
        assert_eq!(collector.len(), 4);
        assert_eq!(collector.dropped(), 6);
        let trace = collector.snapshot();
        assert_eq!(trace.dropped, 6);
        // The survivors are the newest four, still in open order.
        let kept: Vec<i64> = trace
            .spans
            .iter()
            .map(|s| match s.attr("i") {
                Some(AttrValue::Int(i)) => *i,
                other => panic!("unexpected attr {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn take_drains_and_resets() {
        let collector = TraceCollector::with_capacity(2);
        for _ in 0..3 {
            collector.span("s").close();
        }
        let trace = collector.take();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped, 1);
        assert!(collector.is_empty());
        assert_eq!(collector.dropped(), 0);
    }

    #[test]
    fn instants_are_zero_duration_spans() {
        let collector = TraceCollector::new();
        let parent = collector.span("root");
        let id = collector.instant(
            Some(parent.id()),
            "moment",
            vec![("n".into(), AttrValue::Int(3))],
        );
        parent.close();
        let trace = collector.snapshot();
        let moment = trace
            .spans
            .iter()
            .find(|s| s.id == id)
            .expect("instant recorded");
        assert_eq!(moment.name, "moment");
        assert_eq!(moment.attr("n"), Some(&AttrValue::Int(3)));
        assert!(moment.dur_ns < 1_000_000, "instants are ~zero duration");
    }

    #[test]
    fn collector_is_shareable_across_scoped_threads() {
        let collector = TraceCollector::new();
        let root_id = {
            let root = collector.span("root");
            let id = root.id();
            std::thread::scope(|scope| {
                for w in 0..4usize {
                    let collector = &collector;
                    scope.spawn(move || {
                        let mut span = collector.child("work", id);
                        span.attr("worker", w);
                    });
                }
            });
            id
        };
        let trace = collector.snapshot();
        assert_eq!(trace.len(), 5);
        let workers: Vec<&Span> = trace.by_name("work").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|s| s.parent == Some(root_id)));
        // Each worker thread got its own small-integer tid.
        let tids: std::collections::HashSet<u64> = workers.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
    }
}
