//! Synthetic phase-sequence applications.
//!
//! Cluster-level experiments (Figures 1, 3, 6) need a *population* of jobs
//! with varied characteristics. [`SyntheticApp`] provides canned profiles
//! (compute-, memory-, comm-heavy, mixed) and [`random_app`] draws arbitrary
//! phase sequences deterministically from a seed tree.

use crate::mpi::MpiModel;
use crate::workload::{AppModel, NodeCountRule, Phase, Workload};
use pstack_hwmodel::PhaseMix;
use pstack_sim::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Canned application profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Profile {
    /// Dense-linear-algebra-like: mostly compute.
    ComputeHeavy,
    /// Stencil/graph-like: mostly memory.
    MemoryHeavy,
    /// Tightly coupled at scale: large MPI share.
    CommHeavy,
    /// A bit of everything, in alternating phases.
    Mixed,
}

impl Profile {
    /// All canned profiles.
    pub const ALL: [Profile; 4] = [
        Profile::ComputeHeavy,
        Profile::MemoryHeavy,
        Profile::CommHeavy,
        Profile::Mixed,
    ];
}

/// A synthetic application with a canned profile.
///
/// Weak-scaled: per-node work is constant in the node count; the
/// communication share still grows with scale through [`MpiModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticApp {
    /// The profile shaping the phase mix.
    pub profile: Profile,
    /// Per-node work, reference node-seconds.
    pub work_per_node: f64,
    /// Number of iterations the work is divided into.
    pub iterations: usize,
    /// Communication model.
    pub mpi: MpiModel,
}

impl SyntheticApp {
    /// Construct with the profile's default communication model.
    ///
    /// # Panics
    /// Panics on non-positive work or zero iterations.
    pub fn new(profile: Profile, work_per_node: f64, iterations: usize) -> Self {
        assert!(work_per_node > 0.0, "work must be positive");
        assert!(iterations > 0, "need at least one iteration");
        let mpi = match profile {
            Profile::CommHeavy => MpiModel::comm_heavy(),
            _ => MpiModel::typical(),
        };
        SyntheticApp {
            profile,
            work_per_node,
            iterations,
            mpi,
        }
    }
}

impl AppModel for SyntheticApp {
    fn name(&self) -> &str {
        match self.profile {
            Profile::ComputeHeavy => "synthetic-compute",
            Profile::MemoryHeavy => "synthetic-memory",
            Profile::CommHeavy => "synthetic-comm",
            Profile::Mixed => "synthetic-mixed",
        }
    }

    fn workload(&self, n_nodes: usize) -> Workload {
        assert!(n_nodes >= 1);
        let comm = self.mpi.comm_fraction(n_nodes);
        let per_iter = self.work_per_node / self.iterations as f64;
        let body: Vec<Phase> = match self.profile {
            Profile::ComputeHeavy => vec![
                Phase::new(
                    "dgemm_like",
                    PhaseMix::new(0.92, 0.08, 0.0, 0.0),
                    per_iter * (1.0 - comm),
                ),
                Phase::new(
                    "exchange",
                    PhaseMix::pure(pstack_hwmodel::PhaseKind::CommBound),
                    (per_iter * comm).max(1e-9),
                ),
            ],
            Profile::MemoryHeavy => vec![
                Phase::new(
                    "stream_like",
                    PhaseMix::new(0.12, 0.88, 0.0, 0.0),
                    per_iter * (1.0 - comm),
                ),
                Phase::new(
                    "exchange",
                    PhaseMix::pure(pstack_hwmodel::PhaseKind::CommBound),
                    (per_iter * comm).max(1e-9),
                ),
            ],
            Profile::CommHeavy => vec![
                Phase::new(
                    "local_update",
                    PhaseMix::new(0.55, 0.45, 0.0, 0.0),
                    per_iter * (1.0 - comm),
                ),
                Phase::new(
                    "alltoall",
                    PhaseMix::pure(pstack_hwmodel::PhaseKind::CommBound),
                    (per_iter * comm).max(1e-9),
                ),
            ],
            Profile::Mixed => vec![
                Phase::new(
                    "compute",
                    PhaseMix::new(0.85, 0.15, 0.0, 0.0),
                    per_iter * 0.4 * (1.0 - comm),
                ),
                Phase::new(
                    "memory",
                    PhaseMix::new(0.2, 0.8, 0.0, 0.0),
                    per_iter * 0.4 * (1.0 - comm),
                ),
                Phase::new(
                    "io_dump",
                    PhaseMix::new(0.05, 0.15, 0.0, 0.80),
                    per_iter * 0.2 * (1.0 - comm),
                ),
                Phase::new(
                    "exchange",
                    PhaseMix::pure(pstack_hwmodel::PhaseKind::CommBound),
                    (per_iter * comm).max(1e-9),
                ),
            ],
        };
        let mut w = Workload::new();
        w.repeat(&body, self.iterations);
        w
    }

    fn node_rule(&self) -> NodeCountRule {
        NodeCountRule::Any
    }
}

/// Draw a random synthetic app deterministically from `seeds` and `index`:
/// profile, size (log-uniform over roughly 1–30 minutes of per-node work at
/// reference speed) and iteration count all vary.
pub fn random_app(seeds: &SeedTree, index: u64) -> SyntheticApp {
    let mut rng = seeds.rng_indexed("synthetic-app", index);
    let profile = Profile::ALL[rng.gen_range(0..Profile::ALL.len())];
    let work = 60.0 * 30f64.powf(rng.gen_range(0.0..1.0));
    let iterations = rng.gen_range(20..200);
    SyntheticApp::new(profile, work, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_hwmodel::PhaseKind;

    #[test]
    fn profiles_have_expected_dominance() {
        let share = |p: Profile, kind: PhaseKind| {
            let w = SyntheticApp::new(p, 100.0, 10).workload(8);
            w.work_by_dominant(kind) / w.total_work()
        };
        assert!(share(Profile::ComputeHeavy, PhaseKind::ComputeBound) > 0.6);
        assert!(share(Profile::MemoryHeavy, PhaseKind::MemoryBound) > 0.6);
        assert!(
            share(Profile::CommHeavy, PhaseKind::CommBound)
                > share(Profile::ComputeHeavy, PhaseKind::CommBound)
        );
        assert!(share(Profile::Mixed, PhaseKind::IoBound) > 0.05);
    }

    #[test]
    fn weak_scaling_keeps_per_node_work() {
        let app = SyntheticApp::new(Profile::ComputeHeavy, 100.0, 10);
        let w1 = app.workload(1).total_work();
        let w16 = app.workload(16).total_work();
        assert!((w1 - 100.0).abs() < 1e-9);
        assert!(
            (w16 - 100.0).abs() < 1e-9,
            "total per-node work stays fixed"
        );
    }

    #[test]
    fn random_apps_deterministic_and_varied() {
        let seeds = SeedTree::new(77);
        let a = random_app(&seeds, 0);
        let b = random_app(&seeds, 0);
        assert_eq!(a, b);
        let apps: Vec<SyntheticApp> = (0..32).map(|i| random_app(&seeds, i)).collect();
        let profiles: std::collections::HashSet<_> = apps.iter().map(|a| a.profile).collect();
        assert!(profiles.len() >= 3, "should draw varied profiles");
        for a in &apps {
            assert!(a.work_per_node >= 60.0 && a.work_per_node <= 1800.0);
        }
    }

    #[test]
    fn iteration_structure() {
        let app = SyntheticApp::new(Profile::Mixed, 10.0, 5);
        let w = app.workload(2);
        assert_eq!(w.len(), 4 * 5);
    }
}
