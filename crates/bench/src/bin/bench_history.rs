//! Warm-start acceptance gate for the shared performance history.
//!
//! Thin binary over [`powerstack_core::experiments::history`] (extension
//! E9): runs the donor → cold-vs-warmed comparison on both co-tuning arms,
//! writes the `results/bench_history.{json,txt}` artifacts, and exits
//! nonzero unless the history-warmed campaign reached the
//! within-2%-of-best band in strictly fewer fresh evaluations than the
//! cold campaign on *every* arm. The CI `history` stage runs this binary.

use powerstack_core::experiments::history;

fn main() {
    pstack_analyze::startup_gate();

    let r = pstack_bench::traced("bench_history", |_tc| {
        pstack_bench::timed("E9", history::run_default)
    });
    let r = pstack_bench::run_or_exit("bench_history", r);
    pstack_bench::emit("bench_history", &history::render(&r), &r);

    for row in &r.rows {
        assert!(
            row.warmed_fewer,
            "{}: history-warmed campaign needed {:?} fresh evals to the band \
             vs cold {:?} — no warm-start gain; see results/bench_history.json",
            row.arm, row.warmed_evals_to_target, row.cold_evals_to_target
        );
    }
}
