//! # pstack-bench — the paper-artifact regeneration harness
//!
//! One binary per table/figure/use case (see `src/bin/`), each running the
//! corresponding `powerstack_core::experiments` module at full scale,
//! printing the rendered table/series, and writing both the text and a JSON
//! dump under `results/`. The `regenerate_all` binary runs everything —
//! its output is the source of EXPERIMENTS.md.
//!
//! The Criterion benches in `benches/` measure the simulator's own hot
//! paths (node stepping, job execution, search algorithms) so performance
//! regressions in the substrate are caught like any other bug.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod diff;
pub mod evalthroughput;
pub mod lockorder;

use pstack_trace::{Trace, TraceCollector};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Directory experiment outputs are written to (repo-relative).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("POWERSTACK_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Print `rendered` and persist it (plus a JSON dump of `data`) under
/// `results/<name>.{txt,json}`.
pub fn emit<T: Serialize>(name: &str, rendered: &str, data: &T) {
    println!("{rendered}");
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let txt = dir.join(format!("{name}.txt"));
    let json = dir.join(format!("{name}.json"));
    if let Err(e) = fs::write(&txt, rendered) {
        eprintln!("warning: cannot write {}: {e}", txt.display());
    }
    match serde_json::to_string_pretty(data) {
        Ok(s) => {
            if let Err(e) = fs::write(&json, s) {
                eprintln!("warning: cannot write {}: {e}", json.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Persist `trace` as `results/trace_<name>.json` in Chrome `trace_event`
/// format — open the file in `chrome://tracing` or Perfetto. This is the
/// trace exporter PSA014 requires of every JSON-writing bench bin.
pub fn emit_trace(name: &str, trace: &Trace) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("trace_{name}.json"));
    match fs::write(&path, pstack_trace::to_chrome(trace)) {
        Ok(()) => eprintln!(
            "[trace: {} spans ({} dropped) -> {}]",
            trace.len(),
            trace.dropped,
            path.display()
        ),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Run `f` against a fresh trace collector (wrapped in a root span named
/// `name`), then export everything collected via [`emit_trace`].
///
/// The collector arrives as an `&Arc` so the closure can hand clones to
/// [`pstack_autotune::Tuner::with_trace`]-style sinks; plain
/// `&TraceCollector` consumers (e.g. `Scenario::run_traced`) take it by
/// deref coercion.
pub fn traced<T>(name: &str, f: impl FnOnce(&Arc<TraceCollector>) -> T) -> T {
    let collector = Arc::new(TraceCollector::new());
    let out = {
        let _root = collector.span(name);
        f(&collector)
    };
    emit_trace(name, &collector.snapshot());
    out
}

/// Unwrap an experiment result; on error, render the diagnostic to stderr
/// and exit with status 1.
///
/// Bench bins must never exit 0 without writing their artifact: a tuning
/// failure (e.g. [`TuneError::NoEvaluations`](pstack_autotune::TuneError))
/// that merely prints and falls off `main` reads as a successful
/// regeneration to CI and to `regenerate_all`'s callers.
pub fn run_or_exit<T, E: std::fmt::Display>(label: &str, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {label}: {e}");
            eprintln!("error: {label}: no artifact written; exiting nonzero");
            std::process::exit(1);
        }
    }
}

/// Wall-clock a closure, printing the elapsed time to stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_emits_a_round_trippable_chrome_trace() {
        let tmp = std::env::temp_dir().join("pstack-bench-trace-test");
        std::env::set_var("POWERSTACK_RESULTS_DIR", &tmp);
        let out = traced("unit_test_trace", |tc| {
            let mut span = tc.span("work");
            span.attr("step", 1i64);
            42
        });
        assert_eq!(out, 42);
        let path = tmp.join("trace_unit_test_trace.json");
        let raw = std::fs::read_to_string(&path).expect("trace artifact written");
        let back = pstack_trace::from_chrome(&raw).expect("valid Chrome trace");
        assert!(back.by_name("unit_test_trace").next().is_some());
        assert!(back.by_name("work").next().is_some());
        std::env::remove_var("POWERSTACK_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn emit_writes_files() {
        let tmp = std::env::temp_dir().join("pstack-bench-test");
        std::env::set_var("POWERSTACK_RESULTS_DIR", &tmp);
        emit("unit_test_artifact", "hello table", &vec![1, 2, 3]);
        assert!(tmp.join("unit_test_artifact.txt").exists());
        assert!(tmp.join("unit_test_artifact.json").exists());
        std::env::remove_var("POWERSTACK_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
