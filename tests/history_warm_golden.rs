//! Golden-file regression for history-warmed campaigns.
//!
//! A fixed-seed uc1 (Hypre co-tune, min-EDP) campaign warm-started from the
//! **committed** fixture store under `tests/fixtures/history_store/` must
//! reproduce `tests/goldens/history_warm_uc1.json` byte-for-byte. This pins
//! three things at once: the on-disk shard format (the fixture is read by
//! every future toolchain), the canonical space fingerprint (a silent key
//! change would find zero priors and shift the whole trajectory), and the
//! warm-start arithmetic itself.
//!
//! To regenerate after an intentional format or behaviour change:
//!
//! ```text
//! UPDATE_HISTORY_FIXTURE=1 cargo test --test history_warm_golden
//! UPDATE_GOLDENS=1         cargo test --test history_warm_golden
//! ```
//!
//! then commit the refreshed fixture and golden together. The cold-run
//! goldens under `tests/goldens/` are produced by `golden_results` and are
//! untouched by this suite.

// Integration tests are exempt from the workspace unwrap policy.
#![allow(clippy::disallowed_methods)]

use powerstack::autotune::{history_key, record_report, ForestSearch, Tuner};
use powerstack::core::cotune::HypreCoTune;
use powerstack::core::interfaces::Objective;
use powerstack::history::{HistoryKey, HistoryStore};
use std::path::PathBuf;
use std::sync::Once;

/// Seed of the donor campaign baked into the committed fixture store.
const DONOR_SEED: u64 = 0x5EED_D001;
/// Evaluation budget of the committed donor campaign.
const DONOR_EVALS: usize = 60;
/// Seed of the warmed campaign whose report is the golden.
const CAMPAIGN_SEED: u64 = 20200914;
/// Evaluation budget of the warmed campaign.
const CAMPAIGN_EVALS: usize = 24;
/// `best_k` priors pulled from the fixture store.
const WARM_K: usize = 12;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("history_store")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("history_warm_uc1.json")
}

fn uc1_key(space: &powerstack::autotune::ParamSpace) -> HistoryKey {
    history_key(space, "hypre", "min-edp")
}

/// Open the committed fixture store, regenerating it first when
/// `UPDATE_HISTORY_FIXTURE=1` (guarded so parallel tests regenerate once).
fn fixture_store() -> HistoryStore {
    static REGEN: Once = Once::new();
    REGEN.call_once(|| {
        if std::env::var("UPDATE_HISTORY_FIXTURE").as_deref() != Ok("1") {
            return;
        }
        let dir = fixture_dir();
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear old fixture");
        }
        let store = HistoryStore::open(&dir).expect("create fixture store");
        let scenario = HypreCoTune::new(Objective::MinEdp);
        let space = scenario.space();
        let donor = Tuner::new(space.clone())
            .max_evals(DONOR_EVALS)
            .seed(DONOR_SEED)
            .run(&mut ForestSearch::new(), |s, c| scenario.evaluate(s, c))
            .expect("donor campaign");
        record_report(&store, &uc1_key(&space), "fixture-donor", &donor)
            .expect("record fixture donor");
        eprintln!("regenerated fixture store at {}", dir.display());
    });
    assert!(
        fixture_dir().join("meta.json").exists(),
        "missing committed fixture store at {} — regenerate with \
         UPDATE_HISTORY_FIXTURE=1 cargo test --test history_warm_golden",
        fixture_dir().display()
    );
    HistoryStore::open(fixture_dir()).expect("open committed fixture store")
}

#[test]
fn fixture_store_is_readable_and_keyed_correctly() {
    let store = fixture_store();
    let scenario = HypreCoTune::new(Objective::MinEdp);
    let space = scenario.space();
    let key = uc1_key(&space);
    let records = store.records(&key).expect("read fixture records");
    assert_eq!(
        records.len(),
        DONOR_EVALS,
        "fixture store must hold exactly the donor campaign's observations"
    );
    assert!(records.iter().all(|r| r.session == "fixture-donor"));
    let stats = store.stats(&key).expect("fixture stats");
    assert!(stats.best_objective.expect("non-empty key").is_finite());
    // The committed records were filed under today's canonical fingerprint:
    // a drift in fingerprint canonicalisation would orphan them.
    assert!(store
        .matching_space(&key.space)
        .expect("matching_space")
        .contains(&key));
}

#[test]
fn warmed_uc1_campaign_matches_golden_byte_for_byte() {
    let store = fixture_store();
    let scenario = HypreCoTune::new(Objective::MinEdp);
    let space = scenario.space();
    let key = uc1_key(&space);

    let report = Tuner::new(space.clone())
        .max_evals(CAMPAIGN_EVALS)
        .seed(CAMPAIGN_SEED)
        .warm_start_from_history(&store, &key, WARM_K)
        .expect("warm start from fixture")
        .run(&mut ForestSearch::new(), |s, c| scenario.evaluate(s, c))
        .expect("warmed campaign");
    assert!(
        report.db.len() > report.evals,
        "campaign received no priors — fixture key did not match"
    );
    let got = serde_json::to_string_pretty(&report).expect("serialize report");

    let path = golden_path();
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        std::fs::write(&path, &got).expect("bless golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}) — bless with UPDATE_GOLDENS=1 cargo \
             test --test history_warm_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "history-warmed uc1 report drifted from its golden; if intentional, \
         re-bless with UPDATE_GOLDENS=1 and commit fixture + golden together"
    );
}
