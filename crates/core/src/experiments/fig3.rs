//! Figure 3 / §3.2.2 — multijob GEOPM policy assignment.
//!
//! "Figure 3 illustrates how facility-level power policies filter down into
//! job-level granularity." The experiment sweeps the system power budget and
//! compares GEOPM's three site-policy modes:
//!
//! 1. **static sitewide** — one preconfigured uniform node cap for everyone;
//! 2. **job-specific** — per-job policies from a profile database (memory-
//!    bound jobs get an energy-efficient frequency policy, compute-bound jobs
//!    a governor cap);
//! 3. **fully dynamic** — per-job power balancer fed by the RM's fair-share
//!    budget through the endpoint.
//!
//! Expected shape: dynamic ≥ job-specific ≥ static in throughput under tight
//! budgets, converging as the budget loosens.

use pstack_apps::synthetic::{random_app, Profile};
use pstack_hwmodel::{NodeConfig, VariationModel};
use pstack_node::NodeManager;
use pstack_rm::{AgentKind, JobSpec, PowerAssignment, Scheduler, SystemPowerPolicy};
use pstack_runtime::GeopmPolicy;
use pstack_sim::{SeedTree, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// GEOPM site-policy modes (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyMode {
    /// Static preconfigured sitewide policy.
    StaticSitewide,
    /// Job-specific policies from a profile database.
    JobSpecific,
    /// Fully dynamic cooperation (RM → endpoint → balancer).
    FullyDynamic,
}

impl PolicyMode {
    /// All modes.
    pub const ALL: [PolicyMode; 3] = [
        PolicyMode::StaticSitewide,
        PolicyMode::JobSpecific,
        PolicyMode::FullyDynamic,
    ];
}

/// One (budget, mode) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// System budget, watts.
    pub budget_w: f64,
    /// Policy mode.
    pub mode: PolicyMode,
    /// Jobs completed.
    pub completed: usize,
    /// Makespan of the whole mix, seconds.
    pub makespan_s: f64,
    /// Throughput, jobs/hour.
    pub jobs_per_hour: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Mean system power, watts.
    pub mean_power_w: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One row per (budget, mode).
    pub rows: Vec<Fig3Row>,
}

fn run_cell(
    budget_w: f64,
    mode: PolicyMode,
    n_nodes: usize,
    n_jobs: usize,
    job_scale: f64,
    seed: u64,
) -> Fig3Row {
    let seeds = SeedTree::new(seed);
    let nodes = NodeManager::fleet(
        n_nodes,
        NodeConfig::server_default(),
        &VariationModel::typical(),
        &seeds,
    );
    let per_node = budget_w / n_nodes as f64;
    let policy = match mode {
        // Static + job-specific modes enforce through per-node budgets;
        // dynamic mode lets the RM re-divide fair-share budgets.
        PolicyMode::StaticSitewide | PolicyMode::JobSpecific => {
            SystemPowerPolicy::budgeted(budget_w, PowerAssignment::PerNodeCap(per_node))
        }
        PolicyMode::FullyDynamic => {
            SystemPowerPolicy::budgeted(budget_w, PowerAssignment::FairShare)
        }
    };
    let mut sched = Scheduler::new(nodes, policy, seeds.subtree("sched"));
    if mode == PolicyMode::FullyDynamic {
        // Mode 3 is fully dynamic end to end: the RM renegotiates job budgets
        // from live efficiency telemetry through the GEOPM endpoints.
        sched = sched.with_dynamic_power_reassignment(SimDuration::from_secs(10));
    }
    let mut rng = seeds.rng("arrivals");
    let mut t = 0u64;
    for i in 0..n_jobs {
        let mut app = random_app(&seeds, i as u64);
        app.work_per_node *= job_scale * 0.2;
        let profile = app.profile;
        let nodes_wanted = 1usize << rng.gen_range(0..3);
        let agent = match mode {
            PolicyMode::StaticSitewide => AgentKind::Geopm(GeopmPolicy::PowerGovernor {
                node_cap_w: per_node,
            }),
            PolicyMode::JobSpecific => match profile {
                // The site profile database: per-application policy choices.
                Profile::MemoryHeavy | Profile::Mixed => {
                    AgentKind::Geopm(GeopmPolicy::EnergyEfficient { perf_margin: 0.10 })
                }
                Profile::CommHeavy => AgentKind::Geopm(GeopmPolicy::FrequencyMap {
                    default_ghz: 3.5,
                    map: [("exchange".to_string(), 1.2), ("alltoall".to_string(), 1.2)]
                        .into_iter()
                        .collect(),
                }),
                Profile::ComputeHeavy => AgentKind::Geopm(GeopmPolicy::PowerGovernor {
                    node_cap_w: per_node,
                }),
            },
            PolicyMode::FullyDynamic => AgentKind::Geopm(GeopmPolicy::PowerBalancer {
                job_budget_w: 1.0, // overridden by the RM fair-share budget
            }),
        };
        sched.submit(
            JobSpec::rigid(i as u64, Arc::new(app), nodes_wanted, SimTime::from_secs(t))
                .with_agent(agent),
        );
        t += rng.gen_range(5..30);
    }
    sched.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(24 * 3600));
    let m = sched.metrics();
    Fig3Row {
        budget_w,
        mode,
        completed: m.completed,
        makespan_s: sched.now().as_secs_f64(),
        jobs_per_hour: m.jobs_per_hour,
        energy_j: m.system_energy_j,
        mean_power_w: m.mean_system_power_w,
    }
}

/// Sweep budgets × modes.
pub fn run(
    budgets_w: &[f64],
    n_nodes: usize,
    n_jobs: usize,
    job_scale: f64,
    seed: u64,
) -> Fig3Result {
    let mut rows = Vec::new();
    for &b in budgets_w {
        for mode in PolicyMode::ALL {
            rows.push(run_cell(b, mode, n_nodes, n_jobs, job_scale, seed));
        }
    }
    Fig3Result { rows }
}

/// Default full-scale configuration.
pub fn run_default() -> Fig3Result {
    let full = 16.0 * 450.0;
    run(
        &[full * 0.5, full * 0.65, full * 0.8],
        16,
        12,
        1.0,
        20200902,
    )
}

/// Render as a table.
pub fn render(r: &Fig3Result) -> String {
    let mut out = String::from(
        "FIGURE 3 / MULTIJOB GEOPM POLICY ASSIGNMENT: site policy modes under budget sweep\n\
         budget_W | mode           | done | makespan_s | jobs/h | energy_MJ | W_mean\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:>8.0} | {:<14} | {:>4} | {:>10.0} | {:>6.2} | {:>9.2} | {:>6.0}\n",
            row.budget_w,
            format!("{:?}", row.mode),
            row.completed,
            row.makespan_s,
            row.jobs_per_hour,
            row.energy_j / 1e6,
            row.mean_power_w,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_complete_under_moderate_budget() {
        let r = run(&[6.0 * 330.0], 6, 5, 0.5, 3);
        for row in &r.rows {
            assert_eq!(row.completed, 5, "{:?}", row.mode);
            assert!(
                row.mean_power_w <= row.budget_w * 1.10,
                "{:?} drew {} W over budget {}",
                row.mode,
                row.mean_power_w,
                row.budget_w
            );
        }
    }

    #[test]
    fn dynamic_not_worse_than_static_under_tight_budget() {
        let r = run(&[6.0 * 300.0], 6, 5, 0.5, 4);
        let get = |m: PolicyMode| r.rows.iter().find(|x| x.mode == m).unwrap();
        let stat = get(PolicyMode::StaticSitewide);
        let dyn_ = get(PolicyMode::FullyDynamic);
        assert!(
            dyn_.makespan_s <= stat.makespan_s * 1.15,
            "dynamic {} vs static {}",
            dyn_.makespan_s,
            stat.makespan_s
        );
    }

    #[test]
    fn render_shape() {
        let r = run(&[2000.0], 4, 2, 0.3, 1);
        let s = render(&r);
        assert_eq!(s.lines().count(), 2 + 3);
    }
}
