//! Fault plans: declarative descriptions of what to inject.
//!
//! A [`FaultPlan`] names the fault classes of the tentpole — telemetry
//! corruption, knob actuation faults, runtime-agent crashes, RM emergency
//! power drops (§3.2.5), and evaluation failures — with per-class rates. The
//! [`default_rates`](FaultPlan::default_rates) preset documents the rates
//! every fig/uc scenario must survive; the single-fault presets isolate one
//! class each for the ≥90 %-recovery acceptance runs. Plans are plain data:
//! serializable, comparable, and statically checkable ([`FaultPlan::check`]
//! feeds the analyzer's PSA012 rule).

use pstack_diag::Diagnostic;
use serde::{Deserialize, Serialize};

/// Layer tag used by fault-plan diagnostics.
pub const LAYER: &str = "faults";

/// Telemetry corruption: noisy, spiking, and dropped power samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryFaults {
    /// Relative magnitude of multiplicative noise on each sample
    /// (`±noise_frac × reading`), 0 disables.
    pub noise_frac: f64,
    /// Probability a sample is dropped entirely.
    pub drop_prob: f64,
    /// Probability a sample spikes (sensor glitch).
    pub spike_prob: f64,
    /// Multiplier applied to spiking samples (≥ 1).
    pub spike_factor: f64,
}

impl TelemetryFaults {
    /// No telemetry faults.
    pub fn none() -> Self {
        TelemetryFaults {
            noise_frac: 0.0,
            drop_prob: 0.0,
            spike_prob: 0.0,
            spike_factor: 1.0,
        }
    }
}

/// Knob actuation faults: writes that silently fail or apply late.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobFaults {
    /// Probability a knob write silently fails (stuck actuator).
    pub stick_prob: f64,
    /// Probability a knob write applies late instead of immediately.
    pub lag_prob: f64,
    /// How many injector ticks a lagging write waits before applying (≥ 1
    /// when `lag_prob > 0`).
    pub lag_steps: usize,
}

impl KnobFaults {
    /// No knob faults.
    pub fn none() -> Self {
        KnobFaults {
            stick_prob: 0.0,
            lag_prob: 0.0,
            lag_steps: 1,
        }
    }
}

/// Runtime-agent crash/restart faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentFaults {
    /// Probability the agent crashes at any given control tick.
    pub crash_prob: f64,
    /// Control ticks a crashed agent misses before its supervisor restarts
    /// it (≥ 1).
    pub restart_after_controls: usize,
}

impl AgentFaults {
    /// No agent faults.
    pub fn none() -> Self {
        AgentFaults {
            crash_prob: 0.0,
            restart_after_controls: 1,
        }
    }
}

/// One RM-level emergency power reduction (§3.2.5): at `at_s` the system
/// budget drops to `budget_factor` of nominal for `duration_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmergencyFault {
    /// When the emergency begins, simulated seconds from job start.
    pub at_s: f64,
    /// Fraction of the nominal power budget available during the emergency,
    /// in `(0, 1]`.
    pub budget_factor: f64,
    /// How long the emergency lasts, simulated seconds.
    pub duration_s: f64,
}

/// Evaluation faults inside the tuning loop: failures, timeouts, garbage
/// objectives, and slow (inflated) measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalFaults {
    /// Probability an evaluation attempt fails outright.
    pub fail_prob: f64,
    /// Probability an evaluation attempt times out.
    pub timeout_prob: f64,
    /// Virtual time after which a timed-out evaluation is declared dead,
    /// seconds.
    pub timeout_s: f64,
    /// Probability an evaluation attempt returns a non-finite objective.
    pub nan_prob: f64,
    /// Probability an evaluation runs slow, inflating its measured
    /// objective.
    pub slow_prob: f64,
    /// Multiplier applied to the objective of slow evaluations (≥ 1).
    pub slow_factor: f64,
}

impl EvalFaults {
    /// No evaluation faults.
    pub fn none() -> Self {
        EvalFaults {
            fail_prob: 0.0,
            timeout_prob: 0.0,
            timeout_s: 120.0,
            nan_prob: 0.0,
            slow_prob: 0.0,
            slow_factor: 1.0,
        }
    }
}

/// Process-level faults: the tuning process itself is killed mid-session
/// and must be restarted from its last checkpoint by a supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessFaults {
    /// Probability the tuning process dies immediately after logging any
    /// given evaluation record.
    pub kill_prob: f64,
    /// Hard cap on injected kills per supervised session (the supervisor's
    /// restart budget must cover at least this many).
    pub max_kills: usize,
}

impl ProcessFaults {
    /// No process faults.
    pub fn none() -> Self {
        ProcessFaults {
            kill_prob: 0.0,
            max_kills: 0,
        }
    }
}

/// A complete fault plan across the stack's layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Plan name (unique within a catalog).
    pub name: String,
    /// Telemetry faults (node → monitoring path).
    pub telemetry: TelemetryFaults,
    /// Knob actuation faults (control → node path).
    pub knobs: KnobFaults,
    /// Runtime-agent crash/restart faults.
    pub agent: AgentFaults,
    /// RM emergency power reduction, if scheduled.
    pub emergency: Option<EmergencyFault>,
    /// Evaluation faults inside the tuner.
    pub evals: EvalFaults,
    /// Process-level kills of the tuning session itself.
    pub process: ProcessFaults,
}

impl FaultPlan {
    /// The empty plan: inject nothing (the control arm of every chaos run).
    pub fn none() -> Self {
        FaultPlan {
            name: "none".to_string(),
            telemetry: TelemetryFaults::none(),
            knobs: KnobFaults::none(),
            agent: AgentFaults::none(),
            emergency: None,
            evals: EvalFaults::none(),
            process: ProcessFaults::none(),
        }
    }

    /// The documented default rates: every fault class on at once, at rates
    /// a robust stack must shrug off. These are the rates the acceptance
    /// criteria reference ("with faults enabled at documented default
    /// rates") — see README §Fault model.
    pub fn default_rates() -> Self {
        FaultPlan {
            name: "default_rates".to_string(),
            telemetry: TelemetryFaults {
                noise_frac: 0.05,
                drop_prob: 0.02,
                spike_prob: 0.01,
                spike_factor: 3.0,
            },
            knobs: KnobFaults {
                stick_prob: 0.05,
                lag_prob: 0.05,
                lag_steps: 2,
            },
            agent: AgentFaults {
                crash_prob: 0.02,
                restart_after_controls: 4,
            },
            emergency: Some(EmergencyFault {
                at_s: 30.0,
                budget_factor: 0.6,
                duration_s: 20.0,
            }),
            evals: EvalFaults {
                fail_prob: 0.05,
                timeout_prob: 0.02,
                timeout_s: 120.0,
                nan_prob: 0.02,
                slow_prob: 0.05,
                slow_factor: 2.0,
            },
            // Process kills are exercised by the supervised single-fault
            // plan; the in-process chaos matrix has nothing to restart.
            process: ProcessFaults::none(),
        }
    }

    /// Single-fault plan: process kills only — the tuning process dies
    /// after ~1 in 5 logged evaluations (bounded by `max_kills`) and a
    /// [`SessionSupervisor`](crate::SessionSupervisor) must resume it from
    /// the last checkpoint.
    pub fn process_kill_only() -> Self {
        FaultPlan {
            name: "process_kill_only".to_string(),
            process: ProcessFaults {
                kill_prob: 0.2,
                max_kills: 4,
            },
            ..FaultPlan::none()
        }
    }

    /// Single-fault plan: telemetry corruption only.
    pub fn telemetry_only() -> Self {
        FaultPlan {
            name: "telemetry_only".to_string(),
            telemetry: TelemetryFaults {
                noise_frac: 0.10,
                drop_prob: 0.05,
                spike_prob: 0.02,
                spike_factor: 4.0,
            },
            ..FaultPlan::none()
        }
    }

    /// Single-fault plan: stuck/lagging knob actuations only.
    pub fn knobs_only() -> Self {
        FaultPlan {
            name: "knobs_only".to_string(),
            knobs: KnobFaults {
                stick_prob: 0.10,
                lag_prob: 0.10,
                lag_steps: 3,
            },
            ..FaultPlan::none()
        }
    }

    /// Single-fault plan: agent crashes/restarts only.
    pub fn crashes_only() -> Self {
        FaultPlan {
            name: "crashes_only".to_string(),
            agent: AgentFaults {
                crash_prob: 0.05,
                restart_after_controls: 3,
            },
            ..FaultPlan::none()
        }
    }

    /// Single-fault plan: one RM emergency power drop only.
    pub fn emergency_only() -> Self {
        FaultPlan {
            name: "emergency_only".to_string(),
            emergency: Some(EmergencyFault {
                at_s: 20.0,
                budget_factor: 0.55,
                duration_s: 30.0,
            }),
            ..FaultPlan::none()
        }
    }

    /// Single-fault plan: failing/slow evaluations only.
    pub fn evals_only() -> Self {
        FaultPlan {
            name: "evals_only".to_string(),
            evals: EvalFaults {
                fail_prob: 0.10,
                timeout_prob: 0.05,
                timeout_s: 120.0,
                nan_prob: 0.05,
                slow_prob: 0.10,
                slow_factor: 3.0,
            },
            ..FaultPlan::none()
        }
    }

    /// The shipped plan catalog: the control arm, every single-fault plan,
    /// and the all-on default-rates plan — the matrix `ext_faults` and the
    /// chaos suite run.
    pub fn catalog() -> Vec<FaultPlan> {
        vec![
            FaultPlan::none(),
            FaultPlan::telemetry_only(),
            FaultPlan::knobs_only(),
            FaultPlan::crashes_only(),
            FaultPlan::emergency_only(),
            FaultPlan::evals_only(),
            FaultPlan::process_kill_only(),
            FaultPlan::default_rates(),
        ]
    }

    /// Whether this plan is a single-fault plan (at most one fault class
    /// active) — the arm the ≥90 %-recovery acceptance bound applies to.
    pub fn is_single_fault(&self) -> bool {
        self.active_classes() <= 1
    }

    /// Number of active fault classes.
    pub fn active_classes(&self) -> usize {
        let t = self.telemetry.noise_frac > 0.0
            || self.telemetry.drop_prob > 0.0
            || self.telemetry.spike_prob > 0.0;
        let k = self.knobs.stick_prob > 0.0 || self.knobs.lag_prob > 0.0;
        let a = self.agent.crash_prob > 0.0;
        let e = self.emergency.is_some();
        let v = self.evals.fail_prob > 0.0
            || self.evals.timeout_prob > 0.0
            || self.evals.nan_prob > 0.0
            || self.evals.slow_prob > 0.0;
        let p = self.process.kill_prob > 0.0;
        [t, k, a, e, v, p].iter().filter(|&&x| x).count()
    }

    /// Static sanity checks (the analyzer's PSA012 substance): every
    /// probability in `[0, 1]`, factors on the meaningful side of 1, lags
    /// and restart windows positive, emergencies inside `(0, 1]` of budget.
    pub fn check(&self, rule: &str, path: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut err = |msg: String| {
            out.push(Diagnostic::error(rule, LAYER, path, msg));
        };
        if self.name.trim().is_empty() {
            err("fault plan has an empty name".to_string());
        }
        for (what, p) in [
            ("telemetry.noise_frac", self.telemetry.noise_frac),
            ("telemetry.drop_prob", self.telemetry.drop_prob),
            ("telemetry.spike_prob", self.telemetry.spike_prob),
            ("knobs.stick_prob", self.knobs.stick_prob),
            ("knobs.lag_prob", self.knobs.lag_prob),
            ("agent.crash_prob", self.agent.crash_prob),
            ("evals.fail_prob", self.evals.fail_prob),
            ("evals.timeout_prob", self.evals.timeout_prob),
            ("evals.nan_prob", self.evals.nan_prob),
            ("evals.slow_prob", self.evals.slow_prob),
            ("process.kill_prob", self.process.kill_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                err(format!("{what} = {p} must be a probability in [0, 1]"));
            }
        }
        if self.telemetry.spike_factor < 1.0 || !self.telemetry.spike_factor.is_finite() {
            err(format!(
                "telemetry.spike_factor = {} must be ≥ 1 (a spike amplifies)",
                self.telemetry.spike_factor
            ));
        }
        if self.knobs.lag_prob > 0.0 && self.knobs.lag_steps == 0 {
            err("knobs.lag_steps must be ≥ 1 when lag_prob > 0 (a 0-step lag is not a lag)".into());
        }
        if self.agent.crash_prob > 0.0 && self.agent.restart_after_controls == 0 {
            err("agent.restart_after_controls must be ≥ 1 when crashes are enabled".into());
        }
        if let Some(e) = &self.emergency {
            if !(e.budget_factor > 0.0 && e.budget_factor <= 1.0) {
                err(format!(
                    "emergency.budget_factor = {} must be in (0, 1] (a drop, not an outage)",
                    e.budget_factor
                ));
            }
            if e.duration_s <= 0.0 || !e.duration_s.is_finite() {
                err(format!(
                    "emergency.duration_s = {} must be positive",
                    e.duration_s
                ));
            }
            if e.at_s < 0.0 || !e.at_s.is_finite() {
                err(format!("emergency.at_s = {} must be ≥ 0", e.at_s));
            }
        }
        if self.evals.slow_factor < 1.0 || !self.evals.slow_factor.is_finite() {
            err(format!(
                "evals.slow_factor = {} must be ≥ 1 (slow evaluations inflate)",
                self.evals.slow_factor
            ));
        }
        if self.evals.timeout_s <= 0.0 || !self.evals.timeout_s.is_finite() {
            err(format!(
                "evals.timeout_s = {} must be positive",
                self.evals.timeout_s
            ));
        }
        if self.process.kill_prob > 0.0 && self.process.max_kills == 0 {
            err(
                "process.max_kills must be ≥ 1 when kill_prob > 0 (an unbounded kill stream \
                 would exhaust any restart budget)"
                    .into(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_catalog_is_sane_and_uniquely_named() {
        let catalog = FaultPlan::catalog();
        let mut names: Vec<&str> = catalog.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "duplicate plan names");
        for plan in &catalog {
            assert!(
                plan.check("T", &plan.name).is_empty(),
                "plan {} fails its own sanity checks",
                plan.name
            );
        }
    }

    #[test]
    fn single_fault_classification() {
        assert!(FaultPlan::none().is_single_fault());
        assert!(FaultPlan::telemetry_only().is_single_fault());
        assert!(FaultPlan::knobs_only().is_single_fault());
        assert!(FaultPlan::crashes_only().is_single_fault());
        assert!(FaultPlan::emergency_only().is_single_fault());
        assert!(FaultPlan::evals_only().is_single_fault());
        assert!(FaultPlan::process_kill_only().is_single_fault());
        assert!(!FaultPlan::default_rates().is_single_fault());
        assert_eq!(FaultPlan::default_rates().active_classes(), 5);
    }

    #[test]
    fn broken_plans_are_flagged() {
        let mut p = FaultPlan::none();
        p.telemetry.drop_prob = 1.5;
        assert!(!p.check("T", "x").is_empty());

        let mut p = FaultPlan::none();
        p.telemetry.spike_prob = 0.1;
        p.telemetry.spike_factor = 0.5;
        assert!(!p.check("T", "x").is_empty());

        let mut p = FaultPlan::none();
        p.knobs.lag_prob = 0.1;
        p.knobs.lag_steps = 0;
        assert!(!p.check("T", "x").is_empty());

        let mut p = FaultPlan::none();
        p.emergency = Some(EmergencyFault {
            at_s: 10.0,
            budget_factor: 0.0,
            duration_s: 5.0,
        });
        assert!(!p.check("T", "x").is_empty());

        let mut p = FaultPlan::none();
        p.name = String::new();
        assert!(!p.check("T", "x").is_empty());

        let mut p = FaultPlan::none();
        p.process.kill_prob = 0.5;
        p.process.max_kills = 0;
        assert!(!p.check("T", "x").is_empty());
    }

    #[test]
    fn plans_serialize_round_trip() {
        for plan in FaultPlan::catalog() {
            let json = serde_json::to_string(&plan).unwrap();
            let back: FaultPlan = serde_json::from_str(&json).unwrap();
            assert_eq!(back, plan);
        }
    }
}
