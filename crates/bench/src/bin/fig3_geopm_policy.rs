//! Regenerate Figure 3: multijob GEOPM policy assignment across budgets.
use powerstack_core::experiments::fig3;
fn main() {
    pstack_analyze::startup_gate();
    let r = pstack_bench::traced("fig3_geopm_policy", |_tc| {
        pstack_bench::timed("fig3", fig3::run_default)
    });
    pstack_bench::emit("fig3_geopm_policy", &fig3::render(&r), &r);
}
