//! Extension experiment E7 — crash-safe tuning sessions.
//!
//! The paper's loop (§3.2, Figure 4) is described as if the autotuner
//! process were immortal; on a production PowerStack it is a job like any
//! other and dies with node failures, OOM kills, and scheduler preemption.
//! This experiment measures the checkpoint/restart subsystem's recovery
//! contract: a tuning session killed at *any* point resumes from its
//! write-ahead checkpoint to a **byte-identical** report.
//!
//! For each driver arm (serial, serial resilient, parallel, parallel
//! resilient — the latter two at worker counts 1/4/8) the experiment
//!
//! 1. runs an uninterrupted baseline and serializes its report;
//! 2. re-runs with checkpointing armed and a cooperative kill at every
//!    decile of the evaluation budget, resumes each killed session, and
//!    compares the resumed report byte-for-byte against the baseline —
//!    parallel resumes deliberately use a *different* worker count than
//!    the killed run, so the grid also witnesses worker-count invariance;
//! 3. tears the write-ahead log of one killed session (a half-written
//!    frame, as a mid-`write` crash would leave) and shows resume recovers
//!    from the longest valid prefix, re-evaluating what the tail lost;
//! 4. runs a [`SessionSupervisor`](pstack_faults::SessionSupervisor) under
//!    the catalog's `process_kill_only` plan and shows the supervised
//!    session survives every injected kill within its restart budget,
//!    again byte-identical to the uninterrupted baseline.
//!
//! Expected shape: every cell of the kill grid recovers identically —
//! `identical == kill_points.len()` on every row — and the supervisor's
//! recovery log accounts for at least one kill.

use crate::cotune::KernelCoTune;
use crate::interfaces::Objective;
use pstack_autotune::{
    AnnealingSearch, ForestSearch, HillClimbSearch, RandomSearch, Robustness, TuneError,
    TuneReport, Tuner,
};
use pstack_ckpt::{ScratchDir, SessionDir};
use pstack_faults::{FaultPlan, FaultyEvaluator, SessionSupervisor};
use serde::{Deserialize, Serialize};
use std::io::Write;

/// One driver arm's kill grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeArmRow {
    /// Driver arm: `serial`, `serial_resilient`, `parallel`,
    /// `parallel_resilient`.
    pub arm: String,
    /// Primary search algorithm.
    pub algorithm: String,
    /// Worker count of the killed runs (0 = serial driver).
    pub workers: usize,
    /// Worker count the resumed runs used (0 = serial driver); differs
    /// from `workers` on parallel arms to witness worker invariance.
    pub resume_workers: usize,
    /// Evaluations in the uninterrupted baseline.
    pub evals: usize,
    /// Distinct kill ordinals exercised (one per decile of the budget).
    pub kill_points: Vec<usize>,
    /// Kill points whose resumed report was byte-identical to baseline.
    pub identical: usize,
}

/// The torn-tail recovery demonstration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TornTailRow {
    /// Arm the torn session ran under.
    pub arm: String,
    /// Ordinal the session was killed at before the tear.
    pub killed_at: usize,
    /// Bytes of garbage (a half-written frame) appended to the WAL.
    pub torn_bytes: usize,
    /// Whether resume recovered a byte-identical report anyway.
    pub identical: bool,
}

/// The supervised-session demonstration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedRow {
    /// Fault plan driving the kills.
    pub plan: String,
    /// Kills injected (== restarts performed).
    pub kills: usize,
    /// Restart budget the supervisor ran under.
    pub max_restarts: usize,
    /// Whether the supervised report was byte-identical to baseline.
    pub identical: bool,
}

/// Full E7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeResult {
    /// Evaluation budget per run.
    pub max_evals: usize,
    /// Root seed.
    pub seed: u64,
    /// Snapshot cadence (evaluations between full snapshots).
    pub snapshot_every: usize,
    /// One row per (arm, worker-count) cell.
    pub rows: Vec<ResumeArmRow>,
    /// Torn-WAL recovery demonstration.
    pub torn_tail: TornTailRow,
    /// Supervised-session demonstration.
    pub supervised: SupervisedRow,
}

/// Robustness calibrated like E6's: the kernel EDP objective's honest
/// spread would trip the default outlier thresholds.
fn robustness() -> Robustness {
    Robustness {
        outlier_factor: 100.0,
        poison_fraction: 0.3,
        ..Robustness::default()
    }
}

/// The four driver arms of the kill grid.
#[derive(Clone, Copy)]
enum Arm {
    Serial,
    SerialResilient,
    Parallel { workers: usize },
    ParallelResilient { workers: usize },
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Serial => "serial",
            Arm::SerialResilient => "serial_resilient",
            Arm::Parallel { .. } => "parallel",
            Arm::ParallelResilient { .. } => "parallel_resilient",
        }
    }

    fn algorithm(self) -> &'static str {
        match self {
            Arm::Serial => "anneal",
            Arm::SerialResilient => "hillclimb",
            Arm::Parallel { .. } => "random",
            Arm::ParallelResilient { .. } => "forest",
        }
    }

    fn workers(self) -> usize {
        match self {
            Arm::Serial | Arm::SerialResilient => 0,
            Arm::Parallel { workers } | Arm::ParallelResilient { workers } => workers,
        }
    }

    /// A different worker count for resumes: recovery must not depend on
    /// the pool size of the incarnation that died.
    fn resume_workers(self) -> usize {
        match self.workers() {
            0 => 0,
            1 => 4,
            4 => 8,
            _ => 1,
        }
    }
}

/// Drive `arm` on `tuner` to completion, with fresh algorithm state.
/// `resume` selects the matching `resume_*` entry point.
fn drive(
    arm: Arm,
    tuner: &Tuner,
    ct: &KernelCoTune,
    seed: u64,
    resume: bool,
) -> Result<TuneReport, TuneError> {
    // Resilient arms tune through an evals-only fault plan, so the WAL
    // carries real retry/quarantine events, not just clean objectives.
    let faulty = FaultyEvaluator::new(
        |space: &pstack_autotune::ParamSpace, cfg: &pstack_autotune::Config| {
            ct.evaluate(space, cfg)
        },
        &FaultPlan::evals_only(),
        seed ^ 0xE7,
    );
    let clean = |space: &pstack_autotune::ParamSpace, cfg: &pstack_autotune::Config| {
        ct.evaluate(space, cfg)
    };
    match arm {
        Arm::Serial => {
            let mut algo = AnnealingSearch::default_schedule();
            if resume {
                tuner.resume(&mut algo, clean)
            } else {
                tuner.run(&mut algo, clean)
            }
        }
        Arm::SerialResilient => {
            let mut algo = HillClimbSearch::new();
            let eval = |s: &_, c: &_, a: usize| faulty.evaluate(s, c, a);
            if resume {
                tuner.resume_resilient(&mut algo, None, eval)
            } else {
                tuner.run_resilient(&mut algo, None, &robustness(), eval)
            }
        }
        Arm::Parallel { workers } => {
            let mut algo = RandomSearch::new();
            let w = if resume {
                arm.resume_workers()
            } else {
                workers
            };
            if resume {
                tuner.resume_parallel(&mut algo, w, clean)
            } else {
                tuner.run_parallel(&mut algo, w, clean)
            }
        }
        Arm::ParallelResilient { workers } => {
            let mut algo = ForestSearch::new();
            let mut fb = RandomSearch::new();
            let eval = |s: &_, c: &_, a: usize| faulty.evaluate(s, c, a);
            let w = if resume {
                arm.resume_workers()
            } else {
                workers
            };
            if resume {
                tuner.resume_parallel_resilient(&mut algo, Some(&mut fb), w, eval)
            } else {
                tuner.run_parallel_resilient(&mut algo, Some(&mut fb), &robustness(), w, eval)
            }
        }
    }
}

/// Kill ordinals at every decile of an `evals`-long session, deduplicated.
fn decile_kill_points(evals: usize) -> Vec<usize> {
    let mut points: Vec<usize> = (1..=10)
        .map(|k| (evals * k / 10).max(1).min(evals) - 1)
        .collect();
    points.dedup();
    points
}

/// Kill `arm` at `kill_at`, resume it, and return the resumed report.
/// Panics if the interrupt never fired (the grid guarantees it must).
fn kill_and_resume(
    arm: Arm,
    base: &Tuner,
    ct: &KernelCoTune,
    seed: u64,
    snapshot_every: usize,
    kill_at: usize,
) -> (ScratchDir, Result<TuneReport, TuneError>) {
    let scratch = ScratchDir::new(&format!("e7-{}-{}", arm.name(), kill_at));
    let armed = base
        .clone()
        .checkpoint(scratch.path())
        .snapshot_every(snapshot_every)
        .interrupt_when(move |ordinal| ordinal == kill_at);
    match drive(arm, &armed, ct, seed, false) {
        Err(TuneError::Interrupted { .. }) => {}
        Ok(_) => panic!("kill at ordinal {kill_at} never fired for {}", arm.name()),
        Err(e) => return (scratch, Err(e)),
    }
    let resumer = base
        .clone()
        .checkpoint(scratch.path())
        .snapshot_every(snapshot_every);
    let report = drive(arm, &resumer, ct, seed, true);
    (scratch, report)
}

/// Run the full kill/resume grid.
///
/// # Errors
/// Propagates any [`TuneError`] a baseline, killed, or resumed run
/// surfaces (the grid itself treats a non-firing kill or a failed
/// supervised session as a panic — those are broken invariants, not
/// recoverable outcomes).
pub fn run(max_evals: usize, seed: u64) -> Result<ResumeResult, TuneError> {
    let snapshot_every = 5;
    let ct = KernelCoTune::new(Objective::MinEdp);
    let base = Tuner::new(ct.space()).max_evals(max_evals).seed(seed);

    let arms = [
        Arm::Serial,
        Arm::SerialResilient,
        Arm::Parallel { workers: 1 },
        Arm::Parallel { workers: 4 },
        Arm::Parallel { workers: 8 },
        Arm::ParallelResilient { workers: 1 },
        Arm::ParallelResilient { workers: 4 },
        Arm::ParallelResilient { workers: 8 },
    ];

    let mut rows = Vec::with_capacity(arms.len());
    for &arm in &arms {
        let baseline = drive(arm, &base, &ct, seed, false)?;
        let baseline_json = serde_json::to_string(&baseline).expect("serialize baseline");
        let kill_points = decile_kill_points(baseline.evals);
        let mut identical = 0;
        for &kill_at in &kill_points {
            let (_scratch, resumed) =
                kill_and_resume(arm, &base, &ct, seed, snapshot_every, kill_at);
            let resumed = resumed?;
            if serde_json::to_string(&resumed).expect("serialize resumed") == baseline_json {
                identical += 1;
            }
        }
        rows.push(ResumeArmRow {
            arm: arm.name().to_string(),
            algorithm: arm.algorithm().to_string(),
            workers: arm.workers(),
            resume_workers: arm.resume_workers(),
            evals: baseline.evals,
            kill_points: kill_points.clone(),
            identical,
        });
    }

    // Torn tail: kill the serial arm mid-run, then append a half-written
    // frame to the WAL — exactly what a crash inside `write(2)` leaves.
    // Resume must truncate the torn frame and recover from the longest
    // valid prefix; everything the tear lost is simply re-evaluated.
    let torn_tail = {
        let arm = Arm::Serial;
        let baseline = drive(arm, &base, &ct, seed, false)?;
        let baseline_json = serde_json::to_string(&baseline).expect("serialize baseline");
        let killed_at = (baseline.evals / 2).max(1) - 1;
        let scratch = ScratchDir::new("e7-torn");
        let armed = base
            .clone()
            .checkpoint(scratch.path())
            .snapshot_every(snapshot_every)
            .interrupt_when(move |ordinal| ordinal == killed_at);
        match drive(arm, &armed, &ct, seed, false) {
            Err(TuneError::Interrupted { .. }) => {}
            other => panic!("expected interrupt, got {other:?}"),
        }
        let wal = SessionDir::new(scratch.path())
            .expect("session dir")
            .wal_path();
        let torn_bytes = 7usize;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal)
            .expect("open WAL for tearing");
        f.write_all(&[0xAB; 7]).expect("append torn frame");
        drop(f);
        let resumer = base
            .clone()
            .checkpoint(scratch.path())
            .snapshot_every(snapshot_every);
        let resumed = drive(arm, &resumer, &ct, seed, true)?;
        TornTailRow {
            arm: arm.name().to_string(),
            killed_at,
            torn_bytes,
            identical: serde_json::to_string(&resumed).expect("serialize") == baseline_json,
        }
    };

    // Supervised session: the catalog's process_kill_only plan kills the
    // serial driver mid-run (possibly repeatedly); the supervisor restarts
    // it from the checkpoint each time and the final report still matches
    // the uninterrupted baseline byte-for-byte.
    let supervised = {
        let baseline = drive(Arm::Serial, &base, &ct, seed, false)?;
        let baseline_json = serde_json::to_string(&baseline).expect("serialize baseline");
        let scratch = ScratchDir::new("e7-supervised");
        let tuner = base
            .clone()
            .checkpoint(scratch.path())
            .snapshot_every(snapshot_every);
        let plan = FaultPlan::process_kill_only();
        let sup = SessionSupervisor::new(plan.clone(), seed ^ 0x50F7);
        let out = sup
            .run(&tuner, &mut AnnealingSearch::default_schedule(), |s, c| {
                ct.evaluate(s, c)
            })
            .map_err(|e| TuneError::Checkpoint {
                detail: format!("supervised arm: {e}"),
            })?;
        SupervisedRow {
            plan: plan.name.clone(),
            kills: out.recovery.events.len(),
            max_restarts: out.recovery.max_restarts,
            identical: serde_json::to_string(&out.report).expect("serialize") == baseline_json,
        }
    };

    Ok(ResumeResult {
        max_evals,
        seed,
        snapshot_every,
        rows,
        torn_tail,
        supervised,
    })
}

/// Default full-scale run.
///
/// # Errors
/// As [`run`].
pub fn run_default() -> Result<ResumeResult, TuneError> {
    run(30, 20200913)
}

/// Render the recovery grid.
pub fn render(r: &ResumeResult) -> String {
    let mut out = format!(
        "EXTENSION E7 / CRASH-SAFE SESSIONS: {} evals, snapshot every {}, seed {}\n\
         arm                 | algorithm | workers | resume_w | evals | kill points | identical\n",
        r.max_evals, r.snapshot_every, r.seed
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:<19} | {:<9} | {:>7} | {:>8} | {:>5} | {:>11} | {:>6}/{}\n",
            row.arm,
            row.algorithm,
            row.workers,
            row.resume_workers,
            row.evals,
            row.kill_points.len(),
            row.identical,
            row.kill_points.len(),
        ));
    }
    out.push_str(&format!(
        "torn tail: {} killed@{} +{}B garbage -> {}\n",
        r.torn_tail.arm,
        r.torn_tail.killed_at,
        r.torn_tail.torn_bytes,
        if r.torn_tail.identical {
            "recovered identical"
        } else {
            "MISMATCH"
        },
    ));
    out.push_str(&format!(
        "supervised: plan {} survived {} kill(s) within budget {} -> {}\n",
        r.supervised.plan,
        r.supervised.kills,
        r.supervised.max_restarts,
        if r.supervised.identical {
            "identical"
        } else {
            "MISMATCH"
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ResumeResult {
        run(12, 7).expect("small E7 grid completes")
    }

    #[test]
    fn every_kill_point_recovers_identically() {
        let r = small();
        assert_eq!(r.rows.len(), 8);
        for row in &r.rows {
            assert!(!row.kill_points.is_empty(), "{} tested nothing", row.arm);
            assert_eq!(
                row.identical,
                row.kill_points.len(),
                "{} (workers {}) recovered only {}/{} kill points identically",
                row.arm,
                row.workers,
                row.identical,
                row.kill_points.len(),
            );
        }
    }

    #[test]
    fn torn_wal_recovers_from_longest_valid_prefix() {
        let r = small();
        assert!(r.torn_tail.identical, "torn-tail resume diverged");
    }

    #[test]
    fn supervised_session_survives_and_matches() {
        let r = small();
        assert!(r.supervised.identical, "supervised report diverged");
        assert!(
            r.supervised.kills <= r.supervised.max_restarts,
            "supervisor exceeded its budget"
        );
    }

    #[test]
    fn grid_is_deterministic() {
        let a = serde_json::to_string(&small()).expect("serialize");
        let b = serde_json::to_string(&small()).expect("serialize");
        assert_eq!(a, b);
    }
}
