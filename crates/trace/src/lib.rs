//! `pstack-trace`: structured tracing and self-profiling for the framework.
//!
//! This crate answers "what did the *framework* do and where did it spend
//! its time" — it is deliberately distinct from `pstack-telemetry`, which
//! models the paper's §2.2 *in-world* sensors (power, energy, thermals of
//! the simulated machine). A tuning run both simulates telemetry *and* can
//! be traced; only the former is part of an experiment's result.
//!
//! The pieces:
//!
//! - [`Span`] / [`Event`] — the data model: stable ids, parent links,
//!   monotonic + wall-clock timestamps, typed attributes;
//! - [`TraceCollector`] — a bounded, lock-cheap ring-buffer sink; span
//!   guards accumulate locally and flush with one lock at close;
//! - [`export`] — human-readable tree ([`render_tree`]), lossless JSON
//!   Lines ([`to_jsonl`]/[`from_jsonl`]), and Chrome `trace_event` JSON
//!   ([`to_chrome`]/[`from_chrome`]) that opens in `chrome://tracing` or
//!   Perfetto;
//! - [`ProfileSummary`] / [`ProfileBuilder`] — per-stage count / total /
//!   mean / p95 timing with cache and retry attribution, embedded in
//!   `TuneReport` by `pstack-autotune`;
//! - the `pstack_trace` binary — render, summarize, and diff trace files.
//!
//! Zero dependencies (not even the vendored stand-ins): every crate in the
//! workspace can depend on it without cycles, and the exporters carry their
//! own minimal JSON codec ([`json`]).
//!
//! # Example
//!
//! ```
//! use pstack_trace::{render_tree, to_chrome, TraceCollector};
//!
//! let collector = TraceCollector::new();
//! {
//!     let mut run = collector.span("tuner.run");
//!     run.attr("algorithm", "random");
//!     let mut eval = run.child("eval");
//!     eval.attr("worker", 0usize);
//!     eval.event("cache_hit");
//! }
//! let trace = collector.snapshot();
//! assert_eq!(trace.len(), 2);
//! assert!(render_tree(&trace).contains("tuner.run"));
//! assert!(to_chrome(&trace).starts_with("{\"traceEvents\""));
//! ```

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod collector;
pub mod export;
pub mod json;
pub mod profile;
pub mod span;

pub use collector::{SpanGuard, Trace, TraceCollector};
pub use export::{
    from_any, from_chrome, from_jsonl, render_tree, to_chrome, to_jsonl, JSONL_VERSION,
};
pub use profile::{ProfileBuilder, ProfileSummary, StageStats};
pub use span::{hash64, AttrValue, Event, Span, SpanId};
