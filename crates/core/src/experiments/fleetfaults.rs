//! Extension E11 — fleet chaos: recovery SLOs under injected RM-class faults.
//!
//! Extension E10 scaled the paper's experiments to a multi-enclave site and
//! assumed the site cooperates: nodes stay up, enclaves stay reachable, cap
//! writes land, jobs finish. This experiment drops those assumptions. A
//! [`FleetFaultPlan`] (node MTBF crash/reboot schedules, whole-enclave
//! outages with bit-exact budget re-sharding, stuck cap actuators, job
//! failures with capped retries, telemetry dropouts) is injected into the
//! event heap as ordinary time-ordered events, and the grid asserts the
//! recovery SLOs the framework promises:
//!
//! 1. **No panics** — every arm drains to completion.
//! 2. **Byte-identical replay** — the same seeded chaos run produces the
//!    same [`fleet_fingerprint`] at 1/2/4/8 drain workers.
//! 3. **Completion** — ≥95% of non-failed jobs complete despite the faults.
//! 4. **Power** — site draw never sustains above the budget: no two
//!    consecutive 30 s windows over `budget × (1 + tolerance)` (one window
//!    of overshoot is the allowed "one control quantum" settle).
//! 5. **Conservation** — `submitted == completed + failed + rejected`; no
//!    job is lost or double-counted across requeues and enclave rejoins.
//! 6. **Recovery** — every MTBF-failed node is back up at drain end.
//!
//! `results/ext_fleetfaults.*` renders the grid; `bench_fleetfaults` gates
//! CI on the SLOs.

use crate::experiments::fleet::FleetScenario;
use crate::framework::TuningLevel;
use pstack_ckpt::{ScratchDir, SessionDir};
use pstack_faults::SupervisorConfig;
use pstack_faults::{fleet_fingerprint, FleetFaultPlan, FleetInjector, FleetSupervisor};
use pstack_rm::scheduler::EmergencyResponse;
use pstack_rm::EnclaveSet;
use pstack_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Fraction above the site budget a single 30 s window may read before it
/// counts as overshoot. Caps enforce over an averaging window, not
/// instantaneously, so transient reads run ~1–2% hot while the integrator
/// settles; an *uncompensated* violation (e.g. a stuck actuator nobody
/// re-plans around) sits 5%+ over and is still caught.
pub const POWER_SLO_TOLERANCE: f64 = 0.03;

/// Completion SLO: fraction of non-failed jobs that must complete.
pub const COMPLETION_SLO: f64 = 0.95;

/// Worker counts the replay-invariance SLO sweeps.
pub const REPLAY_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Sampling window for the power SLO, seconds.
pub const POWER_WINDOW_S: u64 = 30;

/// One chaos configuration: a fleet plus a fault plan injected into it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosScenario {
    /// The underlying fleet (enclaves, jobs, budget, tuning level).
    pub fleet: FleetScenario,
    /// The fault plan injected over the fleet's horizon.
    pub plan: FleetFaultPlan,
    /// Seed for the fault dice (independent of the fleet seed so the same
    /// workload can be replayed under different chaos draws).
    pub fault_seed: u64,
}

impl ChaosScenario {
    /// The canonical small grid cell: E10's small fleet under a 65% budget.
    pub fn small(tuning: TuningLevel, plan: FleetFaultPlan) -> Self {
        ChaosScenario {
            fleet: FleetScenario::small(tuning, Some(0.65)),
            plan,
            fault_seed: 0xF1EE7,
        }
    }

    fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.fleet.horizon_hours * 3600)
    }

    fn site_budget_w(&self) -> Option<f64> {
        self.fleet
            .site_budget_frac
            .map(|f| self.fleet.site_peak_w() * f)
    }

    /// Build the fleet and inject the fault plan into its event heaps.
    pub fn build(&self) -> EnclaveSet {
        let mut site = self.fleet.build();
        let job_ids: Vec<u64> = (0..self.fleet.n_jobs as u64).collect();
        FleetInjector::new(self.plan.clone(), self.fault_seed).inject(
            &mut site,
            self.horizon(),
            self.site_budget_w(),
            EmergencyResponse::TightenCaps,
            &job_ids,
        );
        site
    }

    /// Run the full SLO battery for this cell: a windowed power-sampling
    /// drain, then fresh replays at each worker count for the
    /// byte-identity SLO.
    pub fn run(&self) -> ChaosResult {
        let quantum = SimDuration::from_secs(1);
        let horizon = self.horizon();
        let budget_w = self.site_budget_w();

        // Windowed drain: advance in POWER_WINDOW_S slices sampling site
        // power, then drain whatever is left past the horizon.
        let mut site = self.build();
        let mut overshoot_windows = 0usize;
        let mut consecutive = 0usize;
        let mut max_consecutive = 0usize;
        let mut power_windows = 0usize;
        let mut peak_power_w = 0.0f64;
        let window = SimDuration::from_secs(POWER_WINDOW_S);
        let mut t = SimTime::ZERO;
        while t < horizon {
            t = (t + window).min(horizon);
            site.run_until(quantum, t);
            let p: f64 = site
                .enclaves_mut()
                .iter_mut()
                .map(|e| e.scheduler_mut().system_power_w())
                .sum();
            peak_power_w = peak_power_w.max(p);
            power_windows += 1;
            let over = match budget_w {
                Some(b) => p > b * (1.0 + POWER_SLO_TOLERANCE),
                None => false,
            };
            if over {
                overshoot_windows += 1;
                consecutive += 1;
                max_consecutive = max_consecutive.max(consecutive);
            } else {
                consecutive = 0;
            }
        }
        site.run_until_drained(quantum, horizon);
        // The drain stops at the last completion; reboots and budget
        // restores scheduled after it are still pending. The site keeps
        // operating, so replay that tail before judging recovery.
        site.flush_events_until(horizon);
        let m = site.site_metrics();

        // Conservation and completion SLOs from the windowed run.
        let conservation_ok = m.submitted == m.completed + m.failed + m.rejected;
        let non_failed = m.submitted.saturating_sub(m.failed);
        let completion_rate = if non_failed > 0 {
            m.completed as f64 / non_failed as f64
        } else {
            1.0
        };

        // Replay SLO: fresh builds drained at each worker count must land
        // on one fingerprint (replay-vs-replay; the windowed run above
        // samples power mid-drain and is not the comparison baseline).
        let mut replay_fingerprints = Vec::new();
        for &workers in &REPLAY_WORKERS {
            let mut replay = self.build();
            replay.run_until_drained_parallel(quantum, horizon, workers);
            replay.flush_events_until(horizon);
            replay_fingerprints.push(format!("{:016x}", fleet_fingerprint(&mut replay)));
        }
        let replay_identical = replay_fingerprints.windows(2).all(|w| w[0] == w[1]);

        ChaosResult {
            plan: self.plan.name.clone(),
            fault_classes: self.plan.active_classes(),
            tuning: self.fleet.tuning,
            submitted: m.submitted,
            completed: m.completed,
            failed: m.failed,
            rejected: m.rejected,
            conservation_ok,
            completion_rate,
            slo_completion_ok: completion_rate >= COMPLETION_SLO,
            power_windows,
            overshoot_windows,
            max_consecutive_overshoot: max_consecutive,
            peak_power_w,
            site_budget_w: budget_w,
            slo_power_ok: max_consecutive < 2,
            replay_workers: REPLAY_WORKERS.to_vec(),
            replay_fingerprints,
            replay_identical,
            down_nodes_at_end: m.down_nodes,
            telemetry_dropouts: m.telemetry_dropouts,
            events_processed: m.events_processed,
            energy_j: m.system_energy_j,
        }
    }
}

/// One grid cell's SLO verdicts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Fault plan name.
    pub plan: String,
    /// Active fault classes in the plan.
    pub fault_classes: usize,
    /// Tuning level of the underlying fleet.
    pub tuning: TuningLevel,
    /// Jobs submitted site-wide.
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs that exhausted their retry budget.
    pub failed: usize,
    /// Jobs rejected as permanently infeasible.
    pub rejected: usize,
    /// `submitted == completed + failed + rejected`.
    pub conservation_ok: bool,
    /// `completed / (submitted - failed)`.
    pub completion_rate: f64,
    /// Completion SLO (≥ [`COMPLETION_SLO`]) verdict.
    pub slo_completion_ok: bool,
    /// Power windows sampled.
    pub power_windows: usize,
    /// Windows reading over budget × (1 + tolerance).
    pub overshoot_windows: usize,
    /// Longest run of consecutive overshoot windows.
    pub max_consecutive_overshoot: usize,
    /// Highest sampled site power, watts.
    pub peak_power_w: f64,
    /// Site budget, watts (`None` = uncapped, power SLO vacuous).
    pub site_budget_w: Option<f64>,
    /// Power SLO verdict: at most one consecutive overshoot window.
    pub slo_power_ok: bool,
    /// Worker counts swept for the replay SLO.
    pub replay_workers: Vec<usize>,
    /// Hex fleet fingerprint per worker count.
    pub replay_fingerprints: Vec<String>,
    /// All replay fingerprints equal.
    pub replay_identical: bool,
    /// Nodes still down after the drain (recovery SLO wants 0).
    pub down_nodes_at_end: usize,
    /// Telemetry windows suppressed by dropout faults.
    pub telemetry_dropouts: u64,
    /// Events processed by the windowed run.
    pub events_processed: u64,
    /// Site energy of the windowed run, joules.
    pub energy_j: f64,
}

impl ChaosResult {
    /// All recovery SLOs hold for this cell.
    pub fn slo_ok(&self) -> bool {
        self.conservation_ok
            && self.slo_completion_ok
            && self.slo_power_ok
            && self.replay_identical
            && self.down_nodes_at_end == 0
    }

    /// Human-readable list of violated SLOs (empty when green).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.conservation_ok {
            v.push(format!(
                "conservation: {} submitted != {} completed + {} failed + {} rejected",
                self.submitted, self.completed, self.failed, self.rejected
            ));
        }
        if !self.slo_completion_ok {
            v.push(format!(
                "completion: {:.1}% of non-failed jobs < {:.0}% SLO",
                100.0 * self.completion_rate,
                100.0 * COMPLETION_SLO
            ));
        }
        if !self.slo_power_ok {
            v.push(format!(
                "power: {} consecutive overshoot windows (budget {:?} W, peak {:.0} W)",
                self.max_consecutive_overshoot, self.site_budget_w, self.peak_power_w
            ));
        }
        if !self.replay_identical {
            v.push(format!(
                "replay: fingerprints diverge across workers {:?}: {:?}",
                self.replay_workers, self.replay_fingerprints
            ));
        }
        if self.down_nodes_at_end != 0 {
            v.push(format!(
                "recovery: {} nodes still down at drain end",
                self.down_nodes_at_end
            ));
        }
        v
    }
}

/// The E11 grid: fault plans × tuning levels over one workload trace.
pub fn run_grid(plans: &[FleetFaultPlan], tunings: &[TuningLevel]) -> Vec<ChaosResult> {
    let mut rows = Vec::new();
    for plan in plans {
        for &tuning in tunings {
            rows.push(ChaosScenario::small(tuning, plan.clone()).run());
        }
    }
    rows
}

/// The shipped grid: {none, node MTBF, mixed} × {NodeOnly, EndToEnd}.
pub fn shipped_grid() -> Vec<ChaosResult> {
    run_grid(
        &[
            FleetFaultPlan::none(),
            FleetFaultPlan::node_mtbf_only(),
            FleetFaultPlan::mixed(),
        ],
        &[TuningLevel::NodeOnly, TuningLevel::EndToEnd],
    )
}

/// Checkpointed-supervisor equivalence: the same chaos cell driven by a
/// [`FleetSupervisor`] under rolling kills must land on the same fleet
/// fingerprint as an unkilled supervised run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedCheck {
    /// Fingerprint of the kill-free supervised run.
    pub clean_fingerprint: String,
    /// Fingerprint of the killed-and-restarted run.
    pub killed_fingerprint: String,
    /// Restarts the killed run needed.
    pub restarts: usize,
    /// Both runs landed on the same fleet state.
    pub identical: bool,
}

/// Run the supervised-recovery check for one chaos cell.
///
/// # Panics
/// Panics if either supervised run fails (restart budget, stall, replay
/// divergence) — the experiment treats those as SLO violations, not data.
pub fn supervised_recovery_check(scenario: &ChaosScenario, kill_prob: f64) -> SupervisedCheck {
    let quantum = SimDuration::from_secs(1);
    let horizon = SimTime::from_secs(scenario.fleet.horizon_hours * 3600);
    let slices = 6;
    let config = SupervisorConfig {
        max_restarts: 24,
        stall_limit: 8,
    };

    let scratch = ScratchDir::new("e11-supervised-clean");
    let dir = SessionDir::new(scratch.path().join("s")).expect("scratch session dir must open");
    let clean = FleetSupervisor::new(config, scenario.fault_seed, 0.0)
        .run(&dir, || scenario.build(), quantum, horizon, slices)
        .expect("kill-free supervised run must complete");

    let scratch = ScratchDir::new("e11-supervised-killed");
    let dir = SessionDir::new(scratch.path().join("s")).expect("scratch session dir must open");
    let killed = FleetSupervisor::new(config, scenario.fault_seed, kill_prob)
        .run(&dir, || scenario.build(), quantum, horizon, slices)
        .expect("killed supervised run must recover within its budget");

    SupervisedCheck {
        clean_fingerprint: format!("{:016x}", clean.fingerprint),
        killed_fingerprint: format!("{:016x}", killed.fingerprint),
        restarts: killed.recovery.events.len(),
        identical: clean.fingerprint == killed.fingerprint,
    }
}

/// Render chaos rows as the E11 table.
pub fn render(rows: &[ChaosResult]) -> String {
    let mut out = String::from(
        "EXTENSION E11 / FLEET CHAOS: recovery SLOs under injected RM faults\n\
         plan           | tuning    | done/subm | fail | rej | rate  | over | replay | SLO\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} | {:<9} | {:>4}/{:<4} | {:>4} | {:>3} | {:>4.1}% | {:>2}/{:<3} | {:<6} | {}\n",
            r.plan,
            format!("{:?}", r.tuning),
            r.completed,
            r.submitted,
            r.failed,
            r.rejected,
            100.0 * r.completion_rate,
            r.overshoot_windows,
            r.power_windows,
            if r.replay_identical { "exact" } else { "DIFF" },
            if r.slo_ok() { "ok" } else { "VIOLATED" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shrink(mut sc: ChaosScenario) -> ChaosScenario {
        // Reduced-scale cell for unit tests: fewer jobs, shorter horizon,
        // faults rescaled so every class still fires inside the window.
        sc.fleet.n_jobs = 10;
        sc.fleet.horizon_hours = 6;
        if sc.plan.nodes.mtbf_hours > 0.0 {
            sc.plan.nodes.mtbf_hours = 2.0;
            sc.plan.nodes.mttr_minutes = 10.0;
        }
        for o in &mut sc.plan.outages {
            o.at_s = 3600.0;
            o.duration_s = 900.0;
        }
        sc
    }

    #[test]
    fn fault_free_cell_is_green_and_loses_nothing() {
        let r = shrink(ChaosScenario::small(
            TuningLevel::NodeOnly,
            FleetFaultPlan::none(),
        ))
        .run();
        assert!(r.slo_ok(), "violations: {:?}", r.violations());
        assert_eq!(r.failed, 0);
        assert_eq!(r.completed, r.submitted, "{r:?}");
        assert_eq!(r.fault_classes, 0);
    }

    #[test]
    fn mixed_chaos_cell_meets_recovery_slos() {
        let r = shrink(ChaosScenario::small(
            TuningLevel::EndToEnd,
            FleetFaultPlan::mixed(),
        ))
        .run();
        assert!(r.slo_ok(), "violations: {:?}", r.violations());
        assert!(r.fault_classes >= 4, "mixed plan must stay mixed");
        // The chaos actually happened: fault events flowed through the heap.
        assert!(r.events_processed > 0);
    }

    #[test]
    fn replay_fingerprints_are_byte_identical_across_workers() {
        let r = shrink(ChaosScenario::small(
            TuningLevel::NodeOnly,
            FleetFaultPlan::node_mtbf_only(),
        ))
        .run();
        assert!(
            r.replay_identical,
            "fingerprints: {:?}",
            r.replay_fingerprints
        );
        assert_eq!(r.replay_fingerprints.len(), REPLAY_WORKERS.len());
        // And the fingerprint is chaos-sensitive: a different fault seed
        // lands elsewhere.
        let mut other = shrink(ChaosScenario::small(
            TuningLevel::NodeOnly,
            FleetFaultPlan::node_mtbf_only(),
        ));
        other.fault_seed ^= 0xDEAD;
        let o = other.run();
        assert_ne!(
            o.replay_fingerprints[0], r.replay_fingerprints[0],
            "different chaos draws must not collide"
        );
    }

    #[test]
    fn violations_list_names_every_broken_slo() {
        let mut r = shrink(ChaosScenario::small(
            TuningLevel::NodeOnly,
            FleetFaultPlan::none(),
        ))
        .run();
        assert!(r.violations().is_empty());
        r.conservation_ok = false;
        r.slo_power_ok = false;
        r.max_consecutive_overshoot = 3;
        r.down_nodes_at_end = 2;
        let v = r.violations();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(!r.slo_ok());
    }

    #[test]
    fn supervised_chaos_run_matches_unkilled_run() {
        let sc = shrink(ChaosScenario::small(
            TuningLevel::NodeOnly,
            FleetFaultPlan::node_mtbf_only(),
        ));
        let check = supervised_recovery_check(&sc, 0.3);
        assert!(
            check.identical,
            "clean {} vs killed {}",
            check.clean_fingerprint, check.killed_fingerprint
        );
    }

    #[test]
    fn grid_renders_every_cell() {
        let rows = run_grid(
            &[FleetFaultPlan::none()],
            &[TuningLevel::NodeOnly, TuningLevel::EndToEnd],
        );
        // Full-size cells here (the grid is what the bench bin ships), so
        // just check shape and rendering, not timing.
        assert_eq!(rows.len(), 2);
        let table = render(&rows);
        assert!(table.contains("E11"));
        assert!(table.contains("none"));
    }
}
