//! Conductor-like runtime (§3.2.1).
//!
//! Conductor (Marathe et al., ISC'15) runs power-constrained jobs in two
//! stages: an **exploration** stage that measures candidate configurations
//! on-line, and a **steady** stage that picks the most efficient
//! configuration and thereafter *reallocates power between ranks* — slack
//! ranks donate budget to critical-path ranks. The paper's use case tunes
//! "the granularity and efficiency of its power-balancing algorithm under
//! the assigned job-level power limit"; both are exposed as knobs here.

use crate::agent::{ArbitratedNodes, JobTelemetry, KnobKind, RuntimeAgent};
use pstack_node::Signal;
use pstack_sim::{SimDuration, SimTime};

/// Tunable Conductor parameters (the §3.2.1 runtime-layer knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct ConductorConfig {
    /// Job-level power budget, watts (from the RM).
    pub job_budget_w: f64,
    /// Candidate frequency ceilings explored on-line, GHz.
    pub candidates_ghz: Vec<f64>,
    /// Control ticks spent measuring each candidate.
    pub explore_ticks_per_candidate: usize,
    /// Watts moved per rebalancing step (the "granularity" knob).
    pub shift_step_w: f64,
    /// Control period (the "efficiency" / reaction-time knob).
    pub period: SimDuration,
}

impl ConductorConfig {
    /// Defaults: five candidates, 3 ticks each, 5 W shifts at 500 ms.
    pub fn with_budget(job_budget_w: f64) -> Self {
        ConductorConfig {
            job_budget_w,
            candidates_ghz: vec![1.5, 2.0, 2.5, 3.0, 3.5],
            explore_ticks_per_candidate: 3,
            shift_step_w: 5.0,
            period: SimDuration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    Exploring { candidate: usize, tick: usize },
    Steady,
}

/// Measurement for one candidate frequency.
#[derive(Debug, Clone, Copy, Default)]
struct Measurement {
    work: f64,
    energy_j: f64,
}

/// The Conductor runtime agent.
#[derive(Debug)]
pub struct Conductor {
    cfg: ConductorConfig,
    stage: Stage,
    measurements: Vec<Measurement>,
    /// Snapshot at the start of the current candidate's window.
    window_start: Option<(Vec<f64>, Vec<f64>)>, // (progress, energy)
    /// Steady-stage per-node caps.
    caps_w: Vec<f64>,
    last_wait_s: Vec<f64>,
    chosen_ghz: Option<f64>,
}

impl Conductor {
    /// Per-node power floor, watts.
    pub const MIN_NODE_CAP_W: f64 = 120.0;

    /// Create with a configuration.
    pub fn new(cfg: ConductorConfig) -> Self {
        assert!(!cfg.candidates_ghz.is_empty(), "need candidates");
        assert!(cfg.job_budget_w > 0.0, "budget must be positive");
        let n_cand = cfg.candidates_ghz.len();
        Conductor {
            cfg,
            stage: Stage::Exploring {
                candidate: 0,
                tick: 0,
            },
            measurements: vec![Measurement::default(); n_cand],
            window_start: None,
            caps_w: Vec::new(),
            last_wait_s: Vec::new(),
            chosen_ghz: None,
        }
    }

    /// The frequency chosen after exploration (None while exploring).
    pub fn chosen_ghz(&self) -> Option<f64> {
        self.chosen_ghz
    }

    /// Whether exploration has finished.
    pub fn is_steady(&self) -> bool {
        self.stage == Stage::Steady
    }

    fn finish_exploration(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        // Pick the candidate with the best work per joule (power efficiency
        // under the budget is what §3.2.1 optimizes: IPC/watt ≈ work/J here).
        let best = self
            .measurements
            .iter()
            .enumerate()
            .filter(|(_, m)| m.energy_j > 0.0)
            .max_by(|a, b| {
                let ea = a.1.work / a.1.energy_j;
                let eb = b.1.work / b.1.energy_j;
                ea.partial_cmp(&eb).expect("finite")
            })
            .map(|(i, _)| i)
            .unwrap_or(self.cfg.candidates_ghz.len() - 1);
        let ghz = self.cfg.candidates_ghz[best];
        self.chosen_ghz = Some(ghz);
        for i in 0..ctl.n_nodes() {
            ctl.set_freq_limit_ghz(i, ghz);
        }
        // Initialize uniform caps under the budget.
        let per = (self.cfg.job_budget_w / ctl.n_nodes() as f64).max(Self::MIN_NODE_CAP_W);
        self.caps_w = vec![per; ctl.n_nodes()];
        let window = SimDuration::from_millis(10);
        for i in 0..ctl.n_nodes() {
            ctl.set_power_cap(i, per, window);
        }
        self.stage = Stage::Steady;
    }
}

impl RuntimeAgent for Conductor {
    fn name(&self) -> &str {
        "conductor"
    }

    fn knobs(&self) -> Vec<KnobKind> {
        vec![KnobKind::CoreFreq, KnobKind::PowerCap]
    }

    fn control_period(&self) -> SimDuration {
        self.cfg.period
    }

    fn on_job_start(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        self.last_wait_s = vec![0.0; ctl.n_nodes()];
        // Begin exploring the first candidate.
        let ghz = self.cfg.candidates_ghz[0];
        for i in 0..ctl.n_nodes() {
            ctl.set_freq_limit_ghz(i, ghz);
        }
    }

    fn on_control(
        &mut self,
        _now: SimTime,
        telemetry: &JobTelemetry,
        ctl: &mut ArbitratedNodes<'_>,
    ) {
        match self.stage {
            Stage::Exploring { candidate, tick } => {
                let progress = telemetry.node_progress.clone();
                let energy = telemetry.node_energy_j.clone();
                if let Some((p0, e0)) = &self.window_start {
                    let dwork: f64 = progress.iter().zip(p0).map(|(a, b)| (a - b).max(0.0)).sum();
                    let denergy: f64 = energy.iter().zip(e0).map(|(a, b)| (a - b).max(0.0)).sum();
                    let m = &mut self.measurements[candidate];
                    m.work += dwork;
                    m.energy_j += denergy;
                }
                self.window_start = Some((progress, energy));

                let next_tick = tick + 1;
                if next_tick >= self.cfg.explore_ticks_per_candidate {
                    let next_cand = candidate + 1;
                    if next_cand >= self.cfg.candidates_ghz.len() {
                        self.finish_exploration(ctl);
                    } else {
                        let ghz = self.cfg.candidates_ghz[next_cand];
                        for i in 0..ctl.n_nodes() {
                            ctl.set_freq_limit_ghz(i, ghz);
                        }
                        self.window_start = None;
                        self.stage = Stage::Exploring {
                            candidate: next_cand,
                            tick: 0,
                        };
                    }
                } else {
                    self.stage = Stage::Exploring {
                        candidate,
                        tick: next_tick,
                    };
                }
            }
            Stage::Steady => {
                // Power reallocation: slackest rank donates to the straggler.
                let deltas: Vec<f64> = telemetry
                    .node_wait_s
                    .iter()
                    .zip(&self.last_wait_s)
                    .map(|(now, last)| (now - last).max(0.0))
                    .collect();
                self.last_wait_s = telemetry.node_wait_s.clone();
                if deltas.iter().cloned().fold(0.0, f64::max) > 1e-6 && deltas.len() > 1 {
                    let straggler = deltas
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("nodes");
                    let donor = deltas
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("nodes");
                    if donor != straggler
                        && self.caps_w[donor] - self.cfg.shift_step_w >= Self::MIN_NODE_CAP_W
                    {
                        self.caps_w[donor] -= self.cfg.shift_step_w;
                        self.caps_w[straggler] += self.cfg.shift_step_w;
                        let window = SimDuration::from_millis(10);
                        ctl.set_power_cap(donor, self.caps_w[donor], window);
                        ctl.set_power_cap(straggler, self.caps_w[straggler], window);
                    }
                }
            }
        }
    }

    fn on_job_end(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        for i in 0..ctl.n_nodes() {
            ctl.clear_freq_limit(i);
            ctl.clear_power_cap(i);
        }
        let _ = ctl.read(0, Signal::NodeEnergyJoules);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterMode;
    use crate::exec::{JobResult, JobRunner};
    use pstack_apps::synthetic::{Profile, SyntheticApp};
    use pstack_apps::workload::AppModel;
    use pstack_apps::MpiModel;
    use pstack_hwmodel::{NodeConfig, VariationModel};
    use pstack_node::NodeManager;
    use pstack_sim::{SeedTree, SimTime};

    fn run(with_conductor: bool, budget_w: f64, seed: u64) -> (JobResult, Option<f64>) {
        let app = SyntheticApp::new(Profile::MemoryHeavy, 60.0, 30);
        let n = 4;
        let seeds = SeedTree::new(seed);
        let mut nodes = NodeManager::fleet(
            n,
            NodeConfig::server_default(),
            &VariationModel::typical(),
            &seeds,
        );
        let mut runner = JobRunner::new(
            &app.workload(n),
            n,
            &MpiModel::typical(),
            &seeds.subtree("job"),
            ArbiterMode::Gated,
        );
        if with_conductor {
            let mut c = Conductor::new(ConductorConfig::with_budget(budget_w));
            let r = {
                let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut c];
                runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut agents)
            };
            (r, c.chosen_ghz())
        } else {
            // Naive budget enforcement: uniform static caps, full frequency.
            let per = budget_w / n as f64;
            for nm in nodes.iter_mut() {
                nm.set_power_limit(SimTime::ZERO, per, pstack_sim::SimDuration::from_millis(10));
            }
            let r = runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut []);
            (r, None)
        }
    }

    #[test]
    fn explores_then_chooses() {
        let (_, chosen) = run(true, 4.0 * 300.0, 1);
        let ghz = chosen.expect("exploration finishes");
        assert!((1.5..=3.5).contains(&ghz));
    }

    #[test]
    fn memory_bound_job_prefers_lower_frequency() {
        // Memory-bound work barely speeds up above ~2.4 GHz but burns power:
        // work/J peaks at a low-to-mid frequency.
        let (_, chosen) = run(true, 4.0 * 300.0, 2);
        assert!(
            chosen.unwrap() <= 2.5,
            "efficiency-optimal freq for memory-bound: {:?}",
            chosen
        );
    }

    #[test]
    fn respects_job_budget() {
        let budget = 4.0 * 260.0;
        let (r, _) = run(true, budget, 3);
        assert!(
            r.avg_power_w <= budget * 1.08,
            "avg power {} vs budget {}",
            r.avg_power_w,
            budget
        );
    }

    #[test]
    fn beats_naive_static_caps_on_energy() {
        let budget = 4.0 * 280.0;
        let (cond, _) = run(true, budget, 4);
        let (naive, _) = run(false, budget, 4);
        assert!(
            cond.energy_j < naive.energy_j,
            "conductor {} J vs naive {} J",
            cond.energy_j,
            naive.energy_j
        );
    }
}
