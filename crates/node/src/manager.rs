//! The node manager: safe control + telemetry over one node.
//!
//! Plays the role of Variorum/libmsr/PowerAPI on a real node: upper layers
//! set power limits and frequency bounds through it, read typed signals, and
//! drive execution steps; the manager records power history for windowed
//! telemetry (what the RM's monitoring samples).

use crate::signals::Signal;
use pstack_hwmodel::{DutyCycle, Node, NodeConfig, NodeId, PhaseMix, StepOutput, VariationModel};
use pstack_sim::{SeedTree, SimDuration, SimTime};
use pstack_telemetry::{CounterKind, TimeSeries};

/// Per-step report from the node manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStepReport {
    /// Work completed this step.
    pub work: f64,
    /// Average power this step, watts.
    pub power_w: f64,
    /// Effective core frequency, GHz.
    pub effective_freq_ghz: f64,
    /// Whether the node throttled thermally.
    pub throttled: bool,
}

impl From<StepOutput> for NodeStepReport {
    fn from(s: StepOutput) -> Self {
        NodeStepReport {
            work: s.work,
            power_w: s.power_w,
            effective_freq_ghz: s.effective_freq_ghz,
            throttled: s.throttled,
        }
    }
}

/// Management wrapper over one simulated node.
#[derive(Debug, Clone)]
pub struct NodeManager {
    node: Node,
    power_history: TimeSeries,
    /// Frequency bound requested by the current governor, GHz.
    freq_limit_ghz: Option<f64>,
    /// Temporary frequency override (e.g. an MPI runtime lowering the clock
    /// inside communication). Effective frequency = min(limit, override).
    /// A separate slot so restoring the override never clobbers the base
    /// limit another tuner owns — the §3.2.7 coexistence mechanism.
    freq_override_ghz: Option<f64>,
    /// Last step's power (the instantaneous reading a sampler would see).
    last_power_w: f64,
}

impl NodeManager {
    /// Wrap a node.
    pub fn new(node: Node) -> Self {
        NodeManager {
            node,
            power_history: TimeSeries::new(),
            freq_limit_ghz: None,
            freq_override_ghz: None,
            last_power_w: 0.0,
        }
    }

    /// Build a fleet of managed nodes with manufacturing variation.
    pub fn fleet(
        n: usize,
        cfg: NodeConfig,
        variation: &VariationModel,
        seeds: &SeedTree,
    ) -> Vec<NodeManager> {
        (0..n)
            .map(|i| NodeManager::new(Node::new(NodeId(i), cfg.clone(), variation, seeds)))
            .collect()
    }

    /// Build a fleet whose ambient inlet temperature rises linearly from
    /// `cool_c` to `hot_c` across node indices — a rack-position thermal
    /// gradient (the "thermal hot spots" of the paper's §3.1.1).
    pub fn fleet_with_thermal_gradient(
        n: usize,
        cfg: NodeConfig,
        variation: &VariationModel,
        seeds: &SeedTree,
        cool_c: f64,
        hot_c: f64,
    ) -> Vec<NodeManager> {
        assert!(cool_c <= hot_c, "gradient must be ordered");
        (0..n)
            .map(|i| {
                let mut node = Node::new(NodeId(i), cfg.clone(), variation, seeds);
                let t = if n <= 1 {
                    cool_c
                } else {
                    cool_c + (hot_c - cool_c) * i as f64 / (n - 1) as f64
                };
                node.set_ambient_c(t);
                NodeManager::new(node)
            })
            .collect()
    }

    /// The wrapped node's id.
    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    /// Immutable access to the hardware (telemetry-side uses).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Mutable access to the hardware (for tests and advanced control).
    pub fn node_mut(&mut self) -> &mut Node {
        &mut self.node
    }

    // ---- control (paper Table 1 node-layer parameters) ----

    /// Set the node power limit, watts.
    pub fn set_power_limit(&mut self, now: SimTime, watts: f64, window: SimDuration) {
        self.node.set_power_cap(now, watts, window);
    }

    /// Remove the node power limit.
    pub fn clear_power_limit(&mut self) {
        self.node.clear_power_cap();
    }

    fn apply_freq(&mut self) {
        let top = self.node.config().package.pstates.ladder().max();
        let base = self.freq_limit_ghz.unwrap_or(top);
        let eff = match self.freq_override_ghz {
            Some(ov) => base.min(ov),
            None => base,
        };
        self.node.set_freq_ghz(eff);
    }

    /// Set a core frequency ceiling, GHz (DVFS governor request).
    pub fn set_freq_limit_ghz(&mut self, ghz: f64) {
        self.freq_limit_ghz = Some(ghz);
        self.apply_freq();
    }

    /// Release the frequency ceiling (back to turbo/top).
    pub fn clear_freq_limit(&mut self) {
        self.freq_limit_ghz = None;
        self.apply_freq();
    }

    /// The current frequency ceiling, if any.
    pub fn freq_limit_ghz(&self) -> Option<f64> {
        self.freq_limit_ghz
    }

    /// Apply a temporary frequency override (stacked *under* the base limit;
    /// effective frequency is the minimum of the two).
    pub fn set_freq_override_ghz(&mut self, ghz: f64) {
        self.freq_override_ghz = Some(ghz);
        self.apply_freq();
    }

    /// Release the temporary override; the base limit (if any) reapplies.
    pub fn clear_freq_override(&mut self) {
        self.freq_override_ghz = None;
        self.apply_freq();
    }

    /// The current frequency override, if any.
    pub fn freq_override_ghz(&self) -> Option<f64> {
        self.freq_override_ghz
    }

    /// Set uncore frequency index on all packages.
    pub fn set_uncore_idx(&mut self, idx: usize) {
        self.node.set_uncore_idx(idx);
    }

    /// Restore every knob to hardware defaults: power cap off, frequency
    /// limit and MPI override released, uncore to its top rung, full duty.
    /// The RM calls this when reclaiming nodes whose runtime did not get a
    /// chance to clean up (cancellation, emergency teardown).
    pub fn reset_all_knobs(&mut self) {
        self.clear_power_limit();
        self.clear_freq_override();
        self.clear_freq_limit();
        let top_uncore = self.node.config().package.uncore.top_idx();
        self.node.set_uncore_idx(top_uncore);
        self.node.set_duty(pstack_hwmodel::DutyCycle::FULL);
    }

    /// Set duty-cycle modulation on all packages.
    pub fn set_duty(&mut self, duty: DutyCycle) {
        self.node.set_duty(duty);
    }

    // ---- telemetry ----

    /// Read a typed signal (Variorum-style).
    pub fn read(&self, signal: Signal) -> f64 {
        match signal {
            Signal::NodePowerWatts => self.last_power_w,
            Signal::NodeEnergyJoules => self.node.energy_j(),
            Signal::CoreFreqGhz => self.node.effective_freq_ghz(),
            Signal::MaxTemperatureC => self.node.max_temperature_c(),
            Signal::InstructionsRetired => self.node.counter(CounterKind::Instructions),
            Signal::CoreCycles => self.node.counter(CounterKind::Cycles),
            Signal::FlopsRetired => self.node.counter(CounterKind::Flops),
            Signal::DramBytes => self.node.counter(CounterKind::MemBytes),
            Signal::MpiTimeUs => self.node.counter(CounterKind::MpiTimeUs),
            Signal::MpiWaitUs => self.node.counter(CounterKind::MpiWaitUs),
            Signal::Progress => self.node.counter(CounterKind::Progress),
            Signal::PowerCapWatts => self.node.power_cap_w().unwrap_or(f64::NAN),
        }
    }

    /// Recorded power history (step-function series of per-step averages).
    pub fn power_history(&self) -> &TimeSeries {
        &self.power_history
    }

    /// Bound the retained power history to roughly `max_samples` recent
    /// samples (full-range integrals stay exact via the series' evicted
    /// prefix carry). Fleet-scale simulations set this so per-node telemetry
    /// stays O(bound) instead of O(simulated time).
    pub fn bound_power_history(&mut self, max_samples: usize) {
        self.power_history.set_bound(Some(max_samples));
    }

    /// Mean power over the trailing `window` ending at `now`, watts.
    pub fn mean_power_w(&self, now: SimTime, window: SimDuration) -> f64 {
        let from = SimTime(now.as_micros().saturating_sub(window.as_micros()));
        self.power_history.mean(from, now)
    }

    /// Advance the node by `dt` running `mix` on `active_cores`, recording
    /// power history.
    pub fn step(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        mix: &PhaseMix,
        active_cores: usize,
    ) -> NodeStepReport {
        let out = self.node.step(now, dt, mix, active_cores);
        self.power_history.push(now, out.power_w);
        self.last_power_w = out.power_w;
        out.into()
    }

    /// Advance the node idle (no job): minimal activity, platform power only.
    pub fn step_idle(&mut self, now: SimTime, dt: SimDuration) -> NodeStepReport {
        let idle_mix = PhaseMix::pure(pstack_hwmodel::PhaseKind::IoBound);
        self.step(now, dt, &idle_mix, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_hwmodel::PhaseKind;

    fn mgr() -> NodeManager {
        NodeManager::new(Node::nominal(NodeId(0), NodeConfig::server_default()))
    }

    fn compute() -> PhaseMix {
        PhaseMix::pure(PhaseKind::ComputeBound)
    }

    #[test]
    fn signals_reflect_state() {
        let mut m = mgr();
        assert_eq!(m.read(Signal::NodeEnergyJoules), 0.0);
        assert!(m.read(Signal::PowerCapWatts).is_nan());
        m.step(SimTime::ZERO, SimDuration::from_secs(1), &compute(), 48);
        assert!(m.read(Signal::NodePowerWatts) > 100.0);
        assert!(m.read(Signal::NodeEnergyJoules) > 0.0);
        assert!(m.read(Signal::InstructionsRetired) > 0.0);
        assert!(m.read(Signal::Progress) > 0.0);
    }

    #[test]
    fn power_limit_roundtrip() {
        let mut m = mgr();
        m.set_power_limit(SimTime::ZERO, 300.0, SimDuration::from_millis(10));
        assert_eq!(m.read(Signal::PowerCapWatts), 300.0);
        m.clear_power_limit();
        assert!(m.read(Signal::PowerCapWatts).is_nan());
    }

    #[test]
    fn freq_limit_applies_and_clears() {
        let mut m = mgr();
        m.set_freq_limit_ghz(1.5);
        assert_eq!(m.freq_limit_ghz(), Some(1.5));
        m.step(SimTime::ZERO, SimDuration::from_millis(100), &compute(), 48);
        assert!((m.read(Signal::CoreFreqGhz) - 1.5).abs() < 1e-9);
        m.clear_freq_limit();
        m.step(
            SimTime::from_millis(100),
            SimDuration::from_millis(100),
            &compute(),
            48,
        );
        assert!((m.read(Signal::CoreFreqGhz) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn power_history_windows() {
        let mut m = mgr();
        let dt = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            m.step(t, dt, &compute(), 48);
            t += dt;
        }
        let mean = m.mean_power_w(t, SimDuration::from_secs(1));
        assert!(mean > 100.0, "windowed mean {mean}");
        assert_eq!(m.power_history().len(), 20);
    }

    #[test]
    fn idle_draws_less_than_busy() {
        let mut busy = mgr();
        let mut idle = mgr();
        let b = busy.step(SimTime::ZERO, SimDuration::from_secs(1), &compute(), 48);
        let i = idle.step_idle(SimTime::ZERO, SimDuration::from_secs(1));
        assert!(
            i.power_w < b.power_w * 0.6,
            "idle {} busy {}",
            i.power_w,
            b.power_w
        );
    }

    #[test]
    fn fleet_construction() {
        let seeds = SeedTree::new(3);
        let fleet = NodeManager::fleet(
            8,
            NodeConfig::server_default(),
            &VariationModel::typical(),
            &seeds,
        );
        assert_eq!(fleet.len(), 8);
        for (i, m) in fleet.iter().enumerate() {
            assert_eq!(m.id(), NodeId(i));
        }
    }
}
