//! Regenerate Figure 5: FETI region graph under per-region tuning.
use powerstack_core::experiments::fig5;
fn main() {
    pstack_analyze::startup_gate();
    let r = pstack_bench::traced("fig5_feti_regions", |_tc| {
        pstack_bench::timed("fig5", fig5::run_default)
    });
    pstack_bench::emit("fig5_feti_regions", &fig5::render(&r), &r);
}
