//! MERIC/READEX-like runtime (§3.2.4, §3.2.7).
//!
//! MERIC "tunes the application based on its instrumentation ... and provides
//! a specific tuned-parameters configuration for each of the instrumented
//! regions". The agent explores hardware configurations per region across
//! successive visits, measures per-visit energy, and locks in the best
//! configuration per region. Two fidelity rules from the paper are enforced:
//!
//! - **Minimum region size**: a region must yield at least 100 power samples
//!   (≥ 100 ms at RAPL granularity) for its measurement to be trusted;
//!   shorter regions are left untuned (§3.2.7).
//! - **Dependency awareness**: candidate configurations come from a fixed
//!   valid grid, mirroring the ATP "list of parameter values" input.

use crate::agent::{ArbitratedNodes, KnobKind, RuntimeAgent, BARRIER_REGION};
use pstack_hwmodel::PhaseMix;
use pstack_node::Signal;
use pstack_sim::SimTime;
use pstack_telemetry::PowerSampler;
use std::collections::HashMap;

/// The per-region tuning objective (READEX supports several; EDP is the
/// default because a pure energy objective degenerates to crawling on
/// compute-bound regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionObjective {
    /// Minimize energy per visit.
    Energy,
    /// Minimize energy × duration per visit.
    Edp,
}

/// A hardware configuration candidate for one region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionConfig {
    /// Core frequency ceiling, GHz.
    pub freq_ghz: f64,
    /// Uncore frequency index.
    pub uncore_idx: usize,
}

/// Per-region tuning state.
#[derive(Debug, Clone)]
struct RegionState {
    /// Energy measured per candidate (index-aligned with the candidate grid).
    energy: Vec<f64>,
    /// Visit duration accumulated per candidate, seconds.
    duration_s: Vec<f64>,
    /// Visits measured per candidate.
    visits: Vec<usize>,
    /// Candidate currently being measured, or the locked-in best.
    active: usize,
    /// Whether exploration has finished for this region.
    locked: bool,
    /// Whether the region proved too short to measure reliably.
    untunable: bool,
}

/// One in-flight visit measurement (node 0 is the measurement rank).
#[derive(Debug, Clone)]
struct OpenVisit {
    region: String,
    start: SimTime,
    start_energy_j: f64,
    candidate: usize,
}

/// The MERIC runtime agent.
#[derive(Debug)]
pub struct Meric {
    /// The candidate grid (shared by all regions).
    candidates: Vec<RegionConfig>,
    /// Visits to average per candidate before moving on.
    visits_per_candidate: usize,
    regions: HashMap<String, RegionState>,
    open: Option<OpenVisit>,
    sampler: PowerSampler,
    /// The default (un-tuned) configuration to restore.
    default_cfg: RegionConfig,
    /// When set, communication-dominant regions are left to a co-resident
    /// MPI runtime (COUNTDOWN) — the §3.2.7 "communication layer" that keeps
    /// both tools aware of which one is in charge of which regions.
    delegate_comm: bool,
    /// The per-region objective.
    objective: RegionObjective,
}

impl Meric {
    /// Default candidate grid: 5 frequencies × 2 uncore points, ordered from
    /// the default (fast) end downwards so regions that never finish
    /// exploring — one-shot regions, short runs — sit near default instead
    /// of being parked at the slowest candidate.
    pub fn default_candidates() -> Vec<RegionConfig> {
        let mut out = Vec::new();
        for &f in &[3.5, 3.0, 2.5, 2.0, 1.5] {
            for &u in &[8, 2] {
                out.push(RegionConfig {
                    freq_ghz: f,
                    uncore_idx: u,
                });
            }
        }
        out
    }

    /// Create with the default grid and 2 visits per candidate.
    pub fn new() -> Self {
        Self::with_candidates(Self::default_candidates(), 2)
    }

    /// Create with a custom candidate grid.
    pub fn with_candidates(candidates: Vec<RegionConfig>, visits_per_candidate: usize) -> Self {
        assert!(!candidates.is_empty(), "need candidates");
        assert!(visits_per_candidate >= 1);
        Meric {
            candidates,
            visits_per_candidate,
            regions: HashMap::new(),
            open: None,
            sampler: PowerSampler::rapl(),
            default_cfg: RegionConfig {
                freq_ghz: 3.5,
                uncore_idx: 8,
            },
            delegate_comm: false,
            objective: RegionObjective::Edp,
        }
    }

    /// Select the per-region objective (default: EDP).
    pub fn with_objective(mut self, objective: RegionObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Delegate communication-dominant regions to a co-resident MPI runtime:
    /// MERIC will neither measure nor actuate them.
    pub fn with_comm_delegation(mut self) -> Self {
        self.delegate_comm = true;
        self
    }

    /// Regions that finished exploration, with their chosen configurations.
    pub fn tuned_regions(&self) -> HashMap<String, RegionConfig> {
        self.regions
            .iter()
            .filter(|(_, s)| s.locked && !s.untunable)
            .map(|(name, s)| (name.clone(), self.candidates[s.active]))
            .collect()
    }

    /// Regions rejected as too short for reliable measurement.
    pub fn untunable_regions(&self) -> Vec<String> {
        self.regions
            .iter()
            .filter(|(_, s)| s.untunable)
            .map(|(n, _)| n.clone())
            .collect()
    }

    fn close_open_visit(&mut self, now: SimTime, ctl: &ArbitratedNodes<'_>) {
        let Some(open) = self.open.take() else {
            return;
        };
        let duration = now.since(open.start);
        let energy = ctl.read(0, Signal::NodeEnergyJoules) - open.start_energy_j;
        let state = self.regions.get_mut(&open.region).expect("region known");
        if state.locked || state.untunable {
            return;
        }
        // Minimum-region-size rule: too few power samples → untunable.
        if self.sampler.samples_in(duration) < PowerSampler::MIN_RELIABLE_SAMPLES {
            state.untunable = true;
            return;
        }
        state.energy[open.candidate] += energy;
        state.duration_s[open.candidate] += duration.as_secs_f64();
        state.visits[open.candidate] += 1;
        if state.visits[open.candidate] >= self.visits_per_candidate {
            // Advance to the next candidate, or lock in the best.
            let next = open.candidate + 1;
            if next < self.candidates.len() {
                state.active = next;
            } else {
                let objective = self.objective;
                let score = |i: usize| {
                    let v = state.visits[i].max(1) as f64;
                    let e = state.energy[i] / v;
                    let d = state.duration_s[i] / v;
                    match objective {
                        RegionObjective::Energy => e,
                        RegionObjective::Edp => e * d,
                    }
                };
                let best = (0..state.energy.len())
                    .filter(|&i| state.visits[i] > 0)
                    .min_by(|&a, &b| score(a).partial_cmp(&score(b)).expect("finite"))
                    .unwrap_or(self.candidates.len() - 1);
                state.active = best;
                state.locked = true;
            }
        }
    }

    fn apply(&self, cfg: RegionConfig, ctl: &mut ArbitratedNodes<'_>) {
        for i in 0..ctl.n_nodes() {
            ctl.set_freq_limit_ghz(i, cfg.freq_ghz);
            ctl.set_uncore_idx(i, cfg.uncore_idx);
        }
    }
}

impl Default for Meric {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeAgent for Meric {
    fn name(&self) -> &str {
        "meric"
    }

    fn knobs(&self) -> Vec<KnobKind> {
        vec![KnobKind::CoreFreq, KnobKind::Uncore]
    }

    fn on_region_enter(
        &mut self,
        now: SimTime,
        node: usize,
        region: &str,
        mix: &PhaseMix,
        ctl: &mut ArbitratedNodes<'_>,
    ) {
        // Node 0 is the measurement rank; configs apply job-wide since
        // regions are barrier-synchronized.
        if node != 0 {
            return;
        }
        self.close_open_visit(now, ctl);
        if region == BARRIER_REGION {
            return;
        }
        if self.delegate_comm && mix.dominant() == pstack_hwmodel::PhaseKind::CommBound {
            return; // COUNTDOWN's territory
        }
        let n_cand = self.candidates.len();
        let state = self
            .regions
            .entry(region.to_string())
            .or_insert_with(|| RegionState {
                energy: vec![0.0; n_cand],
                duration_s: vec![0.0; n_cand],
                visits: vec![0; n_cand],
                active: 0,
                locked: false,
                untunable: false,
            });
        let cfg = if state.untunable {
            self.default_cfg
        } else {
            self.candidates[state.active]
        };
        if !state.locked && !state.untunable {
            self.open = Some(OpenVisit {
                region: region.to_string(),
                start: now,
                start_energy_j: ctl.read(0, Signal::NodeEnergyJoules),
                candidate: state.active,
            });
        }
        self.apply(cfg, ctl);
    }

    fn on_job_end(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        self.apply(self.default_cfg, ctl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterMode;
    use crate::exec::{JobResult, JobRunner};
    use pstack_apps::workload::{AppModel, Phase, Workload};
    use pstack_apps::MpiModel;
    use pstack_hwmodel::{Node, NodeConfig, NodeId, PhaseKind};
    use pstack_node::NodeManager;
    use pstack_sim::SeedTree;

    /// An app with long, strongly contrasting regions repeated many times.
    struct RegionApp {
        iterations: usize,
    }

    impl AppModel for RegionApp {
        fn name(&self) -> &str {
            "region-app"
        }
        fn workload(&self, _n: usize) -> Workload {
            let body = [
                Phase::new("hot_compute", PhaseMix::new(0.9, 0.1, 0.0, 0.0), 1.0),
                Phase::new("stream", PhaseMix::new(0.1, 0.9, 0.0, 0.0), 1.0),
            ];
            let mut w = Workload::new();
            w.repeat(&body, self.iterations);
            w
        }
    }

    fn run(with_meric: bool, iterations: usize) -> (JobResult, Option<Meric>) {
        let app = RegionApp { iterations };
        let mut nodes = vec![NodeManager::new(Node::nominal(
            NodeId(0),
            NodeConfig::server_default(),
        ))];
        let seeds = SeedTree::new(1);
        let mut runner = JobRunner::new(
            &app.workload(1),
            1,
            &MpiModel::balanced_light(),
            &seeds,
            ArbiterMode::Gated,
        );
        if with_meric {
            let mut meric = Meric::new();
            let r = {
                let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut meric];
                runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut agents)
            };
            (r, Some(meric))
        } else {
            (
                runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut []),
                None,
            )
        }
    }

    #[test]
    fn explores_and_locks_regions() {
        // 10 candidates × 2 visits = 20 visits needed per region; 60 iterations
        // gives plenty.
        let (_, meric) = run(true, 60);
        let meric = meric.unwrap();
        let tuned = meric.tuned_regions();
        assert!(tuned.contains_key("hot_compute"), "tuned: {tuned:?}");
        assert!(tuned.contains_key("stream"));
    }

    #[test]
    fn per_region_configs_differ_by_boundedness() {
        let (_, meric) = run(true, 60);
        let tuned = meric.unwrap().tuned_regions();
        let hot = tuned["hot_compute"];
        let stream = tuned["stream"];
        // Per-region distinction under the EDP objective: the compute-bound
        // region keeps a high clock (time dominates), the memory-bound
        // region drops the clock it cannot use.
        assert!(
            stream.freq_ghz < hot.freq_ghz,
            "stream {:?} vs hot {:?}",
            stream,
            hot
        );
    }

    #[test]
    fn tuned_run_saves_energy() {
        let (base, _) = run(false, 60);
        let (tuned, _) = run(true, 60);
        assert!(
            tuned.energy_j < base.energy_j,
            "MERIC {} J vs default {} J",
            tuned.energy_j,
            base.energy_j
        );
    }

    #[test]
    fn short_regions_are_rejected() {
        /// Regions far below the 100 ms reliability threshold.
        struct ShortApp;
        impl AppModel for ShortApp {
            fn name(&self) -> &str {
                "short-app"
            }
            fn workload(&self, _n: usize) -> Workload {
                let body = [
                    Phase::new("tiny_a", PhaseMix::pure(PhaseKind::ComputeBound), 0.01),
                    Phase::new("tiny_b", PhaseMix::pure(PhaseKind::MemoryBound), 0.01),
                ];
                let mut w = Workload::new();
                w.repeat(&body, 50);
                w
            }
        }
        let mut nodes = vec![NodeManager::new(Node::nominal(
            NodeId(0),
            NodeConfig::server_default(),
        ))];
        let seeds = SeedTree::new(2);
        let mut runner = JobRunner::new(
            &ShortApp.workload(1),
            1,
            &MpiModel::balanced_light(),
            &seeds,
            ArbiterMode::Gated,
        );
        let mut meric = Meric::new();
        {
            let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut meric];
            runner.run_to_completion(SimTime::ZERO, &mut nodes, &mut agents);
        }
        let untunable = meric.untunable_regions();
        assert!(
            untunable.contains(&"tiny_a".to_string()) || untunable.contains(&"tiny_b".to_string()),
            "sub-100ms regions must be rejected: {untunable:?}"
        );
        assert!(meric.tuned_regions().is_empty());
    }
}
