//! Extension E10 — fleet-scale event-driven simulation.
//!
//! Scales the paper's single-cell experiments to a multi-enclave site driven
//! entirely by the event engine: trace-replayed bursty Poisson arrivals,
//! per-enclave power-budget shards aggregated GEOPM-style, and rolling
//! demand-response budget cuts (extension E1 at fleet scale). The headline
//! claims it re-validates at scale are Fig 1's ordering (end-to-end tuning
//! dominates layer-specific tuning) and Fig 3's dynamic-policy win, at up to
//! 4k nodes / 50k jobs — tractable only because idle enclaves and empty
//! stretches cost nothing per event.

use crate::framework::{Scenario, TuningLevel};
use pstack_apps::synthetic::random_app;
use pstack_hwmodel::{NodeConfig, VariationModel};
use pstack_node::NodeManager;
use pstack_rm::scheduler::{EmergencyResponse, Scheduler};
use pstack_rm::spec::JobSpec;
use pstack_rm::EnclaveSet;
use pstack_sim::{SeedTree, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One fleet-scale configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Number of enclaves (independent scheduling domains under one site
    /// budget).
    pub n_enclaves: usize,
    /// Nodes per enclave.
    pub nodes_per_enclave: usize,
    /// Total jobs across the site.
    pub n_jobs: usize,
    /// Site power budget as a fraction of aggregate peak (`None` =
    /// unlimited).
    pub site_budget_frac: Option<f64>,
    /// Tuning level (reuses the Fig 1 ladder; `EndToEnd` adds fair-share
    /// budgets and dynamic reassignment, i.e. the Fig 3 dynamic policy).
    pub tuning: TuningLevel,
    /// Rolling demand-response cuts: a staggered sequence of site budget
    /// drops and restores sharded into every enclave (E1 at fleet scale).
    pub demand_response: bool,
    /// Master seed.
    pub seed: u64,
    /// Mean per-node work per job, reference seconds.
    pub job_scale: f64,
    /// Simulated-hours horizon.
    pub horizon_hours: u64,
}

impl FleetScenario {
    /// A small smoke-test fleet (2 enclaves × 8 nodes, 24 jobs).
    pub fn small(tuning: TuningLevel, site_budget_frac: Option<f64>) -> Self {
        FleetScenario {
            n_enclaves: 2,
            nodes_per_enclave: 8,
            n_jobs: 24,
            site_budget_frac,
            tuning,
            demand_response: false,
            seed: 20200903,
            job_scale: 0.3,
            horizon_hours: 24,
        }
    }

    /// The headline configuration: 4k nodes / 50k jobs (Fig 1 and Fig 3 at
    /// fleet scale).
    pub fn full(tuning: TuningLevel) -> Self {
        FleetScenario {
            n_enclaves: 16,
            nodes_per_enclave: 256,
            n_jobs: 50_000,
            site_budget_frac: Some(0.65),
            tuning,
            demand_response: true,
            seed: 20200903,
            job_scale: 1.0,
            horizon_hours: 14 * 24,
        }
    }

    /// Aggregate peak estimate (450 W/node, the admission planning figure).
    pub fn site_peak_w(&self) -> f64 {
        450.0 * (self.n_enclaves * self.nodes_per_enclave) as f64
    }

    /// Build the enclave set: per-enclave schedulers with sharded budgets,
    /// bounded node telemetry, a coarse integrator substep, and the
    /// bursty-Poisson job mix scattered across enclaves.
    pub fn build(&self) -> EnclaveSet {
        assert!(self.n_enclaves >= 1 && self.nodes_per_enclave >= 1);
        let seeds = SeedTree::new(self.seed);
        let site_budget_w = self.site_budget_frac.map(|f| self.site_peak_w() * f);
        let capacities = vec![self.nodes_per_enclave; self.n_enclaves];
        let shards = match site_budget_w {
            Some(b) => pstack_rm::shard_budgets(b, &capacities),
            None => vec![f64::INFINITY; self.n_enclaves],
        };

        let mut enclaves = Vec::with_capacity(self.n_enclaves);
        for (e, shard) in shards.iter().enumerate() {
            // Reuse the Fig 1 scenario's canonical policy/agent mapping at
            // enclave granularity so "tuning level" means the same thing it
            // does in the single-cell experiments.
            let proto = Scenario {
                n_nodes: self.nodes_per_enclave,
                system_budget_w: if shard.is_finite() {
                    Some(*shard)
                } else {
                    None
                },
                tuning: self.tuning,
                n_jobs: 0,
                seed: self.seed,
                job_scale: self.job_scale,
            };
            let enclave_seeds = seeds.subtree(&format!("enclave{e}"));
            let mut nodes = NodeManager::fleet(
                self.nodes_per_enclave,
                NodeConfig::server_default(),
                &VariationModel::typical(),
                &enclave_seeds,
            );
            for nm in &mut nodes {
                // Fleet runs simulate weeks: bound per-node telemetry so
                // memory stays O(nodes), not O(nodes × simulated time).
                nm.bound_power_history(512);
            }
            let mut sched = Scheduler::new(nodes, proto.policy(), enclave_seeds.subtree("sched"))
                // Integrator substeps dominate fleet wall time; 1 s is
                // plenty at this scale (every enclave uses the same value,
                // so comparisons across tuning levels stay apples-to-apples).
                .with_runner_max_substep(SimDuration::from_secs(1));
            if self.tuning == TuningLevel::EndToEnd && site_budget_w.is_some() {
                sched = sched.with_dynamic_power_reassignment(SimDuration::from_secs(30));
            }
            enclaves.push((format!("enclave{e}"), sched));
        }
        let mut set = EnclaveSet::new(enclaves, 8);

        // Bursty Poisson arrivals: a base exponential process whose rate
        // multiplies 10× inside burst windows (about a fifth of the time) —
        // the diurnal submit-storm shape site traces show. Inverse-CDF
        // sampling keeps the trace fully determined by the seed, so reruns
        // replay the identical trace.
        let mut rng = seeds.rng("fleet-arrivals");
        let horizon_s = self.horizon_hours as f64 * 3600.0;
        // Aim the trace at roughly half the horizon: the realized mean gap
        // is ~1.47/base_rate (0.2 of gaps at 10× rate, 0.8 at 0.55×), so
        // targeting 35% of the horizon lands the last arrival near 50% and
        // leaves ample drain headroom.
        let base_rate = self.n_jobs as f64 / (horizon_s * 0.35);
        let mut t = 0.0f64;
        for i in 0..self.n_jobs {
            let in_burst = rng.gen_range(0.0..1.0) < 0.2;
            let rate = if in_burst {
                base_rate * 10.0
            } else {
                base_rate * 0.55
            };
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            let mut app = random_app(&seeds, i as u64);
            app.work_per_node *= self.job_scale * 0.2;
            let profile = app.profile;
            let nodes_wanted = 1usize << rng.gen_range(0..3);
            let enclave = rng.gen_range(0..self.n_enclaves);
            let proto = Scenario {
                n_nodes: self.nodes_per_enclave,
                system_budget_w: if shards[enclave].is_finite() {
                    Some(shards[enclave])
                } else {
                    None
                },
                tuning: self.tuning,
                n_jobs: 0,
                seed: self.seed,
                job_scale: self.job_scale,
            };
            let spec = JobSpec::rigid(
                i as u64,
                Arc::new(app),
                nodes_wanted,
                SimTime::from_micros((t * 1e6).round() as u64),
            )
            .with_agent(proto.agent_for(profile));
            set.enclaves_mut()[enclave].scheduler_mut().submit(spec);
        }

        if self.demand_response {
            if let Some(site) = site_budget_w {
                // Rolling cuts: every simulated day drops the site budget for
                // a two-hour window, each day one notch deeper, then restores.
                for day in 0..self.horizon_hours / 24 {
                    let start = day * 24 * 3600 + 14 * 3600;
                    let depth = 0.8 - 0.1 * (day % 3) as f64;
                    set.schedule_site_budget_change(
                        SimTime::from_secs(start),
                        Some(site * depth),
                        EmergencyResponse::TightenCaps,
                    );
                    set.schedule_site_budget_change(
                        SimTime::from_secs(start + 2 * 3600),
                        Some(site),
                        EmergencyResponse::TightenCaps,
                    );
                }
            }
        }
        set
    }

    /// Build, drain, and summarize.
    pub fn run(&self) -> FleetResult {
        let mut set = self.build();
        set.run_until_drained(
            SimDuration::from_secs(1),
            SimTime::from_secs(self.horizon_hours * 3600),
        );
        let m = set.site_metrics();
        FleetResult {
            tuning: self.tuning,
            site_budget_frac: self.site_budget_frac,
            n_enclaves: self.n_enclaves,
            nodes: m.nodes,
            submitted: self.n_jobs,
            completed: m.completed,
            makespan_s: m.makespan_s,
            jobs_per_hour: m.jobs_per_hour,
            mean_wait_s: m.mean_wait_s,
            utilization: m.utilization,
            energy_j: m.system_energy_j,
            total_work: m.total_work,
            work_per_kj: if m.system_energy_j > 0.0 {
                m.total_work / (m.system_energy_j / 1000.0)
            } else {
                0.0
            },
            events_processed: m.events_processed,
        }
    }
}

/// Site-level result of one fleet run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetResult {
    /// Tuning level that produced this row.
    pub tuning: TuningLevel,
    /// Site budget fraction of peak.
    pub site_budget_frac: Option<f64>,
    /// Enclave count.
    pub n_enclaves: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Site makespan, seconds (latest enclave clock).
    pub makespan_s: f64,
    /// Completed jobs per simulated hour.
    pub jobs_per_hour: f64,
    /// Mean queue wait, seconds.
    pub mean_wait_s: f64,
    /// Allocated node-seconds over available node-seconds.
    pub utilization: f64,
    /// Site energy, joules.
    pub energy_j: f64,
    /// Total application work completed.
    pub total_work: f64,
    /// Work per kilojoule (the Fig 1 efficiency axis).
    pub work_per_kj: f64,
    /// Scheduler events processed across all enclaves.
    pub events_processed: u64,
}

/// Run the Fig 1 ladder at fleet scale: one row per tuning level, same
/// budget, same trace.
pub fn run_ladder(base: &FleetScenario) -> Vec<FleetResult> {
    TuningLevel::ALL
        .iter()
        .map(|&tuning| {
            FleetScenario {
                tuning,
                ..base.clone()
            }
            .run()
        })
        .collect()
}

/// Render fleet rows as a table.
pub fn render(rows: &[FleetResult]) -> String {
    let mut out = String::from(
        "EXTENSION E10 / FLEET SCALE: event-driven multi-enclave site\n\
         tuning      | nodes | done/subm     | jobs/h | util | energy_MJ | work/kJ | events\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} | {:>5} | {:>6}/{:<6} | {:>6.1} | {:>4.2} | {:>9.1} | {:>7.2} | {:>6}\n",
            format!("{:?}", r.tuning),
            r.nodes,
            r.completed,
            r.submitted,
            r.jobs_per_hour,
            r.utilization,
            r.energy_j / 1e6,
            r.work_per_kj,
            r.events_processed,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_drains_and_counts_events() {
        let r = FleetScenario::small(TuningLevel::None, None).run();
        assert_eq!(r.completed, r.submitted, "unlimited fleet must drain");
        assert!(r.events_processed > 0, "event engine must process events");
        assert!(r.energy_j > 0.0 && r.total_work > 0.0);
    }

    #[test]
    fn end_to_end_dominates_no_tuning_at_fleet_scale() {
        // Fig 1's headline ordering, re-validated on the multi-enclave path:
        // under a tight site budget, end-to-end tuning beats no tuning on
        // efficiency (work per kilojoule) without losing completions.
        let base = FleetScenario::small(TuningLevel::None, Some(0.55));
        let none = base.clone().run();
        let e2e = FleetScenario {
            tuning: TuningLevel::EndToEnd,
            ..base
        }
        .run();
        assert!(e2e.completed >= none.completed, "{e2e:?} vs {none:?}");
        assert!(
            e2e.work_per_kj > none.work_per_kj,
            "end-to-end must win efficiency: {:.2} vs {:.2}",
            e2e.work_per_kj,
            none.work_per_kj
        );
    }

    #[test]
    fn dynamic_policy_beats_static_sitewide() {
        // Fig 3's dynamic-policy win: EndToEnd (fair share + dynamic
        // reassignment + balancer agents) vs NodeOnly (static uniform caps),
        // same tight budget, same trace.
        let base = FleetScenario::small(TuningLevel::NodeOnly, Some(0.5));
        let static_row = base.clone().run();
        let dynamic_row = FleetScenario {
            tuning: TuningLevel::EndToEnd,
            ..base
        }
        .run();
        assert!(
            dynamic_row.work_per_kj > static_row.work_per_kj
                || dynamic_row.jobs_per_hour > static_row.jobs_per_hour,
            "dynamic must win throughput or efficiency: {dynamic_row:?} vs {static_row:?}"
        );
    }

    #[test]
    fn demand_response_cuts_apply_and_fleet_still_drains() {
        let mut sc = FleetScenario::small(TuningLevel::EndToEnd, Some(0.7));
        sc.demand_response = true;
        sc.horizon_hours = 48;
        let r = sc.run();
        assert_eq!(r.completed, r.submitted, "{r:?}");
        // Each daily cut contributes a budget event per enclave (cut +
        // restore × 2 enclaves × 2 days) on top of arrival/tick traffic.
        assert!(r.events_processed > 8);
    }

    #[test]
    fn ladder_runs_all_levels_on_one_trace() {
        let mut base = FleetScenario::small(TuningLevel::None, Some(0.6));
        base.n_jobs = 8;
        let rows = run_ladder(&base);
        assert_eq!(rows.len(), 4);
        // Same trace: submitted counts match across rows.
        assert!(rows.iter().all(|r| r.submitted == 8));
        let table = render(&rows);
        assert!(table.contains("EndToEnd"));
    }
}
