#!/usr/bin/env bash
# Full verification gate: format, build, test, lint, static analysis.
# Run from the repo root.
#
#   ./scripts/verify.sh                 # run every stage (the PR bar)
#   ./scripts/verify.sh build test      # run only the named stages
#   ./scripts/verify.sh --list          # list available stages
#
# Stages run in the order given; each is the exact command CI runs for the
# matching job in .github/workflows/ci.yml, so a stage passing here passes
# there and vice versa.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_fmt() {
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
}

stage_build() {
    echo "== cargo build --release =="
    cargo build --release
}

stage_test() {
    echo "== cargo test -q --workspace =="
    cargo test -q --workspace
}

stage_chaos() {
    echo "== chaos suite (determinism: two runs must agree) =="
    cargo test -q --test chaos_tuning
    cargo test -q --test chaos_tuning
}

stage_golden() {
    echo "== golden artifact regression =="
    cargo test -q --test golden_results
}

stage_resume() {
    echo "== crash-resume equivalence (kill/resume grid + WAL fuzzing) =="
    cargo test -q --test resume_equivalence
}

stage_perf() {
    echo "== eval-throughput acceptance (batched fast path >= 10x, bit-identical) =="
    cargo run -q --release -p pstack-bench --bin bench_evalthroughput
}

stage_conc() {
    echo "== concurrency audit (schedule explorer + lock-order gate + PSA017/018) =="
    cargo test -q --test concurrency_audit
    cargo run -q --release -p pstack-bench --bin bench_lockorder
    cargo run -q --release -p pstack-analyze --bin pstack_lint
}

stage_history() {
    echo "== shared history store (concurrency grid, properties, service, warm golden, E9 gate) =="
    cargo test -q --test history_store
    cargo test -q --test history_proptests
    cargo test -q --test history_service
    cargo test -q --test history_warm_golden
    cargo run -q --release -p pstack-bench --bin bench_history
}

stage_fleet() {
    echo "== fleet-scale event engine (equivalence grid + 4k-node/50k-job ladder) =="
    cargo test -q -p pstack-rm --test event_equivalence
    cargo run -q --release -p pstack-bench --bin bench_fleet
}

stage_chaosfleet() {
    echo "== fleet chaos (E11 grid + recovery-SLO gate, smoke scale) =="
    cargo test -q -p powerstack-core --lib experiments::fleetfaults
    cargo test -q -p pstack-faults --lib fleet
    # Smoke artifacts land in a scratch dir so the committed full-scale
    # results/ stay untouched; CI uploads the scratch copies.
    local out=target/chaosfleet
    rm -rf "$out"
    mkdir -p "$out"
    POWERSTACK_RESULTS_DIR="$out" POWERSTACK_CHAOSFLEET_SMOKE=1 \
        cargo run -q --release -p pstack-bench --bin ext_fleetfaults
    POWERSTACK_RESULTS_DIR="$out" POWERSTACK_CHAOSFLEET_SMOKE=1 \
        cargo run -q --release -p pstack-bench --bin bench_fleetfaults
    # The gate must demonstrably trip: an injected regression exits nonzero.
    if POWERSTACK_RESULTS_DIR="$out" POWERSTACK_CHAOSFLEET_SMOKE=1 \
        POWERSTACK_FLEETFAULTS_INJECT_REGRESSION=1 \
        cargo run -q --release -p pstack-bench --bin bench_fleetfaults >/dev/null 2>&1; then
        echo "chaosfleet: injected regression did NOT trip the gate" >&2
        exit 1
    fi
    echo "chaosfleet: injected regression tripped the gate (expected)"
}

stage_perfgate() {
    echo "== perf-regression gate (fresh artifacts vs committed results/) =="
    local fresh=target/perfgate
    rm -rf "$fresh"
    mkdir -p "$fresh"
    POWERSTACK_RESULTS_DIR="$fresh" cargo run -q --release -p pstack-bench --bin bench_evalthroughput
    POWERSTACK_RESULTS_DIR="$fresh" cargo run -q --release -p pstack-bench --bin ext_thermal
    POWERSTACK_RESULTS_DIR="$fresh" cargo run -q --release -p pstack-bench --bin ext_new_runtimes
    cargo run -q --release -p pstack-bench --bin bench_diff -- results "$fresh" \
        --require bench_evalthroughput --require ext_thermal --require ext_new_runtimes
}

stage_clippy() {
    echo "== cargo clippy -- -D warnings =="
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_lint() {
    echo "== pstack_lint =="
    cargo run -q --release -p pstack-analyze --bin pstack_lint
}

ALL_STAGES=(fmt build test chaos resume golden perf conc history fleet chaosfleet perfgate clippy lint)

list_stages() {
    for s in "${ALL_STAGES[@]}"; do
        echo "$s"
    done
}

if [[ "${1:-}" == "--list" ]]; then
    list_stages
    exit 0
fi

if [[ $# -eq 0 ]]; then
    stages=("${ALL_STAGES[@]}")
    summary="verify: OK"
else
    stages=("$@")
    summary="verify: OK ($*)"
fi

for s in "${stages[@]}"; do
    case "$s" in
        fmt | fmt-check) stage_fmt ;;
        build) stage_build ;;
        test) stage_test ;;
        chaos) stage_chaos ;;
        resume) stage_resume ;;
        golden | goldens) stage_golden ;;
        perf) stage_perf ;;
        conc | concurrency) stage_conc ;;
        history) stage_history ;;
        fleet) stage_fleet ;;
        chaosfleet | chaos-fleet) stage_chaosfleet ;;
        perfgate | perf-gate) stage_perfgate ;;
        clippy) stage_clippy ;;
        lint | pstack_lint) stage_lint ;;
        *)
            echo "verify: unknown stage '$s' (available: ${ALL_STAGES[*]})" >&2
            exit 2
            ;;
    esac
done

echo "$summary"
