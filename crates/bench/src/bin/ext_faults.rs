//! Regenerate extension E3: auto-tuning recovery under injected faults.
use powerstack_core::experiments::faults;
fn main() {
    pstack_analyze::startup_gate();
    let r = pstack_bench::traced("ext_faults", |_tc| {
        pstack_bench::timed("E6", faults::run_default)
    });
    let r = pstack_bench::run_or_exit("ext_faults", r);
    pstack_bench::emit("ext_faults", &faults::render(&r), &r);
}
