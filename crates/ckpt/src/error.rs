//! Typed failure modes for checkpoint I/O.
//!
//! Every durability failure is a value, never a panic: callers decide
//! whether a corrupt tail is fatal (snapshot body) or recoverable (torn
//! final WAL record).

use std::fmt;

/// What went wrong while writing or reading session state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The underlying filesystem operation failed.
    Io {
        /// File the operation touched.
        path: String,
        /// OS error rendered as text.
        detail: String,
    },
    /// The file exists but its contents are not a valid checkpoint
    /// artifact (bad magic, mangled header, checksum mismatch on a
    /// snapshot body).
    Corrupt {
        /// Offending file.
        path: String,
        /// What specifically failed to parse or verify.
        detail: String,
    },
    /// The artifact was written by an incompatible format version.
    SchemaMismatch {
        /// Offending file.
        path: String,
        /// Version this build writes and understands.
        expected: u32,
        /// Version found on disk.
        found: u32,
    },
    /// Resume was requested but no snapshot exists in the session
    /// directory.
    MissingSnapshot {
        /// Where the snapshot was expected.
        path: String,
    },
    /// A payload could not be encoded to (or decoded from) JSON.
    Encode {
        /// Serializer/deserializer message.
        detail: String,
    },
}

impl CkptError {
    /// Shorthand for wrapping an [`std::io::Error`] with its path.
    pub fn io(path: &std::path::Path, err: std::io::Error) -> Self {
        CkptError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }

    /// Shorthand for a corruption report at `path`.
    pub fn corrupt(path: &std::path::Path, detail: impl Into<String>) -> Self {
        CkptError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, detail } => write!(f, "checkpoint I/O on {path}: {detail}"),
            CkptError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint artifact {path}: {detail}")
            }
            CkptError::SchemaMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint schema mismatch in {path}: expected v{expected}, found v{found}"
            ),
            CkptError::MissingSnapshot { path } => {
                write!(f, "no session snapshot at {path}; cannot resume")
            }
            CkptError::Encode { detail } => write!(f, "checkpoint payload encoding: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}
