//! Offline stand-in for `crossbeam`.
//!
//! Only the [`channel`] module is provided (the workspace uses it for the
//! GEOPM endpoint). Channels are `std::sync::mpsc` underneath, with the
//! receiver wrapped in `Arc<Mutex<..>>` so it is cloneable and `Sync` like
//! crossbeam's.

// Vendored offline stand-in: exempt from the workspace unwrap policy.
#![allow(clippy::disallowed_methods)]

pub mod channel {
    //! Multi-producer multi-consumer channels (mpsc-backed).
    use std::sync::{mpsc, Arc, Mutex};

    /// Sending half of a channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of a channel (cloneable; clones share the queue).
    #[derive(Debug, Clone)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    /// Error returned when the receiving side is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and queue drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        /// Send a value; errors if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.inner.lock().expect("channel poisoned").try_recv() {
                Ok(v) => Ok(v),
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }

        /// Drain everything currently queued.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            assert!(tx.send(1).is_ok());
            assert!(tx.send(2).is_ok());
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_senders_feed_same_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx2.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
        }
    }
}
