//! Regenerate use case 3.2.7: COUNTDOWN+MERIC coexistence.
use powerstack_core::experiments::uc7;
fn main() {
    pstack_analyze::startup_gate();
    let r = pstack_bench::traced("uc7_two_runtimes", |_tc| {
        pstack_bench::timed("uc7", uc7::run_default)
    });
    pstack_bench::emit("uc7_two_runtimes", &uc7::render(&r), &r);
}
