//! Extension experiment E6 — auto-tuning under injected faults.
//!
//! The paper's loop (§3.2, Figure 4) assumes evaluations return honest
//! numbers and the stack underneath stays up. This experiment measures how
//! much of the fault-free tuning objective the *resilient* loop recovers
//! when it does not: for every plan in the fault catalog it
//!
//! 1. tunes the kernel co-tuning problem through a
//!    [`FaultyEvaluator`](pstack_faults::FaultyEvaluator) with
//!    [`Tuner::run_resilient`](pstack_autotune::Tuner) (forest search
//!    primary, random-search fallback on a poisoned database), then
//!    **cleanly re-evaluates** the configuration it picked — recovery is
//!    `clean_best / clean(picked)` for the cost objective, 1.0 = perfect;
//! 2. runs a whole job through [`run_faulted_job`](pstack_faults) under the
//!    same plan and records whether the stack survived.
//!
//! Expected shape: every plan completes without panic, single-fault plans
//! recover ≥ 90 % of the fault-free objective, and the `FaultLog` accounts
//! for everything injected.

use crate::cotune::KernelCoTune;
use crate::interfaces::Objective;
use pstack_apps::synthetic::{Profile, SyntheticApp};
use pstack_autotune::{ForestSearch, RandomSearch, Robustness, TuneError, TuneReport, Tuner};
use pstack_faults::{run_faulted_job, FaultPlan, FaultyEvaluator};
use serde::{Deserialize, Serialize};

/// One fault plan's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlanRow {
    /// Plan name (from the catalog).
    pub plan: String,
    /// Number of active fault classes (0 = clean baseline).
    pub fault_classes: usize,
    /// Clean cost of the configuration the faulted tuner picked.
    pub picked_clean_cost: f64,
    /// Recovery of the fault-free objective: `clean_best / picked_clean_cost`.
    pub recovery: f64,
    /// Active algorithm at the end (fallback's name when degraded).
    pub algorithm: String,
    /// Evaluations performed (attempts that produced an observation).
    pub evals: usize,
    /// Total faults logged during tuning (includes the loop's own outlier
    /// bookkeeping, which can fire on honest heavy-tailed objectives).
    pub tuning_faults: usize,
    /// Injected evaluation faults the loop absorbed: failures + timeouts +
    /// non-finite objectives.
    pub injected_eval_faults: usize,
    /// Retries spent during tuning.
    pub retries: usize,
    /// Configurations quarantined during tuning.
    pub quarantined: usize,
    /// Whether the search degraded to the fallback.
    pub degraded: bool,
    /// Whether the stack-level job under this plan ran to completion.
    pub job_completed: bool,
    /// Stack-level job duration, seconds.
    pub job_time_s: f64,
    /// Total faults logged during the stack-level job.
    pub job_faults: usize,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsResult {
    /// Evaluation budget per plan.
    pub max_evals: usize,
    /// Root seed.
    pub seed: u64,
    /// Fault-free best cost over the same budget (the recovery denominator's
    /// numerator: every recovery is relative to this).
    pub clean_best_cost: f64,
    /// One row per catalog plan.
    pub rows: Vec<FaultPlanRow>,
}

/// Robustness calibrated for the kernel EDP objective, whose *honest*
/// spread reaches ~55× the median with ~20 % of observations above 8× — the
/// default thresholds (8×, 25 %) would misread the heavy tail as poisoning.
/// Outlier/poison thresholds must sit above the objective's natural spread.
fn robustness() -> Robustness {
    Robustness {
        outlier_factor: 100.0,
        poison_fraction: 0.3,
        ..Robustness::default()
    }
}

fn tune_under(
    ct: &KernelCoTune,
    plan: &FaultPlan,
    max_evals: usize,
    seed: u64,
) -> Result<TuneReport, TuneError> {
    let evaluator = FaultyEvaluator::new(
        |space: &pstack_autotune::ParamSpace, cfg: &pstack_autotune::Config| {
            ct.evaluate(space, cfg)
        },
        plan,
        seed ^ 0xFA11,
    );
    let mut primary = ForestSearch::new();
    let mut fallback = RandomSearch::new();
    Tuner::new(ct.space())
        .max_evals(max_evals)
        .seed(seed)
        .run_resilient(
            &mut primary,
            Some(&mut fallback),
            &robustness(),
            |space, cfg, attempt| evaluator.evaluate(space, cfg, attempt),
        )
}

/// Run the fault-recovery sweep over the whole catalog.
///
/// # Errors
/// Propagates the first [`TuneError`] any arm's resilient run surfaces
/// (e.g. a fault budget hostile enough to abandon the run), so bench bins
/// can exit nonzero instead of shipping a half-regenerated artifact.
pub fn run(max_evals: usize, seed: u64) -> Result<FaultsResult, TuneError> {
    let ct = KernelCoTune::new(Objective::MinEdp);
    let space = ct.space();

    // Fault-free baseline over the identical budget and seed: the recovery
    // yardstick every faulted run is measured against.
    let clean = tune_under(&ct, &FaultPlan::none(), max_evals, seed)?;
    let clean_best_cost = clean.best_objective;

    let job_app = SyntheticApp::new(Profile::Mixed, 100.0, 8);
    let rows = FaultPlan::catalog()
        .iter()
        .map(|plan| {
            let report = tune_under(&ct, plan, max_evals, seed)?;
            // The tuner saw (possibly inflated) measurements; judge its pick
            // by what that configuration costs on the honest model.
            let (picked_clean_cost, _) = ct.evaluate(&space, &report.best_config);
            let recovery = if picked_clean_cost > 0.0 {
                clean_best_cost / picked_clean_cost
            } else {
                0.0
            };
            let job = run_faulted_job(&job_app, 2, None, seed, plan);
            Ok(FaultPlanRow {
                plan: plan.name.clone(),
                fault_classes: plan.active_classes(),
                picked_clean_cost,
                recovery,
                algorithm: report.algorithm.clone(),
                evals: report.evals,
                tuning_faults: report.faults.counts.total(),
                injected_eval_faults: report.faults.counts.eval_failures
                    + report.faults.counts.eval_timeouts
                    + report.faults.counts.non_finite,
                retries: report.faults.counts.retries,
                quarantined: report.faults.counts.quarantined,
                degraded: report.faults.counts.search_degradations > 0,
                job_completed: job.completed,
                job_time_s: job.time_s,
                job_faults: job.log.counts.total(),
            })
        })
        .collect::<Result<Vec<_>, TuneError>>()?;

    Ok(FaultsResult {
        max_evals,
        seed,
        clean_best_cost,
        rows,
    })
}

/// Default full-scale run.
///
/// # Errors
/// As [`run`].
pub fn run_default() -> Result<FaultsResult, TuneError> {
    run(48, 20200913)
}

/// Render the recovery table.
pub fn render(r: &FaultsResult) -> String {
    let mut out = format!(
        "EXTENSION E6 / TUNING UNDER FAULTS: {} evals/plan, clean best cost {:.4}\n\
         plan           | cls | recovery | algorithm | evals | faults | retries | quar | job\n",
        r.max_evals, r.clean_best_cost
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:<14} | {:>3} | {:>7.1}% | {:<9} | {:>5} | {:>6} | {:>7} | {:>4} | {}\n",
            row.plan,
            row.fault_classes,
            row.recovery * 100.0,
            row.algorithm,
            row.evals,
            row.tuning_faults,
            row.retries,
            row.quarantined,
            if row.job_completed {
                format!("ok {:.0}s ({} faults)", row.job_time_s, row.job_faults)
            } else {
                "ABANDONED".to_string()
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FaultsResult {
        run(24, 7).expect("small E6 sweep completes")
    }

    #[test]
    fn every_plan_completes_without_panic() {
        let r = small();
        assert_eq!(r.rows.len(), FaultPlan::catalog().len());
        for row in &r.rows {
            assert!(row.evals > 0, "{} made no evaluations", row.plan);
            assert!(
                row.picked_clean_cost.is_finite() && row.picked_clean_cost > 0.0,
                "{} picked a nonsense config",
                row.plan
            );
            assert!(row.job_completed, "{} killed the stack-level job", row.plan);
        }
    }

    #[test]
    fn clean_plan_recovers_everything() {
        let r = small();
        let none = r.rows.iter().find(|x| x.plan == "none").expect("none row");
        assert!(
            (none.recovery - 1.0).abs() < 1e-9,
            "clean plan recovery {} ≠ 1",
            none.recovery
        );
        // No *injected* faults under the clean plan (outlier bookkeeping may
        // still fire on honest heavy-tailed objectives).
        assert_eq!(none.injected_eval_faults, 0);
        assert_eq!(none.retries, 0);
        assert_eq!(none.quarantined, 0);
        assert!(!none.degraded);
    }

    #[test]
    fn single_fault_plans_recover_most_of_the_objective() {
        let r = small();
        for row in r.rows.iter().filter(|x| x.fault_classes == 1) {
            assert!(
                row.recovery >= 0.9,
                "{} recovered only {:.1}%",
                row.plan,
                row.recovery * 100.0
            );
        }
    }

    #[test]
    fn faulted_plans_log_their_faults() {
        let r = small();
        // process_kill_only targets the tuning process itself; inside E6's
        // in-process sweep there is nothing to kill (E7 supervises it), so
        // it behaves like the clean arm here.
        for row in r
            .rows
            .iter()
            .filter(|x| x.fault_classes > 0 && x.plan != "process_kill_only")
        {
            assert!(
                row.tuning_faults + row.job_faults > 0,
                "{} injected nothing",
                row.plan
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = serde_json::to_string(&small()).expect("serialize");
        let b = serde_json::to_string(&small()).expect("serialize");
        assert_eq!(a, b);
    }
}
