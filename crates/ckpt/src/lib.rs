//! Crash-safe session persistence for long-running tuning campaigns.
//!
//! The paper's end-to-end loop (§3.1) assumes campaigns that outlive any
//! single job dispatch; its open questions (§4) ask how tuning state
//! should persist across the site→system→job layers. Real counterparts
//! (ytopt's performance database, READEX's tuning-model files) all keep
//! durable search state so a killed campaign *resumes* instead of
//! restarting. This crate provides the storage layer for that:
//!
//! - a [write-ahead log](wal) of checksummed, length-prefixed JSON
//!   frames — one frame per completed evaluation, appended *before* the
//!   in-memory search observes the outcome;
//! - [atomic snapshots](snapshot) of full session state, rename-into-place,
//!   after which the WAL is compacted;
//! - typed [errors](error) for every corruption mode — a torn final WAL
//!   record is trimmed and survived, a damaged snapshot is reported,
//!   nothing panics.
//!
//! The crate is deliberately policy-free: it moves opaque
//! [`serde::Value`] payloads and leaves the schema (what goes in a
//! snapshot, how replay works) to `pstack-autotune`, which owns the
//! session formats.

pub mod error;
pub mod snapshot;
pub mod wal;

pub use error::CkptError;
pub use snapshot::{read_snapshot, write_snapshot, SNAPSHOT_FORMAT_VERSION, SNAP_MAGIC};
pub use wal::{
    decode_records, read_wal, TornTail, WalContents, WalWriter, WAL_FORMAT_VERSION, WAL_MAGIC,
};

use pstack_sync::{sites, Ordering, SyncAtomicUsize};
use std::path::{Path, PathBuf};

/// FNV-1a over a byte slice — the workspace's standard cheap checksum
/// (same constants as `pstack_trace::hash64`, which hashes `&str`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical layout of a session directory: one WAL, one snapshot.
#[derive(Debug, Clone)]
pub struct SessionDir {
    root: PathBuf,
}

impl SessionDir {
    /// Wrap `root`, creating it (and parents) if needed.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| CkptError::io(&root, e))?;
        Ok(SessionDir { root })
    }

    /// The directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.root.join("session.wal")
    }

    /// Path of the full-state snapshot.
    pub fn snapshot_path(&self) -> PathBuf {
        self.root.join("session.snap")
    }
}

// Relaxed: a process-unique directory suffix — uniqueness needs atomicity
// only; no other memory is published through this counter.
static SCRATCH_COUNTER: SyncAtomicUsize = SyncAtomicUsize::new(sites::CKPT_SCRATCH, 0);

/// A unique temp directory that removes itself on drop — for tests and
/// experiments that need many disposable session directories.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `tmp/pstack-ckpt-<pid>-<n>-<tag>/`.
    pub fn new(tag: &str) -> Self {
        let n = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("pstack-ckpt-{}-{n}-{tag}", std::process::id()));
        // A stale directory from a crashed prior run with the same pid is
        // possible in principle; start clean either way.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn rec(n: i64) -> Value {
        Value::Map(vec![
            ("ordinal".to_string(), Value::Int(n)),
            ("payload".to_string(), Value::Str(format!("eval-{n}"))),
        ])
    }

    #[test]
    fn wal_round_trips_records_in_order() {
        let dir = ScratchDir::new("wal-roundtrip");
        let path = dir.path().join("session.wal");
        let header = Value::Str("meta".to_string());
        let mut w = WalWriter::create(&path, &header, 4).expect("create");
        for n in 0..10 {
            w.append(&rec(n)).expect("append");
        }
        w.sync().expect("sync");
        let contents = read_wal(&path).expect("read");
        assert_eq!(contents.version, WAL_FORMAT_VERSION);
        assert_eq!(contents.header, header);
        assert_eq!(contents.records.len(), 10);
        assert_eq!(contents.records[7], rec(7));
        assert!(contents.torn_tail.is_none());
    }

    #[test]
    fn torn_tail_is_reported_and_truncated_on_reopen() {
        let dir = ScratchDir::new("wal-torn");
        let path = dir.path().join("session.wal");
        let mut w = WalWriter::create(&path, &Value::Null, 1).expect("create");
        for n in 0..5 {
            w.append(&rec(n)).expect("append");
        }
        drop(w);
        // Tear the last record in half.
        let len = std::fs::metadata(&path).expect("meta").len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open");
        file.set_len(len - 9).expect("truncate");
        drop(file);

        let contents = read_wal(&path).expect("read survives tear");
        assert_eq!(contents.records.len(), 4);
        let tail = contents.torn_tail.expect("tail reported");
        assert!(tail.offset < len - 9);

        // Reopen truncates the tear and appending resumes cleanly.
        let (mut w, recovered) = WalWriter::open_append(&path, 1).expect("reopen");
        assert_eq!(recovered.records.len(), 4);
        assert_eq!(w.records(), 4);
        w.append(&rec(99)).expect("append after recovery");
        drop(w);
        let reread = read_wal(&path).expect("reread");
        assert!(reread.torn_tail.is_none());
        assert_eq!(reread.records.len(), 5);
        assert_eq!(reread.records[4], rec(99));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let dir = ScratchDir::new("wal-magic");
        let path = dir.path().join("session.wal");
        std::fs::write(&path, b"NOTAWAL\0garbage").expect("write");
        match read_wal(&path) {
            Err(CkptError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        match read_wal(&path) {
            Err(CkptError::SchemaMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, WAL_FORMAT_VERSION);
                assert_eq!(found, 99);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn flipping_any_byte_never_panics_and_keeps_a_valid_prefix() {
        let dir = ScratchDir::new("wal-fuzz");
        let path = dir.path().join("session.wal");
        let mut w = WalWriter::create(&path, &rec(1000), 1).expect("create");
        for n in 0..6 {
            w.append(&rec(n)).expect("append");
        }
        drop(w);
        let pristine = std::fs::read(&path).expect("read bytes");
        for i in 0..pristine.len() {
            let mut mutated = pristine.clone();
            mutated[i] ^= 0x40;
            std::fs::write(&path, &mutated).expect("write mutated");
            match read_wal(&path) {
                Ok(contents) => {
                    // Whatever survived must be a prefix of the original.
                    assert!(contents.records.len() <= 6, "flip at byte {i}");
                    for (n, r) in contents.records.iter().enumerate() {
                        assert_eq!(r, &rec(n as i64), "flip at byte {i}");
                    }
                }
                Err(CkptError::Corrupt { .. } | CkptError::SchemaMismatch { .. }) => {}
                Err(other) => panic!("unexpected error kind at byte {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_round_trip_and_corruption_detection() {
        let dir = ScratchDir::new("snap");
        let path = dir.path().join("session.snap");
        match read_snapshot(&path) {
            Err(CkptError::MissingSnapshot { .. }) => {}
            other => panic!("expected MissingSnapshot, got {other:?}"),
        }
        let state = rec(42);
        write_snapshot(&path, &state).expect("write");
        assert_eq!(read_snapshot(&path).expect("read"), state);
        // No temp residue after the rename.
        assert!(!path.with_extension("snap.tmp").exists());

        let mut bytes = std::fs::read(&path).expect("read bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write corrupted");
        match read_snapshot(&path) {
            Err(CkptError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn compaction_resets_the_log_but_keeps_it_appendable() {
        let dir = ScratchDir::new("wal-compact");
        let path = dir.path().join("session.wal");
        let mut w = WalWriter::create(&path, &rec(7), 2).expect("create");
        for n in 0..8 {
            w.append(&rec(n)).expect("append");
        }
        w.compact(&rec(8)).expect("compact");
        assert_eq!(w.records(), 0);
        w.append(&rec(100)).expect("append post-compact");
        w.sync().expect("sync");
        let contents = read_wal(&path).expect("read");
        assert_eq!(contents.header, rec(8));
        assert_eq!(contents.records, vec![rec(100)]);
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
