//! Site/system power policies.
//!
//! "A site has one or more HPC systems, site policies, and a power budget.
//! Each system is constrained under a derived system-level power budget"
//! (paper §3, Figure 1). The policy decides admission (does a job's
//! projected power fit?) and the per-job power budget the RM hands down to
//! the job-level runtime — the top half of the objective-translation chain.

use serde::{Deserialize, Serialize};

/// How the RM assigns power budgets to jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerAssignment {
    /// No per-job budget; jobs draw what they draw (admission still honours
    /// the system budget using the peak estimate).
    Unconstrained,
    /// Every allocated node is budgeted this many watts.
    PerNodeCap(f64),
    /// The system budget is divided across allocated nodes uniformly at each
    /// admission decision ("fair share" in watts).
    FairShare,
}

/// The system-level power policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemPowerPolicy {
    /// Total system power budget, watts (`None` = unlimited).
    pub system_budget_w: Option<f64>,
    /// Per-job assignment rule.
    pub assignment: PowerAssignment,
    /// Conservative per-node peak power estimate used for admission, watts.
    pub node_peak_estimate_w: f64,
    /// Idle node power estimate (power of nodes not allocated), watts.
    pub node_idle_estimate_w: f64,
}

impl SystemPowerPolicy {
    /// No power management at all (the baseline).
    pub fn unlimited() -> Self {
        SystemPowerPolicy {
            system_budget_w: None,
            assignment: PowerAssignment::Unconstrained,
            node_peak_estimate_w: 450.0,
            node_idle_estimate_w: 130.0,
        }
    }

    /// A system budget with the given assignment rule.
    pub fn budgeted(system_budget_w: f64, assignment: PowerAssignment) -> Self {
        assert!(system_budget_w > 0.0);
        SystemPowerPolicy {
            system_budget_w: Some(system_budget_w),
            assignment,
            node_peak_estimate_w: 450.0,
            node_idle_estimate_w: 130.0,
        }
    }

    /// Power the RM must reserve for a job on `n_nodes`, watts: the assigned
    /// budget when one exists, else the conservative peak estimate.
    pub fn job_reservation_w(&self, n_nodes: usize, current_free_w: f64) -> f64 {
        match self.assignment {
            PowerAssignment::Unconstrained => self.node_peak_estimate_w * n_nodes as f64,
            PowerAssignment::PerNodeCap(w) => w * n_nodes as f64,
            PowerAssignment::FairShare => {
                // Grant the job its node-proportional share of what is free,
                // floored to keep nodes above idle-viable power.
                (current_free_w).max(self.node_idle_estimate_w * n_nodes as f64)
            }
        }
    }

    /// The per-job budget handed to the runtime (None when unconstrained).
    pub fn job_budget_w(&self, n_nodes: usize, reservation_w: f64) -> Option<f64> {
        match self.assignment {
            PowerAssignment::Unconstrained => None,
            PowerAssignment::PerNodeCap(w) => Some(w * n_nodes as f64),
            PowerAssignment::FairShare => Some(reservation_w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_reserves_peak() {
        let p = SystemPowerPolicy::unlimited();
        assert_eq!(p.job_reservation_w(4, 0.0), 1800.0);
        assert_eq!(p.job_budget_w(4, 1800.0), None);
    }

    #[test]
    fn per_node_cap() {
        let p = SystemPowerPolicy::budgeted(10_000.0, PowerAssignment::PerNodeCap(300.0));
        assert_eq!(p.job_reservation_w(4, 9_000.0), 1200.0);
        assert_eq!(p.job_budget_w(4, 1200.0), Some(1200.0));
    }

    #[test]
    fn fair_share_floors_at_idle() {
        let p = SystemPowerPolicy::budgeted(10_000.0, PowerAssignment::FairShare);
        let r = p.job_reservation_w(4, 100.0);
        assert_eq!(r, 130.0 * 4.0);
    }

    #[test]
    #[should_panic]
    fn zero_budget_panics() {
        SystemPowerPolicy::budgeted(0.0, PowerAssignment::FairShare);
    }
}
