//! §4 ablations: the research-question experiments.
//!
//! - [`malleability`] (§4.1): how much does malleability buy the corridor
//!   manager, as a function of how often it may act (the EPOP block count)?
//! - [`static_variants`] (§4.2): offline/static co-tuning — do
//!   compiler-variant rankings survive a power cap?
//! - [`overprovisioning`] (§4.3): more nodes than power — where is the
//!   throughput optimum in fleet size under a fixed site budget?

use crate::cotune::simulate_app;
use pstack_apps::epop::EpopApp;
use pstack_apps::kernelmodel::{KernelApp, KernelConfig, KernelModel};
use pstack_apps::synthetic::{Profile, SyntheticApp};
use pstack_apps::workload::NodeCountRule;
use pstack_hwmodel::{NodeConfig, VariationModel};
use pstack_node::NodeManager;
use pstack_rm::{CorridorStrategy, Irm, JobSpec, PowerAssignment, Scheduler, SystemPowerPolicy};
use pstack_sim::{SeedTree, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

// ---------------------------------------------------------------- A1 ----

/// A1 row: corridor adherence vs redistribution granularity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MalleabilityRow {
    /// EPOP blocks per job (more blocks = more redistribution points).
    pub blocks: usize,
    /// Fraction of samples inside the corridor.
    pub in_corridor_fraction: f64,
    /// Redistribution actions taken.
    pub redistributions: usize,
    /// Makespan, seconds.
    pub makespan_s: f64,
}

/// A1: sweep the number of EPOP blocks (i.e. how often redistribution may
/// happen) and measure corridor adherence.
pub fn malleability(
    blocks_sweep: &[usize],
    n_nodes: usize,
    work: f64,
    seed: u64,
) -> Vec<MalleabilityRow> {
    let peak = n_nodes as f64 * 450.0;
    let corridor = (peak * 0.35, peak * 0.72);
    blocks_sweep
        .iter()
        .map(|&blocks| {
            let seeds = SeedTree::new(seed);
            let nodes = NodeManager::fleet(
                n_nodes,
                NodeConfig::server_default(),
                &VariationModel::none(),
                &seeds,
            );
            let mut irm = Irm::new(
                nodes,
                corridor,
                CorridorStrategy::NodeRedistribution,
                seeds.subtree("irm"),
            );
            irm.launch(
                EpopApp::uniform("a", work, blocks, NodeCountRule::Any),
                n_nodes / 2,
            );
            irm.launch(
                EpopApp::uniform("b", work, blocks, NodeCountRule::Any),
                n_nodes * 3 / 8,
            );
            let r = irm.run(SimDuration::from_secs(1), SimTime::from_secs(4 * 3600));
            MalleabilityRow {
                blocks,
                in_corridor_fraction: r.in_corridor_fraction,
                redistributions: r.redistributions,
                makespan_s: r.makespan.as_secs_f64(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- A2 ----

/// A2 row: one (variant, cap) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRow {
    /// Variant label (a compiler-flag-like static build choice).
    pub variant: String,
    /// Node cap applied, watts (0 = uncapped).
    pub cap_w: f64,
    /// Runtime, seconds.
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// A2: three "build variants" of the same kernel — a latency-optimized build
/// (compute-lean), a bandwidth-optimized build, and the default — evaluated
/// uncapped and capped. The interesting outcome is a ranking change.
pub fn static_variants(caps_w: &[f64], seed: u64) -> Vec<VariantRow> {
    // Variants differ in base speed and in how memory-hungry the generated
    // code is (vectorized builds are faster but burn bandwidth and power).
    let variants: Vec<(&str, KernelConfig)> = vec![
        (
            "O2-default",
            KernelConfig {
                tile_i: 32,
                tile_j: 32,
                tile_k: 32,
                interchange: pstack_apps::kernelmodel::Interchange::Ijk,
                unroll: 1,
                packing: false,
                threads: 16,
            },
        ),
        (
            "O3-vectorized",
            KernelConfig {
                tile_i: 64,
                tile_j: 64,
                tile_k: 32,
                interchange: pstack_apps::kernelmodel::Interchange::Ikj,
                unroll: 4,
                packing: false,
                threads: 16,
            },
        ),
        (
            "O3-blocked-packed",
            KernelConfig {
                tile_i: 64,
                tile_j: 32,
                tile_k: 32,
                interchange: pstack_apps::kernelmodel::Interchange::Ikj,
                unroll: 2,
                packing: true,
                threads: 16,
            },
        ),
    ];
    let model = KernelModel::polybench_large();
    let mut rows = Vec::new();
    for &cap in caps_w {
        for (name, cfg) in &variants {
            let app = KernelApp {
                model,
                config: *cfg,
            };
            let (t, e, _) = simulate_app(&app, 1, if cap > 0.0 { Some(cap) } else { None }, seed);
            rows.push(VariantRow {
                variant: name.to_string(),
                cap_w: cap,
                time_s: t,
                energy_j: e,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- A3 ----

/// A3 row: one fleet size under the fixed budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverprovisionRow {
    /// Fleet size (nodes powered).
    pub n_nodes: usize,
    /// Watts available per node under the budget.
    pub watts_per_node: f64,
    /// Jobs completed.
    pub completed: usize,
    /// Makespan, seconds.
    pub makespan_s: f64,
    /// Throughput, jobs/hour.
    pub jobs_per_hour: f64,
    /// Total work per kilojoule.
    pub work_per_kj: f64,
}

/// A strong-scaled wrapper: total work is fixed, so wider (power-starved)
/// allocations still shorten jobs — the premise of overprovisioning.
struct StrongScaled {
    inner: SyntheticApp,
}

impl pstack_apps::workload::AppModel for StrongScaled {
    fn name(&self) -> &str {
        "strong-scaled-synthetic"
    }
    fn workload(&self, n_nodes: usize) -> pstack_apps::workload::Workload {
        self.inner.workload(n_nodes).scaled(1.0 / n_nodes as f64)
    }
}

/// A3: fixed site budget, varying how many nodes it is spread across
/// (hardware overprovisioning, Patki et al.). Strong-scaled moldable jobs
/// can exploit extra (slower) nodes up to a point.
pub fn overprovisioning(
    fleet_sizes: &[usize],
    budget_w: f64,
    n_jobs: usize,
    work: f64,
    seed: u64,
) -> Vec<OverprovisionRow> {
    fleet_sizes
        .iter()
        .map(|&n_nodes| {
            let seeds = SeedTree::new(seed);
            let nodes = NodeManager::fleet(
                n_nodes,
                NodeConfig::server_default(),
                &VariationModel::none(),
                &seeds,
            );
            let mut policy = SystemPowerPolicy::budgeted(budget_w, PowerAssignment::FairShare);
            // Overprovisioned systems power unallocated nodes *down*; the
            // admission model reserves only a trickle for them.
            policy.node_idle_estimate_w = 15.0;
            let mut sched = Scheduler::new(nodes, policy, seeds.subtree("sched"));
            for i in 0..n_jobs {
                let app = StrongScaled {
                    inner: SyntheticApp::new(Profile::ComputeHeavy, work, 20),
                };
                sched.submit(JobSpec::moldable(
                    i as u64,
                    Arc::new(app),
                    1,
                    n_nodes,
                    SimTime::ZERO,
                ));
            }
            sched.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(24 * 3600));
            let m = sched.metrics();
            OverprovisionRow {
                n_nodes,
                watts_per_node: budget_w / n_nodes as f64,
                completed: m.completed,
                makespan_s: sched.now().as_secs_f64(),
                jobs_per_hour: m.jobs_per_hour,
                work_per_kj: if m.system_energy_j > 0.0 {
                    m.total_work / (m.system_energy_j / 1000.0)
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Render all three ablations.
pub fn render(a1: &[MalleabilityRow], a2: &[VariantRow], a3: &[OverprovisionRow]) -> String {
    let mut out = String::from(
        "ABLATION A1 (§4.1): corridor adherence vs redistribution granularity\n\
         blocks | in_corridor | redistributions | makespan_s\n",
    );
    for r in a1 {
        out.push_str(&format!(
            "{:>6} | {:>10.1}% | {:>15} | {:>10.0}\n",
            r.blocks,
            r.in_corridor_fraction * 100.0,
            r.redistributions,
            r.makespan_s
        ));
    }
    out.push_str(
        "\nABLATION A2 (§4.2): build-variant ranking under power caps\n\
         variant            | cap_W | time_s | energy_kJ\n",
    );
    for r in a2 {
        out.push_str(&format!(
            "{:<18} | {:>5.0} | {:>6.1} | {:>9.2}\n",
            r.variant,
            r.cap_w,
            r.time_s,
            r.energy_j / 1e3
        ));
    }
    out.push_str(
        "\nABLATION A3 (§4.3): overprovisioning under a fixed site budget\n\
         nodes | W/node | done | makespan_s | jobs/h | work/kJ\n",
    );
    for r in a3 {
        out.push_str(&format!(
            "{:>5} | {:>6.0} | {:>4} | {:>10.0} | {:>6.2} | {:>7.2}\n",
            r.n_nodes, r.watts_per_node, r.completed, r.makespan_s, r.jobs_per_hour, r.work_per_kj
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_blocks_no_worse_corridor() {
        let rows = malleability(&[2, 10], 8, 150.0, 3);
        assert!(
            rows[1].in_corridor_fraction >= rows[0].in_corridor_fraction - 0.05,
            "finer malleability should help: {:?}",
            rows
        );
        assert!(rows[1].redistributions >= rows[0].redistributions);
    }

    #[test]
    fn variant_ranking_can_shift_under_cap() {
        let rows = static_variants(&[0.0, 260.0], 1);
        // Uncapped: vectorized is fastest.
        let time = |v: &str, cap: f64| {
            rows.iter()
                .find(|r| r.variant == v && r.cap_w == cap)
                .unwrap()
                .time_s
        };
        assert!(time("O3-vectorized", 0.0) < time("O2-default", 0.0));
        // Under the cap every variant slows; the gap between the memory-lean
        // packed build and the vectorized build must narrow or flip.
        let gap_uncapped = time("O3-vectorized", 0.0) / time("O3-blocked-packed", 0.0);
        let gap_capped = time("O3-vectorized", 260.0) / time("O3-blocked-packed", 260.0);
        assert!(
            gap_capped >= gap_uncapped * 0.98,
            "cap should not favor the power-hungry build: {gap_uncapped} -> {gap_capped}"
        );
    }

    #[test]
    fn overprovisioning_has_interior_shape() {
        let rows = overprovisioning(&[4, 8], 4.0 * 450.0, 6, 60.0, 2);
        assert_eq!(rows[0].completed, 6);
        assert_eq!(rows[1].completed, 6);
        // More (power-starved) nodes still complete everything and change
        // the per-node power budget.
        assert!(rows[1].watts_per_node < rows[0].watts_per_node);
    }
}
