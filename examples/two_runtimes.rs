//! Two co-resident runtime systems: COUNTDOWN + MERIC (paper §3.2.7).
//!
//! The paper calls the coexistence of two tuners an open challenge: "a
//! communication layer ... which guarantees that both tools keep the
//! system's knowledge of which tool is in charge ... without creating a
//! conflict." This demo runs every coexistence mode — each tool alone, both
//! without coordination, both through the stacked frequency-override layer
//! this workspace implements, and both under plain ownership gating.
//!
//! Run with: `cargo run --release --example two_runtimes`

use powerstack::core::experiments::uc7;

fn main() {
    let result = uc7::run(4, 60, 1.0, 20200908);
    print!("{}", uc7::render(&result));
    println!(
        "\nreading the table:\n\
         - countdown-only saves energy in MPI phases at ~zero slowdown;\n\
         - meric-only saves energy in compute/memory regions (EDP objective);\n\
         - both-conflicting: both write the same knob; COUNTDOWN's restores\n\
           clobber MERIC's region settings and corrupt its measurements;\n\
         - both-coordinated: COUNTDOWN stacks a temporary MPI override under\n\
           MERIC's base settings (the communication layer) — savings compose;\n\
         - both-gated: the ownership arbiter blocks the second tool — safe,\n\
           but the synergy is forfeited."
    );
}
