//! Lock-order / schedule-invariance audit binary.
//!
//! Thin binary over [`pstack_bench::lockorder`]: explores all four tuning
//! drivers across the standard 16-seed × {1, 2, 4, 8}-worker adversarial
//! schedule grid, writes the `results/lockorder.{json,txt}` artifacts, and
//! exits nonzero unless every driver reproduced its baseline byte-for-byte
//! with an inversion-free, cycle-free, smell-free lock-order graph. The CI
//! `conc` stage runs this binary.

use pstack_bench::lockorder;
use pstack_sync::SeedGrid;

fn main() {
    pstack_analyze::startup_gate();

    let grid = SeedGrid::standard();
    let r = pstack_bench::traced("lockorder", |_tc| lockorder::run(&grid));
    pstack_bench::emit("lockorder", &lockorder::render(&r), &r);

    assert!(
        r.clean,
        "schedule explorer found a divergence, inversion, smell, cycle, or \
         undeclared site; see results/lockorder.json"
    );
}
