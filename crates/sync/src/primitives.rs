//! Drop-in, site-labelled wrappers over `std::sync`.
//!
//! Contracts shared by every wrapper:
//!
//! - **Site labels.** Every instance is constructed with a static label
//!   from [`crate::sites`]; the label is what shows up in the lock-order
//!   graph, the hierarchy lint (PSA017), and smell reports.
//! - **Poison tolerance.** A panicked holder never cascades: `lock`,
//!   `read`, `write`, `get_mut`, and `into_inner` all recover the inner
//!   value via [`PoisonError::into_inner`]. The workspace's drivers treat a
//!   worker panic as that evaluation's problem, not the ledger's — the data
//!   under the lock is plain-old-data that stays structurally valid.
//! - **Chaos instrumentation.** While [`crate::chaos`] is armed,
//!   acquisitions perturb the schedule (deterministic seeded yields) and
//!   record into the global graph. Disarmed, each operation adds a single
//!   relaxed atomic load.
//!
//! [`PoisonError::into_inner`]: std::sync::PoisonError::into_inner

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::chaos;

// ---------------------------------------------------------------------------
// SyncMutex
// ---------------------------------------------------------------------------

/// A site-labelled, poison-tolerant, chaos-instrumented [`Mutex`].
#[derive(Debug, Default)]
pub struct SyncMutex<T> {
    site: &'static str,
    inner: Mutex<T>,
}

impl<T> SyncMutex<T> {
    /// Wrap `value` under the site label `site` (see [`crate::sites`]).
    pub const fn new(site: &'static str, value: T) -> Self {
        SyncMutex {
            site,
            inner: Mutex::new(value),
        }
    }

    /// The site label this mutex was declared with.
    pub fn site(&self) -> &'static str {
        self.site
    }

    /// Acquire the lock. Never panics on poisoning — the inner value is
    /// recovered. Under chaos, perturbs the schedule first and records the
    /// acquisition into the lock-order graph.
    pub fn lock(&self) -> SyncMutexGuard<'_, T> {
        if chaos::armed() {
            chaos::maybe_perturb(self.site);
        }
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let held = chaos::on_acquired(self.site);
        SyncMutexGuard {
            guard: Some(guard),
            held,
        }
    }

    /// Mutable access without locking (requires `&mut self`, so no other
    /// thread can hold the lock). Poison-tolerant.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value. Poison-tolerant.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard for [`SyncMutex::lock`]; releasing it unwinds the per-thread held
/// stack and flags long critical sections while chaos is armed.
///
/// The inner guard is an `Option` only so [`SyncCondvar::wait`] can move it
/// out past this type's `Drop` impl; it is `Some` for the guard's entire
/// user-visible lifetime.
pub struct SyncMutexGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    held: Option<chaos::HeldToken>,
}

impl<T> Deref for SyncMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard moved out by wait()")
    }
}

impl<T> DerefMut for SyncMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard moved out by wait()")
    }
}

impl<T> Drop for SyncMutexGuard<'_, T> {
    fn drop(&mut self) {
        chaos::on_released(self.held.take());
    }
}

// ---------------------------------------------------------------------------
// SyncRwLock
// ---------------------------------------------------------------------------

/// A site-labelled, poison-tolerant, chaos-instrumented [`RwLock`]. Both
/// read and write acquisitions participate in the lock-order graph —
/// reader/writer inversions deadlock just as well as writer/writer ones.
#[derive(Debug, Default)]
pub struct SyncRwLock<T> {
    site: &'static str,
    inner: RwLock<T>,
}

impl<T> SyncRwLock<T> {
    /// Wrap `value` under the site label `site`.
    pub const fn new(site: &'static str, value: T) -> Self {
        SyncRwLock {
            site,
            inner: RwLock::new(value),
        }
    }

    /// The site label this lock was declared with.
    pub fn site(&self) -> &'static str {
        self.site
    }

    /// Acquire a shared read guard (poison-tolerant, instrumented).
    pub fn read(&self) -> SyncRwLockReadGuard<'_, T> {
        if chaos::armed() {
            chaos::maybe_perturb(self.site);
        }
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let held = chaos::on_acquired(self.site);
        SyncRwLockReadGuard { guard, held }
    }

    /// Acquire the exclusive write guard (poison-tolerant, instrumented).
    pub fn write(&self) -> SyncRwLockWriteGuard<'_, T> {
        if chaos::armed() {
            chaos::maybe_perturb(self.site);
        }
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let held = chaos::on_acquired(self.site);
        SyncRwLockWriteGuard { guard, held }
    }

    /// Mutable access without locking. Poison-tolerant.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value. Poison-tolerant.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared guard for [`SyncRwLock::read`].
pub struct SyncRwLockReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    held: Option<chaos::HeldToken>,
}

impl<T> Deref for SyncRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for SyncRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        chaos::on_released(self.held.take());
    }
}

/// Exclusive guard for [`SyncRwLock::write`].
pub struct SyncRwLockWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    held: Option<chaos::HeldToken>,
}

impl<T> Deref for SyncRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for SyncRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for SyncRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        chaos::on_released(self.held.take());
    }
}

// ---------------------------------------------------------------------------
// SyncCondvar
// ---------------------------------------------------------------------------

/// A site-labelled [`Condvar`] over [`SyncMutex`] guards. Waiting while
/// holding *any other* instrumented lock is recorded as a
/// [`held-across-wait`](crate::graph::SmellKind::HeldAcrossWait) smell —
/// the classic lost-wakeup/deadlock shape the wrapper exists to catch.
#[derive(Debug, Default)]
pub struct SyncCondvar {
    site: &'static str,
    inner: Condvar,
}

impl SyncCondvar {
    /// A condvar under the site label `site`.
    pub const fn new(site: &'static str) -> Self {
        SyncCondvar {
            site,
            inner: Condvar::new(),
        }
    }

    /// The site label this condvar was declared with.
    pub fn site(&self) -> &'static str {
        self.site
    }

    /// Block on the condvar, releasing (and on wake re-acquiring) the
    /// guard's mutex. Poison-tolerant; smell-checked.
    pub fn wait<'a, T>(&self, mut guard: SyncMutexGuard<'a, T>) -> SyncMutexGuard<'a, T> {
        chaos::on_wait(self.site, guard.held.as_ref());
        // The OS-level wait releases the mutex: unwind the held stack for
        // the duration so concurrent acquisitions see the truth.
        let entry = guard.held.take();
        chaos::on_released(entry);
        let inner = guard.guard.take().expect("guard moved out by wait()");
        drop(guard); // held already unwound; releases nothing
        let woken = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        let held = chaos::on_acquired(self.site_of_guard());
        SyncMutexGuard {
            guard: Some(woken),
            held,
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    fn site_of_guard(&self) -> &'static str {
        // Re-acquisition after a wait is attributed to the condvar's own
        // site: the interesting order fact is "woke up inside <site>".
        self.site
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! sync_atomic {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            site: &'static str,
            inner: $inner,
        }

        impl $name {
            /// Wrap `value` under the site label `site`. `const`, so the
            /// wrapper can back `static` counters.
            pub const fn new(site: &'static str, value: $prim) -> Self {
                $name { site, inner: <$inner>::new(value) }
            }

            /// The site label this atomic was declared with.
            pub fn site(&self) -> &'static str {
                self.site
            }

            /// Atomic load (instrumented under chaos).
            pub fn load(&self, order: Ordering) -> $prim {
                chaos::on_atomic(self.site);
                self.inner.load(order)
            }

            /// Atomic store (instrumented under chaos).
            pub fn store(&self, value: $prim, order: Ordering) {
                chaos::on_atomic(self.site);
                self.inner.store(value, order)
            }

            /// Atomic fetch-add (instrumented under chaos).
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                chaos::on_atomic(self.site);
                self.inner.fetch_add(value, order)
            }

            /// Atomic compare-exchange (instrumented under chaos).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                chaos::on_atomic(self.site);
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Non-atomic read through `&mut self`.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }
        }
    };
}

sync_atomic!(
    /// A site-labelled, chaos-instrumented [`AtomicUsize`].
    SyncAtomicUsize,
    AtomicUsize,
    usize
);
sync_atomic!(
    /// A site-labelled, chaos-instrumented [`AtomicU64`].
    SyncAtomicU64,
    AtomicU64,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn mutex_recovers_from_poisoning() {
        let m = std::sync::Arc::new(SyncMutex::new("test.poison", 41usize));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std Mutex would panic here; the wrapper recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        let Ok(mut m) = std::sync::Arc::try_unwrap(m) else {
            panic!("sole owner")
        };
        assert_eq!(*m.get_mut(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_recovers_from_poisoning() {
        let l = std::sync::Arc::new(SyncRwLock::new("test.rw_poison", vec![1, 2]));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn armed_nesting_is_recorded_with_sites() {
        let _c = crate::arm(11);
        graph::reset();
        let outer = SyncMutex::new("test.outer", ());
        let inner = SyncRwLock::new("test.inner", 0u32);
        {
            let _o = outer.lock();
            let _i = inner.write();
        }
        {
            let _i = inner.read();
        }
        let snap = graph::snapshot();
        assert_eq!(snap.edges.get(&("test.outer", "test.inner")), Some(&1));
        assert_eq!(snap.nodes.get("test.inner"), Some(&2));
        assert!(snap.inversions.is_empty());
        assert_eq!(snap.cycle(), None);
        graph::reset();
    }

    #[test]
    fn abba_nesting_is_flagged_as_inversion_and_cycle() {
        let _c = crate::arm(12);
        graph::reset();
        let a = SyncMutex::new("test.a", ());
        let b = SyncMutex::new("test.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // single-threaded, so no deadlock — but ABBA
        }
        let snap = graph::snapshot();
        assert_eq!(
            snap.inversions,
            vec![graph::Inversion {
                a: "test.a",
                b: "test.b"
            }]
        );
        assert!(snap.cycle().is_some());
        graph::reset();
    }

    #[test]
    fn condvar_wait_while_holding_another_lock_is_a_smell() {
        let _c = crate::arm(13);
        graph::reset();
        let other = std::sync::Arc::new(SyncMutex::new("test.held_elsewhere", ()));
        let m = std::sync::Arc::new(SyncMutex::new("test.cv_mutex", ()));
        let cv = std::sync::Arc::new(SyncCondvar::new("test.cv"));
        let (other2, m2, cv2) = (
            std::sync::Arc::clone(&other),
            std::sync::Arc::clone(&m),
            std::sync::Arc::clone(&cv),
        );
        // One unconditional wait (spurious wakeups just end it early) while
        // holding an unrelated lock — exactly the smell the wrapper flags.
        let waiter = std::thread::spawn(move || {
            let _held = other2.lock();
            let guard = m2.lock();
            drop(cv2.wait(guard));
        });
        while !waiter.is_finished() {
            cv.notify_all();
            std::thread::yield_now();
        }
        waiter.join().expect("waiter exits");
        let snap = graph::snapshot();
        assert!(
            snap.smells
                .iter()
                .any(|s| s.kind == graph::SmellKind::HeldAcrossWait
                    && s.site == "test.cv"
                    && s.held.contains(&"test.held_elsewhere")),
            "expected a held-across-wait smell: {:?}",
            snap.smells
        );
        graph::reset();
    }

    #[test]
    fn atomics_count_without_joining_the_held_stack() {
        let _c = crate::arm(14);
        graph::reset();
        static COUNTER: SyncAtomicUsize = SyncAtomicUsize::new("test.counter", 0);
        let m = SyncMutex::new("test.atomic_outer", ());
        {
            let _g = m.lock();
            COUNTER.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(COUNTER.load(Ordering::Relaxed), 1);
        let snap = graph::snapshot();
        // The atomic is counted but never appears as an edge endpoint: it
        // cannot be "held".
        assert!(snap.nodes.get("test.counter").copied().unwrap_or(0) >= 2);
        assert!(snap
            .edges
            .keys()
            .all(|(a, b)| *a != "test.counter" && *b != "test.counter"));
        graph::reset();
    }

    #[test]
    fn atomic_u64_and_compare_exchange_work() {
        let a = SyncAtomicU64::new("test.u64", 5);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(
            a.compare_exchange(7, 9, Ordering::SeqCst, Ordering::SeqCst),
            Ok(7)
        );
        assert_eq!(a.load(Ordering::Relaxed), 9);
        a.store(1, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(a.site(), "test.u64");
    }
}
