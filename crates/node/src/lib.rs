//! # pstack-node — node-level power management
//!
//! The node layer of the PowerStack (paper Table 2: "PlatformIO, Variorum,
//! Libmsr, PowerAPI, x86_adapt, Cpufreq"): a safe, uniform control/telemetry
//! surface over the simulated hardware that upper layers (runtimes, the
//! resource manager) actuate without touching raw model state.
//!
//! - [`signals`]: a Variorum-style typed signal catalog (`read(signal)`).
//! - [`manager`]: [`NodeManager`] — knob setters with bounds/ownership checks,
//!   power-history recording, per-step accounting.
//! - [`cursor`]: [`WorkloadCursor`] — a per-node cursor over an application's
//!   phase sequence, the execution primitive job runtimes drive.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod cursor;
pub mod invariants;
pub mod manager;
pub mod signals;

pub use cursor::WorkloadCursor;
pub use invariants::invariants;
pub use manager::{NodeManager, NodeStepReport};
pub use signals::Signal;
