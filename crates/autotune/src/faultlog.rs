//! The fault log: what was injected and what was survived.
//!
//! Every resilient tuning run ([`crate::Tuner::run_resilient`] /
//! [`crate::Tuner::run_parallel_resilient`]) and every faulted stack
//! scenario (`pstack-faults`) records the faults it saw into a [`FaultLog`],
//! which travels inside [`crate::TuneReport`] so a report always states the
//! conditions it was produced under. The log keeps a bounded event list
//! (first [`FaultLog::MAX_EVENTS`] events verbatim) plus exact counters per
//! [`FaultKind`], so even fault storms serialize compactly and two identical
//! seeded runs render byte-identical logs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kinds of fault and fault-response events a run can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A telemetry sample was perturbed by injected measurement noise.
    TelemetryNoise,
    /// A telemetry sample was dropped entirely.
    DroppedSample,
    /// A knob write (power cap / frequency) silently failed to apply.
    StuckKnob,
    /// A knob write applied late (after the injected lag).
    LaggedKnob,
    /// A runtime agent crashed mid-job.
    AgentCrash,
    /// A crashed runtime agent restarted.
    AgentRestart,
    /// The RM dropped the power budget (§3.2.5 emergency power reduction).
    EmergencyDrop,
    /// An evaluation failed outright.
    EvalFailure,
    /// An evaluation exceeded its (virtual) time allowance.
    EvalTimeout,
    /// An evaluation produced a non-finite objective.
    NonFiniteObjective,
    /// A failed evaluation was retried after backoff.
    Retry,
    /// A recorded observation looked like a measurement outlier.
    Outlier,
    /// A configuration exhausted its retry budget and was quarantined.
    Quarantined,
    /// A quarantined configuration was re-suggested and skipped.
    QuarantineSkip,
    /// The search degraded from its primary algorithm to the fallback.
    SearchDegraded,
    /// The run stopped early because the fault budget was exhausted.
    RunAbandoned,
}

impl FaultKind {
    /// Every kind, in the order counters render.
    pub const ALL: [FaultKind; 16] = [
        FaultKind::TelemetryNoise,
        FaultKind::DroppedSample,
        FaultKind::StuckKnob,
        FaultKind::LaggedKnob,
        FaultKind::AgentCrash,
        FaultKind::AgentRestart,
        FaultKind::EmergencyDrop,
        FaultKind::EvalFailure,
        FaultKind::EvalTimeout,
        FaultKind::NonFiniteObjective,
        FaultKind::Retry,
        FaultKind::Outlier,
        FaultKind::Quarantined,
        FaultKind::QuarantineSkip,
        FaultKind::SearchDegraded,
        FaultKind::RunAbandoned,
    ];

    /// Stable snake_case name (used in rendering and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TelemetryNoise => "telemetry_noise",
            FaultKind::DroppedSample => "dropped_sample",
            FaultKind::StuckKnob => "stuck_knob",
            FaultKind::LaggedKnob => "lagged_knob",
            FaultKind::AgentCrash => "agent_crash",
            FaultKind::AgentRestart => "agent_restart",
            FaultKind::EmergencyDrop => "emergency_drop",
            FaultKind::EvalFailure => "eval_failure",
            FaultKind::EvalTimeout => "eval_timeout",
            FaultKind::NonFiniteObjective => "non_finite_objective",
            FaultKind::Retry => "retry",
            FaultKind::Outlier => "outlier",
            FaultKind::Quarantined => "quarantined",
            FaultKind::QuarantineSkip => "quarantine_skip",
            FaultKind::SearchDegraded => "search_degraded",
            FaultKind::RunAbandoned => "run_abandoned",
        }
    }

    /// Inverse of [`name`](Self::name), for checkpoint replay.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded fault event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What happened.
    pub kind: FaultKind,
    /// Where/when it happened, e.g. `"eval 12 attempt 1"` or `"t=42s"`.
    pub at: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Exact per-kind tallies (every event counts here, including those beyond
/// the bounded event list).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Telemetry samples perturbed by noise.
    pub telemetry_noise: usize,
    /// Telemetry samples dropped.
    pub dropped_samples: usize,
    /// Knob writes that silently failed.
    pub stuck_knobs: usize,
    /// Knob writes that applied late.
    pub lagged_knobs: usize,
    /// Runtime-agent crashes.
    pub agent_crashes: usize,
    /// Runtime-agent restarts.
    pub agent_restarts: usize,
    /// RM emergency budget drops.
    pub emergency_drops: usize,
    /// Failed evaluations (individual attempts).
    pub eval_failures: usize,
    /// Timed-out evaluations (individual attempts).
    pub eval_timeouts: usize,
    /// Evaluations returning non-finite objectives.
    pub non_finite: usize,
    /// Retries performed (with backoff).
    pub retries: usize,
    /// Observations flagged as outliers.
    pub outliers: usize,
    /// Configurations quarantined after exhausting retries.
    pub quarantined: usize,
    /// Suggestions skipped because the configuration was quarantined.
    pub quarantine_skips: usize,
    /// Search degradations (primary → fallback).
    pub search_degradations: usize,
    /// Runs abandoned on an exhausted fault budget.
    pub abandoned: usize,
}

impl FaultCounts {
    /// Tally for one kind.
    pub fn get(&self, kind: FaultKind) -> usize {
        match kind {
            FaultKind::TelemetryNoise => self.telemetry_noise,
            FaultKind::DroppedSample => self.dropped_samples,
            FaultKind::StuckKnob => self.stuck_knobs,
            FaultKind::LaggedKnob => self.lagged_knobs,
            FaultKind::AgentCrash => self.agent_crashes,
            FaultKind::AgentRestart => self.agent_restarts,
            FaultKind::EmergencyDrop => self.emergency_drops,
            FaultKind::EvalFailure => self.eval_failures,
            FaultKind::EvalTimeout => self.eval_timeouts,
            FaultKind::NonFiniteObjective => self.non_finite,
            FaultKind::Retry => self.retries,
            FaultKind::Outlier => self.outliers,
            FaultKind::Quarantined => self.quarantined,
            FaultKind::QuarantineSkip => self.quarantine_skips,
            FaultKind::SearchDegraded => self.search_degradations,
            FaultKind::RunAbandoned => self.abandoned,
        }
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::TelemetryNoise => self.telemetry_noise += 1,
            FaultKind::DroppedSample => self.dropped_samples += 1,
            FaultKind::StuckKnob => self.stuck_knobs += 1,
            FaultKind::LaggedKnob => self.lagged_knobs += 1,
            FaultKind::AgentCrash => self.agent_crashes += 1,
            FaultKind::AgentRestart => self.agent_restarts += 1,
            FaultKind::EmergencyDrop => self.emergency_drops += 1,
            FaultKind::EvalFailure => self.eval_failures += 1,
            FaultKind::EvalTimeout => self.eval_timeouts += 1,
            FaultKind::NonFiniteObjective => self.non_finite += 1,
            FaultKind::Retry => self.retries += 1,
            FaultKind::Outlier => self.outliers += 1,
            FaultKind::Quarantined => self.quarantined += 1,
            FaultKind::QuarantineSkip => self.quarantine_skips += 1,
            FaultKind::SearchDegraded => self.search_degradations += 1,
            FaultKind::RunAbandoned => self.abandoned += 1,
        }
    }

    /// Sum over every kind.
    pub fn total(&self) -> usize {
        FaultKind::ALL.iter().map(|&k| self.get(k)).sum()
    }
}

/// The log of everything injected into (and survived by) one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// The first [`FaultLog::MAX_EVENTS`] events, in occurrence order.
    pub events: Vec<FaultEvent>,
    /// Exact tallies over *all* events, bounded or not.
    pub counts: FaultCounts,
    /// Total virtual backoff time spent on retries, seconds.
    pub total_backoff_s: f64,
}

impl FaultLog {
    /// Events kept verbatim; beyond this only the counters grow.
    pub const MAX_EVENTS: usize = 256;

    /// Empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Record an event (kept verbatim while under the event cap; always
    /// counted).
    pub fn record(&mut self, kind: FaultKind, at: impl Into<String>, detail: impl Into<String>) {
        if self.events.len() < Self::MAX_EVENTS {
            self.events.push(FaultEvent {
                kind,
                at: at.into(),
                detail: detail.into(),
            });
        }
        self.counts.bump(kind);
    }

    /// Count an event without storing it (for high-frequency faults like
    /// per-sample telemetry noise).
    pub fn note(&mut self, kind: FaultKind) {
        self.counts.bump(kind);
    }

    /// Count `n` events of one kind without storing them.
    pub fn note_n(&mut self, kind: FaultKind, n: usize) {
        for _ in 0..n {
            self.counts.bump(kind);
        }
    }

    /// Fold another log into this one (events concatenate up to the cap;
    /// counters and backoff add).
    pub fn merge(&mut self, other: &FaultLog) {
        for e in &other.events {
            if self.events.len() >= Self::MAX_EVENTS {
                break;
            }
            self.events.push(e.clone());
        }
        for kind in FaultKind::ALL {
            for _ in 0..other.counts.get(kind) {
                self.counts.bump(kind);
            }
        }
        self.total_backoff_s += other.total_backoff_s;
    }

    /// Whether anything at all was injected or responded to.
    pub fn is_clean(&self) -> bool {
        self.counts.total() == 0
    }

    /// One-line summary: nonzero counters only, in [`FaultKind::ALL`] order.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "no faults injected".to_string();
        }
        let parts: Vec<String> = FaultKind::ALL
            .iter()
            .filter(|&&k| self.counts.get(k) > 0)
            .map(|&k| format!("{}={}", k.name(), self.counts.get(k)))
            .collect();
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_and_stores() {
        let mut log = FaultLog::new();
        log.record(FaultKind::EvalFailure, "eval 0 attempt 0", "injected");
        log.record(FaultKind::Retry, "eval 0 attempt 1", "backoff 0.5s");
        log.note(FaultKind::TelemetryNoise);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.counts.eval_failures, 1);
        assert_eq!(log.counts.retries, 1);
        assert_eq!(log.counts.telemetry_noise, 1);
        assert_eq!(log.counts.total(), 3);
        assert!(!log.is_clean());
    }

    #[test]
    fn event_list_is_bounded_but_counts_are_exact() {
        let mut log = FaultLog::new();
        for i in 0..(FaultLog::MAX_EVENTS + 50) {
            log.record(FaultKind::DroppedSample, format!("sample {i}"), "dropped");
        }
        assert_eq!(log.events.len(), FaultLog::MAX_EVENTS);
        assert_eq!(log.counts.dropped_samples, FaultLog::MAX_EVENTS + 50);
    }

    #[test]
    fn summary_lists_nonzero_kinds_in_order() {
        let mut log = FaultLog::new();
        log.note(FaultKind::StuckKnob);
        log.note(FaultKind::StuckKnob);
        log.note(FaultKind::AgentCrash);
        assert_eq!(log.summary(), "stuck_knob=2 agent_crash=1");
        assert_eq!(FaultLog::new().summary(), "no faults injected");
    }

    #[test]
    fn merge_adds_counts_and_backoff() {
        let mut a = FaultLog::new();
        a.record(FaultKind::EvalTimeout, "eval 1", "slow");
        a.total_backoff_s = 1.0;
        let mut b = FaultLog::new();
        b.record(FaultKind::Quarantined, "cfg [0, 1]", "3 attempts failed");
        b.total_backoff_s = 2.5;
        a.merge(&b);
        assert_eq!(a.counts.eval_timeouts, 1);
        assert_eq!(a.counts.quarantined, 1);
        assert_eq!(a.events.len(), 2);
        assert!((a.total_backoff_s - 3.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips() {
        let mut log = FaultLog::new();
        log.record(FaultKind::SearchDegraded, "eval 20", "forest -> random");
        let json = serde_json::to_string_pretty(&log).unwrap();
        let back: FaultLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn all_kinds_have_unique_names() {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }
}
