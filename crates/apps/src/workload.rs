//! The common application representation: phase sequences.
//!
//! Every application model reduces to a [`Workload`]: an ordered list of
//! [`Phase`]s, each with a name (its instrumented region, MERIC-style), a
//! hardware phase mixture, and an amount of per-node work. Work is measured in
//! *reference node-seconds*: one unit takes one second on a node at the
//! reference configuration (2.4 GHz, full duty, nominal uncore).

use pstack_hwmodel::PhaseMix;
use serde::{Deserialize, Serialize};

/// One phase of execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Region name (instrumentation label), e.g. `"assemble"`, `"mpi_allreduce"`.
    pub region: String,
    /// Hardware characteristics of the phase.
    pub mix: PhaseMix,
    /// Per-node work in reference node-seconds.
    pub work: f64,
}

impl Phase {
    /// Construct a phase.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite work.
    pub fn new(region: impl Into<String>, mix: PhaseMix, work: f64) -> Self {
        assert!(
            work.is_finite() && work > 0.0,
            "phase work must be positive"
        );
        Phase {
            region: region.into(),
            mix,
            work,
        }
    }
}

/// A full application run: an ordered phase sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    phases: Vec<Phase>,
}

impl Workload {
    /// Empty workload (build up with [`Workload::push`]).
    pub fn new() -> Self {
        Workload { phases: Vec::new() }
    }

    /// Build from a phase list.
    pub fn from_phases(phases: Vec<Phase>) -> Self {
        Workload { phases }
    }

    /// Append a phase.
    pub fn push(&mut self, phase: Phase) -> &mut Self {
        self.phases.push(phase);
        self
    }

    /// Append `iterations` copies of a phase group (a loop nest).
    pub fn repeat(&mut self, group: &[Phase], iterations: usize) -> &mut Self {
        for _ in 0..iterations {
            self.phases.extend_from_slice(group);
        }
        self
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when the workload has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total per-node work, reference node-seconds.
    pub fn total_work(&self) -> f64 {
        self.phases.iter().map(|p| p.work).sum()
    }

    /// Per-node work spent in regions whose mix is predominantly `kind`-bound.
    pub fn work_by_dominant(&self, kind: pstack_hwmodel::PhaseKind) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.mix.dominant() == kind)
            .map(|p| p.work)
            .sum()
    }

    /// Distinct region names, in first-appearance order.
    pub fn regions(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.phases {
            if !out.contains(&p.region.as_str()) {
                out.push(&p.region);
            }
        }
        out
    }

    /// Scale every phase's work by `factor` (strong-scaling over nodes).
    pub fn scaled(&self, factor: f64) -> Workload {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive");
        Workload {
            phases: self
                .phases
                .iter()
                .map(|p| Phase {
                    region: p.region.clone(),
                    mix: p.mix.clone(),
                    work: p.work * factor,
                })
                .collect(),
        }
    }
}

/// Valid node/task counts for a job (the paper's moldability constraints;
/// e.g. LULESH requires a cubic number of tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeCountRule {
    /// Any positive count.
    Any,
    /// Powers of two only.
    PowerOfTwo,
    /// Perfect cubes only (LULESH-style).
    Cube,
    /// Exactly this count (non-moldable).
    Exactly(usize),
}

impl NodeCountRule {
    /// Whether `n` nodes is a legal allocation.
    pub fn allows(self, n: usize) -> bool {
        if n == 0 {
            return false;
        }
        match self {
            NodeCountRule::Any => true,
            NodeCountRule::PowerOfTwo => n.is_power_of_two(),
            NodeCountRule::Cube => {
                let r = (n as f64).cbrt().round() as usize;
                r * r * r == n
            }
            NodeCountRule::Exactly(k) => n == k,
        }
    }

    /// Largest legal count at or below `n`, if any.
    pub fn largest_at_or_below(self, n: usize) -> Option<usize> {
        (1..=n).rev().find(|&k| self.allows(k))
    }

    /// Smallest legal count at or above `n`, searching up to `limit`.
    pub fn smallest_at_or_above(self, n: usize, limit: usize) -> Option<usize> {
        (n.max(1)..=limit).find(|&k| self.allows(k))
    }
}

/// An application model: produces a workload for a given node count.
pub trait AppModel {
    /// Human-readable application name.
    fn name(&self) -> &str;

    /// The per-node workload when run on `n_nodes` nodes.
    ///
    /// Implementations decide their scaling: strong-scaled apps divide total
    /// work by `n_nodes` and grow communication; weak-scaled apps keep
    /// per-node work constant.
    fn workload(&self, n_nodes: usize) -> Workload;

    /// Legal node counts.
    fn node_rule(&self) -> NodeCountRule {
        NodeCountRule::Any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_hwmodel::PhaseKind;

    fn mix(kind: PhaseKind) -> PhaseMix {
        PhaseMix::pure(kind)
    }

    #[test]
    fn build_and_total() {
        let mut w = Workload::new();
        w.push(Phase::new("a", mix(PhaseKind::ComputeBound), 2.0));
        w.push(Phase::new("b", mix(PhaseKind::CommBound), 1.0));
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_work(), 3.0);
        assert_eq!(w.regions(), vec!["a", "b"]);
    }

    #[test]
    fn repeat_builds_loops() {
        let body = [
            Phase::new("spmv", mix(PhaseKind::MemoryBound), 0.5),
            Phase::new("allreduce", mix(PhaseKind::CommBound), 0.1),
        ];
        let mut w = Workload::new();
        w.repeat(&body, 10);
        assert_eq!(w.len(), 20);
        assert!((w.total_work() - 6.0).abs() < 1e-12);
        assert_eq!(w.regions(), vec!["spmv", "allreduce"]);
    }

    #[test]
    fn work_by_dominant_kind() {
        let mut w = Workload::new();
        w.push(Phase::new("a", mix(PhaseKind::ComputeBound), 2.0));
        w.push(Phase::new("b", mix(PhaseKind::CommBound), 1.0));
        w.push(Phase::new("c", mix(PhaseKind::ComputeBound), 3.0));
        assert_eq!(w.work_by_dominant(PhaseKind::ComputeBound), 5.0);
        assert_eq!(w.work_by_dominant(PhaseKind::CommBound), 1.0);
        assert_eq!(w.work_by_dominant(PhaseKind::IoBound), 0.0);
    }

    #[test]
    fn scaling() {
        let mut w = Workload::new();
        w.push(Phase::new("a", mix(PhaseKind::ComputeBound), 4.0));
        let half = w.scaled(0.5);
        assert_eq!(half.total_work(), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_work_phase_panics() {
        Phase::new("a", mix(PhaseKind::ComputeBound), 0.0);
    }

    #[test]
    fn node_count_rules() {
        assert!(NodeCountRule::Any.allows(17));
        assert!(!NodeCountRule::Any.allows(0));
        assert!(NodeCountRule::PowerOfTwo.allows(16));
        assert!(!NodeCountRule::PowerOfTwo.allows(12));
        assert!(NodeCountRule::Cube.allows(27));
        assert!(NodeCountRule::Cube.allows(1));
        assert!(!NodeCountRule::Cube.allows(9));
        assert!(NodeCountRule::Exactly(4).allows(4));
        assert!(!NodeCountRule::Exactly(4).allows(5));
    }

    #[test]
    fn node_count_rounding() {
        assert_eq!(NodeCountRule::Cube.largest_at_or_below(30), Some(27));
        assert_eq!(NodeCountRule::Cube.smallest_at_or_above(28, 100), Some(64));
        assert_eq!(NodeCountRule::PowerOfTwo.largest_at_or_below(12), Some(8));
        assert_eq!(NodeCountRule::Cube.largest_at_or_below(0), None);
        assert_eq!(NodeCountRule::Cube.smallest_at_or_above(65, 100), None);
    }
}
