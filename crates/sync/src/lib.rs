//! # pstack-sync — the instrumented synchronization layer
//!
//! The PowerStack's core claim is safe *concurrent* coordination across
//! layers (RM ↔ GEOPM ↔ runtime agents), and this workspace has real
//! shared-state concurrency to match: the `run_parallel*` worker pools and
//! their slot vectors, the eval-cache/quarantine ledgers, the bounded trace
//! ring, WAL appends, and the session supervisor. None of that should rely
//! on raw `std::sync` primitives sprinkled across crates — this crate is
//! the single, auditable home for synchronization in library code
//! (`pstack-analyze`'s PSA018 rejects raw primitives anywhere else).
//!
//! Three pieces, in the spirit of loom/TSan but pure-Rust and offline:
//!
//! - [`primitives`]: drop-in [`SyncMutex`]/[`SyncRwLock`]/[`SyncCondvar`]/
//!   [`SyncAtomicUsize`]/[`SyncAtomicU64`] wrappers over `std::sync`. Every
//!   instance carries a static *site label* (see [`sites`]). Locking is
//!   **poison-tolerant** by construction: a panicked worker never cascades
//!   a `PoisonError` panic into an unrelated thread — the guard recovers
//!   the inner value (`PoisonError::into_inner`), matching the workspace
//!   rule that each evaluation's outcome is independent of its neighbours.
//! - [`chaos`]: a process-wide, seed-armed perturbation mode. While armed
//!   (RAII [`ChaosGuard`](chaos::ChaosGuard)), every acquisition records
//!   into a per-thread lock stack and the global lock-order
//!   [`graph`], detects lock-order inversions and
//!   held-across-[`Condvar`](std::sync::Condvar)/long-critical-section
//!   smells, and injects deterministic seeded yields/backoff so different
//!   seeds exercise genuinely different thread interleavings. Disarmed
//!   (the default), the overhead is one relaxed atomic load per operation.
//! - [`explore`]: the deterministic schedule explorer — re-run a driver
//!   across a seeded grid of adversarial yield schedules × worker counts,
//!   assert every arm reproduces the baseline artifact byte-for-byte, and
//!   export the observed lock-order graph (the `results/lockorder.json`
//!   artifact).
//!
//! The declared lock hierarchy lives in [`sites`]; `pstack-analyze`'s
//! PSA017 checks the `FrameworkModel`'s hierarchy table covers every site
//! declared here and stays acyclic.

// This crate is the one place raw std::sync primitives are allowed in
// library code; the clippy disallowed-methods entries that ban
// Mutex::lock/RwLock::read/RwLock::write elsewhere are opted out here.
#![allow(clippy::disallowed_methods)]

pub mod chaos;
pub mod explore;
pub mod graph;
pub mod primitives;
pub mod sites;

pub use chaos::{arm, armed, ChaosGuard};
pub use explore::{explore, Exploration, SeedGrid};
pub use graph::{Inversion, LockOrderGraph, Smell, SmellKind};
pub use primitives::{
    SyncAtomicU64, SyncAtomicUsize, SyncCondvar, SyncMutex, SyncMutexGuard, SyncRwLock,
    SyncRwLockReadGuard, SyncRwLockWriteGuard,
};
pub use sites::{SiteDecl, SiteKind};

// Re-exported so caller crates can name memory orderings without importing
// from `std::sync::atomic` (which PSA018's source scan would flag when the
// import also names a banned primitive).
pub use std::sync::atomic::Ordering;
