//! Minimal JSON codec for the exporters.
//!
//! `pstack-trace` carries no serialization dependency by design (see the
//! crate docs), so it
//! carries its own small JSON value type, writer, and recursive-descent
//! parser. The codec preserves the integer/float distinction (`7` parses as
//! [`Json::Int`], `7.0` as [`Json::Float`]) so typed span attributes
//! round-trip exactly; objects preserve insertion order.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` (an integer literal).
    Int(i64),
    /// A number written with a fractional or exponent part.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an i64, accepting integral floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a u64 (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as an f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace). Non-finite floats render as `null`,
    /// matching the workspace's serde stand-in.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is the shortest representation that parses back
                    // to the same f64, and always carries `.` or `e`.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Renders compactly, identical to [`Json::write`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Returns a rendered error (with byte offset) on
/// malformed input; trailing whitespace is allowed, trailing garbage is not.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are sound).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let chunk = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape: {e}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if fractional {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    } else {
        // Integer literal; fall back to float on i64 overflow.
        text.parse::<i64>().map(Json::Int).or_else(|_| {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = parse(text).expect(text);
            assert_eq!(v.to_string(), text, "{text}");
        }
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(parse("7").expect("int"), Json::Int(7));
        assert_eq!(parse("7.0").expect("float"), Json::Float(7.0));
        assert_eq!(parse("1e3").expect("exp"), Json::Float(1000.0));
        // Writer keeps the distinction on the way out.
        assert_eq!(Json::Float(7.0).to_string(), "7.0");
        assert_eq!(Json::Int(7).to_string(), "7");
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        let text = r#"{"b":1,"a":[true,null,{"x":2.5}],"c":"s"}"#;
        let v = parse(text).expect("parses");
        assert_eq!(
            v.to_string(),
            r#"{"b":1,"a":[true,null,{"x":2.5}],"c":"s"}"#
        );
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(1));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{0001}f\u{1F600}".to_string());
        let text = original.to_string();
        assert_eq!(parse(&text).expect("parses"), original);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // U+1F600 written as an escaped surrogate pair.
        let v = parse("\"\\uD83D\\uDE00\"").expect("parses");
        assert_eq!(v, Json::Str("\u{1F600}".to_string()));
    }

    #[test]
    fn float_precision_survives() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456789.123456] {
            let text = Json::Float(f).to_string();
            assert_eq!(parse(&text).expect("parses"), Json::Float(f), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in ["", "{", "[1,", "tru", "\"x", "{\"a\" 1}", "1 2", "{1:2}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn large_integers_overflow_to_float() {
        let v = parse("99999999999999999999999").expect("parses");
        assert!(matches!(v, Json::Float(_)));
    }
}
