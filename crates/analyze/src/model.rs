//! The static view of the framework the lint rules inspect.
//!
//! [`FrameworkModel`] is a plain-data snapshot of everything the stack
//! declares about itself before a single simulation tick runs: the Table 1
//! knob registry, the component catalog, the vocabulary, the node hardware
//! description, and every search specification (parameter space + tuner
//! budget + warm-start priors) the experiments use. Rules read the model;
//! they never construct framework objects themselves, so tests can hand
//! them deliberately-broken snapshots.

use powerstack_core::cotune::{HypreCoTune, KernelCoTune};
use powerstack_core::experiments::{self, ArtifactInfo, ExperimentInfo};
use powerstack_core::{
    component_catalog, knob_registry, vocabulary, CatalogEntry, Knob, Objective, Term,
};
use pstack_autotune::{
    shipped_algorithms, Config, ParamSpace, RetryPolicy, SNAPSHOT_FORMAT_VERSION,
    WAL_FORMAT_VERSION,
};
use pstack_faults::{FaultPlan, FleetFaultPlan};
use pstack_history::{HistoryStore, SpaceShape, HISTORY_FORMAT_VERSION};
use pstack_hwmodel::NodeConfig;
use std::path::PathBuf;

/// One row of the declared lock hierarchy (PSA017 checks the declaration
/// covers every `pstack_sync::sites` entry and that the `may_acquire`
/// relation is a rank-consistent DAG).
pub struct LockSiteDecl {
    /// Site label, matching a `pstack_sync::sites` constant.
    pub site: String,
    /// Hierarchy rank: a site may only acquire sites of *strictly greater*
    /// rank while held (outer locks rank lower than inner locks).
    pub rank: u32,
    /// Sites this one is permitted to acquire while held.
    pub may_acquire: Vec<String>,
}

impl LockSiteDecl {
    /// Build one hierarchy row.
    pub fn new(site: impl Into<String>, rank: u32, may_acquire: &[&str]) -> Self {
        LockSiteDecl {
            site: site.into(),
            rank,
            may_acquire: may_acquire.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// One search configuration the framework will run: a parameter space plus
/// the tuner budget and warm-start priors aimed at it.
pub struct SearchSpec {
    /// Name used in diagnostic paths, e.g. `"cotune.hypre"`.
    pub name: String,
    /// The space the search runs over.
    pub space: ParamSpace,
    /// Evaluation budget (`Tuner::max_evals`).
    pub max_evals: usize,
    /// Parallel batch size (`Tuner::batch_size`).
    pub batch_size: usize,
    /// Warm-start prior configurations, if any.
    pub warm_start: Vec<Config>,
}

impl SearchSpec {
    /// Build a spec with no warm-start priors.
    pub fn new(
        name: impl Into<String>,
        space: ParamSpace,
        max_evals: usize,
        batch_size: usize,
    ) -> Self {
        SearchSpec {
            name: name.into(),
            space,
            max_evals,
            batch_size,
            warm_start: Vec::new(),
        }
    }
}

/// One `(space, app, objective)` history key the framework files shared
/// performance records under (PSA019 checks fingerprint stability and that
/// no two declarations collide on a key).
pub struct HistoryKeyDecl {
    /// Name used in diagnostic paths, e.g. `"history.hypre"`.
    pub name: String,
    /// Application label of the key, e.g. `"hypre"`.
    pub app: String,
    /// Objective label of the key, e.g. `"min-edp"`.
    pub objective: String,
    /// The space shape whose canonical fingerprint forms the key's space
    /// component.
    pub shape: SpaceShape,
}

impl HistoryKeyDecl {
    /// Build one key declaration.
    pub fn new(
        name: impl Into<String>,
        app: impl Into<String>,
        objective: impl Into<String>,
        shape: SpaceShape,
    ) -> Self {
        HistoryKeyDecl {
            name: name.into(),
            app: app.into(),
            objective: objective.into(),
            shape,
        }
    }
}

/// The shared performance-history configuration as data (PSA019 checks
/// shard-count bounds, format-version agreement, and key sanity).
pub struct HistorySpec {
    /// Shard count new stores are created with.
    pub shard_count: usize,
    /// On-disk format version stores are stamped with.
    pub format_version: u32,
    /// Every history key the shipped campaigns record under.
    pub keys: Vec<HistoryKeyDecl>,
}

/// One shipped search algorithm's checkpoint-schema declaration, as data
/// (PSA015 audits these against the [`SearchState`] versioning contract).
///
/// [`SearchState`]: pstack_autotune::SearchState
pub struct AlgorithmSchema {
    /// Algorithm name as recorded in WAL session headers.
    pub name: String,
    /// Declared `SearchState::schema_version()`.
    pub schema_version: u32,
    /// Whether `save_state()` produces real state (anything but `Null`).
    pub stateful: bool,
    /// Result of feeding a fresh instance its own `save_state()` back
    /// through `load_state` — `Some(msg)` when the round trip failed.
    pub round_trip_error: Option<String>,
}

impl AlgorithmSchema {
    /// Snapshot one algorithm's checkpoint-schema declaration by exercising
    /// the save/load round trip on a fresh instance.
    pub fn of(alg: &mut dyn pstack_autotune::SearchAlgorithm) -> Self {
        let state = alg.save_state();
        AlgorithmSchema {
            name: alg.name().to_string(),
            schema_version: alg.schema_version(),
            stateful: !matches!(state, serde::Value::Null),
            round_trip_error: alg.load_state(&state).err(),
        }
    }
}

/// The event-engine exercise PSA020 lints, captured as data.
///
/// `shipped()` drives the real machinery — a [`pstack_rm::EventHeap`]
/// through a deliberately adversarial push/pop sequence (out-of-order
/// pushes, same-instant events of every kind, a retroactive push mid-drain)
/// and [`pstack_rm::shard_budgets`] over the fleet-experiment enclave
/// layout — and records what happened. The rule then checks the recording:
/// pop times never regress past the cursor, same-instant events fire in
/// rank order (budget change → fault events → arrival → tick →
/// completion), event counts
/// are conserved, and the enclave shards sum to the site budget
/// bit-for-bit. Tests hand the rule deliberately-broken recordings.
pub struct EventModelSpec {
    /// Every event popped during the exercise, in pop order:
    /// (fire time in µs, heap cursor after the pop in µs, kind label).
    pub popped: Vec<(u64, u64, String)>,
    /// Heap cursor after the drain, µs.
    pub final_cursor_us: u64,
    /// Events pushed into the exercise heap.
    pub pushed: usize,
    /// Events popped during the drain (heap lifetime counter).
    pub popped_count: u64,
    /// Events still pending after the drain.
    pub pending_after: usize,
    /// Site budget the sharding exercise distributed, watts.
    pub site_budget_w: f64,
    /// Enclave node capacities the budget was sharded over.
    pub capacities: Vec<usize>,
    /// The resulting per-enclave budget shards, watts.
    pub shards: Vec<f64>,
}

impl EventModelSpec {
    /// Exercise the shipped event heap and enclave sharding.
    pub fn shipped() -> Self {
        use pstack_rm::{EventHeap, EventKind};
        use pstack_sim::SimTime;

        let t = SimTime::from_secs;
        let mut heap = EventHeap::new();
        // Out-of-order pushes, plus a same-instant cluster at t=40 covering
        // all nine kinds pushed in reverse rank order — pop order must
        // restore rank order (budget change → faults → arrival → tick →
        // completion).
        heap.push(t(40), EventKind::Completion(pstack_rm::JobId(7)));
        heap.push(t(40), EventKind::Tick);
        heap.push(t(40), EventKind::Arrival(pstack_rm::JobId(3)));
        heap.push(t(40), EventKind::TelemetryDropout { until: t(100) });
        heap.push(
            t(40),
            EventKind::CapStick {
                node: 2,
                until: t(100),
            },
        );
        heap.push(t(40), EventKind::JobFail(pstack_rm::JobId(5)));
        heap.push(t(40), EventKind::NodeRecover { node: 1 });
        heap.push(t(40), EventKind::NodeFail { node: 1 });
        heap.push(
            t(40),
            EventKind::BudgetChange {
                budget_w: Some(1000.0),
                response: pstack_rm::EmergencyResponse::TightenCaps,
            },
        );
        heap.push(t(10), EventKind::Arrival(pstack_rm::JobId(1)));
        heap.push(t(90), EventKind::Tick);
        heap.push(t(5), EventKind::Arrival(pstack_rm::JobId(0)));
        let mut pushed = 12usize;

        let mut popped = Vec::new();
        let mut retro_done = false;
        while let Some(ev) = heap.pop_due(t(3600)) {
            popped.push((
                ev.time.as_micros(),
                heap.cursor().as_micros(),
                ev.kind.label().to_string(),
            ));
            if !retro_done && ev.time >= t(40) {
                // Retroactive push mid-drain: allowed, fires immediately,
                // but the cursor must not move backwards for it.
                heap.push(t(20), EventKind::Arrival(pstack_rm::JobId(9)));
                pushed += 1;
                retro_done = true;
            }
        }
        // One event scheduled past the drain horizon stays pending.
        heap.push(t(7200), EventKind::Tick);
        pushed += 1;

        // The fleet experiment's enclave layout: 16 × 256 nodes at 65% of
        // site peak (450 W/node).
        let capacities = vec![256usize; 16];
        let site_budget_w = 450.0 * 4096.0 * 0.65;
        let shards = pstack_rm::shard_budgets(site_budget_w, &capacities);

        EventModelSpec {
            popped,
            final_cursor_us: heap.cursor().as_micros(),
            pushed,
            popped_count: heap.popped(),
            pending_after: heap.len(),
            site_budget_w,
            capacities,
            shards,
        }
    }
}

/// Everything the analyzer looks at, as data.
pub struct FrameworkModel {
    /// Hardware description the power/thermal rules check against.
    pub node: NodeConfig,
    /// The Table 1 knob registry.
    pub knobs: Vec<Knob>,
    /// The Table 2 component catalog.
    pub catalog: Vec<CatalogEntry>,
    /// The Table 3 vocabulary.
    pub vocabulary: Vec<Term>,
    /// The experiment manifest.
    pub experiments: Vec<ExperimentInfo>,
    /// The bench-binary manifest (PSA014 pairs JSON artifacts with trace
    /// exporters).
    pub artifacts: Vec<ArtifactInfo>,
    /// Every search configuration the experiments run.
    pub searches: Vec<SearchSpec>,
    /// Control resources that have an arbiter mediating concurrent writers
    /// (the in-job `pstack_runtime::Arbiter` plus the RAPL hardware cap
    /// taking the min of requests). Multiple writers of an arbitrated
    /// resource is a warning; of an unarbitrated one, an error.
    pub arbitrated_controls: Vec<&'static str>,
    /// The system power reserve fraction
    /// (`ObjectiveTranslator::system_reserve_fraction`).
    pub system_reserve_fraction: f64,
    /// Every fault plan the chaos experiments run (PSA012 checks rates and
    /// factors; unique names).
    pub fault_plans: Vec<FaultPlan>,
    /// Every fleet-scale fault plan the E11 chaos grid runs (PSA021 checks
    /// rates, requeue budgets, outage windows, unique names, and that the
    /// catalog keeps both a quiescent control and a genuinely mixed plan).
    pub fleet_fault_plans: Vec<FleetFaultPlan>,
    /// The retry policy the resilient tuning loop runs with (PSA013 checks
    /// its budgets are feasible).
    pub retry: RetryPolicy,
    /// Every shipped search algorithm's checkpoint-schema declaration
    /// (PSA015 holds each to the `SearchState` versioning contract).
    pub algorithms: Vec<AlgorithmSchema>,
    /// The write-ahead-log format version session files are stamped with.
    pub ckpt_wal_version: u32,
    /// The full-snapshot format version.
    pub ckpt_snapshot_version: u32,
    /// The shared performance-history configuration (PSA019 checks shard
    /// bounds, format versions, and key fingerprint sanity).
    pub history: HistorySpec,
    /// The declared lock hierarchy (PSA017 checks it covers every
    /// `pstack_sync::sites` entry and that `may_acquire` is a
    /// rank-consistent DAG).
    pub lock_hierarchy: Vec<LockSiteDecl>,
    /// The event-engine exercise recording (PSA020 checks cursor
    /// monotonicity, same-instant rank order, event conservation, and that
    /// enclave budget shards sum to the site budget exactly).
    pub events: EventModelSpec,
    /// Root of the source tree PSA018 scans for raw `std::sync` primitives
    /// in library code. `None` skips the scan (reported as Info, never
    /// silently).
    pub source_root: Option<PathBuf>,
}

impl FrameworkModel {
    /// The model of the shipped framework: everything the experiments in
    /// this workspace actually construct. `pstack_lint` and the startup
    /// gates run the rules over this snapshot.
    pub fn shipped() -> Self {
        let hypre = HypreCoTune::new(Objective::MinEdp);
        let kernel = KernelCoTune::new(Objective::MinEnergy);
        FrameworkModel {
            node: NodeConfig::server_default(),
            knobs: knob_registry(),
            catalog: component_catalog(),
            vocabulary: vocabulary(),
            experiments: experiments::manifest(),
            artifacts: experiments::artifact_registry(),
            searches: vec![
                SearchSpec::new("cotune.hypre", hypre.space(), 100, 8),
                SearchSpec::new("cotune.kernel", kernel.space(), 100, 8),
            ],
            arbitrated_controls: vec!["rapl-cap", "core-freq", "uncore-freq", "duty-cycle"],
            system_reserve_fraction: powerstack_core::ObjectiveTranslator::default()
                .system_reserve_fraction,
            fault_plans: FaultPlan::catalog(),
            fleet_fault_plans: FleetFaultPlan::catalog(),
            retry: RetryPolicy::default(),
            algorithms: shipped_algorithms()
                .iter_mut()
                .map(|alg| AlgorithmSchema::of(alg.as_mut()))
                .collect(),
            ckpt_wal_version: WAL_FORMAT_VERSION,
            ckpt_snapshot_version: SNAPSHOT_FORMAT_VERSION,
            history: HistorySpec {
                shard_count: HistoryStore::DEFAULT_SHARDS,
                format_version: HISTORY_FORMAT_VERSION,
                keys: vec![
                    HistoryKeyDecl::new(
                        "history.hypre",
                        "hypre",
                        "min-edp",
                        pstack_autotune::space_shape(&hypre.space()),
                    ),
                    HistoryKeyDecl::new(
                        "history.kernel",
                        "kernel",
                        "min-energy",
                        pstack_autotune::space_shape(&kernel.space()),
                    ),
                ],
            },
            lock_hierarchy: Self::shipped_lock_hierarchy(),
            events: EventModelSpec::shipped(),
            source_root: Self::shipped_source_root(),
        }
    }

    /// The shipped lock hierarchy: one row per `pstack_sync::sites` entry,
    /// outer locks ranked below inner ones. The permitted while-held
    /// acquisitions are worker-pool slot → trace ring (a worker may flush
    /// a span while publishing its result) and history shard gate →
    /// history append counter (the store bumps its diagnostics counter
    /// before releasing the gate); every other site is a leaf.
    pub fn shipped_lock_hierarchy() -> Vec<LockSiteDecl> {
        use pstack_sync::sites;
        vec![
            LockSiteDecl::new(sites::POOL_CURSOR, 10, &[]),
            LockSiteDecl::new(sites::POOL_SLOT, 20, &[sites::TRACE_RING]),
            LockSiteDecl::new(sites::CKPT_SCRATCH, 40, &[]),
            LockSiteDecl::new(sites::FAULTS_SLOWDOWNS, 41, &[]),
            LockSiteDecl::new(sites::FAULTS_KILLS, 42, &[]),
            LockSiteDecl::new(sites::HISTORY_SHARD, 45, &[sites::HISTORY_APPENDS]),
            LockSiteDecl::new(sites::HISTORY_APPENDS, 46, &[]),
            LockSiteDecl::new(sites::RM_EVENTS, 47, &[]),
            LockSiteDecl::new(sites::RM_SITE_TREE, 48, &[]),
            LockSiteDecl::new(sites::TRACE_RING, 50, &[]),
            LockSiteDecl::new(sites::TRACE_SPAN_ID, 51, &[]),
            LockSiteDecl::new(sites::TRACE_TID, 52, &[]),
        ]
    }

    /// Workspace root for the shipped model, resolved from this crate's
    /// compile-time manifest path (…/crates/analyze → workspace root two
    /// levels up). `None` when the tree was moved after compilation.
    fn shipped_source_root() -> Option<PathBuf> {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()?
            .parent()?
            .to_path_buf();
        root.join("crates").is_dir().then_some(root)
    }
}
