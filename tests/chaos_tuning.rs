//! Chaos suite: the resilient tuning loop under every fault plan in the
//! catalog, over a grid of seeds.
//!
//! Contracts asserted here:
//!
//! - `run_resilient` / `run_parallel_resilient` **never panic** under any
//!   catalog plan — they return `Ok(report)` or a typed `TuneError`;
//! - identical `(seed, plan)` pairs produce **byte-identical** serialized
//!   reports across repeated runs (the determinism the golden suite and
//!   `ext_faults` rely on);
//! - worker count never changes a resilient parallel result;
//! - the cache/quarantine ledger balances: every accepted suggestion is a
//!   hit, a miss, or a quarantine skip.

// Integration tests are exempt from the workspace unwrap policy.
#![allow(clippy::disallowed_methods)]

use powerstack::autotune::{
    Config, Evaluation, ForestSearch, ParamSpace, RandomSearch, Robustness, TuneError, TuneReport,
    Tuner,
};
use powerstack::faults::{FaultPlan, FaultyEvaluator};
use powerstack::prelude::*;

const SEEDS: [u64; 3] = [1, 7, 42];

fn space() -> ParamSpace {
    ParamSpace::new()
        .with(Param::ints("tile", [8, 16, 32, 64]))
        .with(Param::ints("unroll", [1, 2, 4, 8]))
        .with(Param::boolean("packing"))
        .with_constraint("unroll<=tile", |s, c| {
            s.value(c, "unroll").as_int() <= s.value(c, "tile").as_int()
        })
}

fn objective(space: &ParamSpace, cfg: &Config) -> Evaluation {
    let tile = space.value(cfg, "tile").as_int() as f64;
    let unroll = space.value(cfg, "unroll").as_int() as f64;
    let packing = space.value(cfg, "packing").as_bool();
    let time = (tile - 32.0).abs() / 8.0 + (unroll - 4.0).abs() + if packing { 0.0 } else { 1.5 };
    (1.0 + time, std::collections::HashMap::new())
}

fn run_once(seed: u64, plan: &FaultPlan, workers: Option<usize>) -> Result<String, TuneError> {
    let evaluator = FaultyEvaluator::new(objective, plan, seed ^ 0xC0FFEE);
    let mut primary = ForestSearch::new();
    let mut fallback = RandomSearch::new();
    let tuner = Tuner::new(space()).max_evals(30).seed(seed);
    let report = match workers {
        None => tuner.run_resilient(
            &mut primary,
            Some(&mut fallback),
            &Robustness::default(),
            |s, c, a| evaluator.evaluate(s, c, a),
        )?,
        Some(w) => tuner.run_parallel_resilient(
            &mut primary,
            Some(&mut fallback),
            &Robustness::default(),
            w,
            |s, c, a| evaluator.evaluate(s, c, a),
        )?,
    };
    // The ledger: every evaluation that actually ran is a cache miss, and
    // nothing else is — hits and quarantine skips never re-simulate.
    assert_eq!(report.cache.misses, report.evals, "misses must equal evals");
    assert!(report.best_objective.is_finite());
    Ok(serde_json::to_string(&report).expect("reports serialize"))
}

#[test]
fn every_seed_and_plan_completes_or_errors_typed() {
    for plan in FaultPlan::catalog() {
        for seed in SEEDS {
            match run_once(seed, &plan, None) {
                Ok(_) => {}
                Err(e) => {
                    // Typed errors are acceptable; panics are not (reaching
                    // here at all proves no panic). Display must be clean.
                    assert!(!format!("{e}").is_empty(), "{}/{seed}", plan.name);
                }
            }
        }
    }
}

#[test]
fn identical_seed_and_plan_replay_byte_identically() {
    for plan in FaultPlan::catalog() {
        for seed in SEEDS {
            let a = run_once(seed, &plan, None);
            let b = run_once(seed, &plan, None);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "{}/{seed} diverged", plan.name),
                (Err(_), Err(_)) => {}
                other => panic!("{}/{seed} replay changed outcome: {other:?}", plan.name),
            }
        }
    }
}

#[test]
fn parallel_resilient_is_worker_count_invariant() {
    for plan in [
        FaultPlan::none(),
        FaultPlan::evals_only(),
        FaultPlan::default_rates(),
    ] {
        for seed in SEEDS {
            let one = run_once(seed, &plan, Some(1));
            let eight = run_once(seed, &plan, Some(8));
            match (one, eight) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x, y, "{}/{seed}: workers changed the report", plan.name)
                }
                (Err(_), Err(_)) => {}
                other => panic!(
                    "{}/{seed} worker count changed outcome: {other:?}",
                    plan.name
                ),
            }
        }
    }
}

#[test]
fn parallel_replay_is_byte_identical() {
    // The parallel driver replays byte-identically for the same
    // (seed, plan, workers) — the contract `ext_faults` and the golden
    // suite rely on. (Serial vs parallel byte-equality is NOT a contract:
    // batched suggestion flow orders quarantine decisions differently.)
    for seed in SEEDS {
        let plan = FaultPlan::evals_only();
        let a = run_once(seed, &plan, Some(4)).expect("parallel run");
        let b = run_once(seed, &plan, Some(4)).expect("parallel run");
        assert_eq!(a, b, "seed {seed}: parallel replay diverged");
    }
}

#[test]
fn total_failure_plan_returns_typed_error_not_panic() {
    let mut plan = FaultPlan::none();
    plan.name = "always-fail".to_string();
    plan.evals.fail_prob = 1.0;
    for seed in SEEDS {
        match run_once(seed, &plan, None) {
            Err(TuneError::NoEvaluations { .. }) => {}
            Err(other) => panic!("unexpected error type: {other:?}"),
            Ok(_) => panic!("a 100%-failure plan cannot produce a report"),
        }
        // The parallel driver must agree.
        match run_once(seed, &plan, Some(4)) {
            Err(TuneError::NoEvaluations { .. }) => {}
            other => panic!("parallel disagreed: {other:?}"),
        }
    }
}

#[test]
fn faulted_reports_carry_their_fault_log() {
    let plan = FaultPlan::evals_only();
    for seed in SEEDS {
        let json = run_once(seed, &plan, None).expect("evals_only completes");
        assert!(
            json.contains("\"faults\""),
            "report JSON must embed the fault log"
        );
        // At the evals_only rates over 30 evals, something always fires —
        // and the JSON round-trips into the typed report.
        let report: TuneReport = serde_json::from_str(&json).unwrap();
        let counts = &report.faults.counts;
        let injected = counts.eval_failures + counts.eval_timeouts + counts.non_finite;
        assert!(injected > 0, "seed {seed}: no faults logged");
    }
}
