//! Hill climbing with random restarts.

use super::{SearchAlgorithm, SearchState};
use crate::db::PerfDatabase;
use crate::space::{Config, ParamSpace};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize, Value};

/// First-improvement hill climbing: evaluate neighbours of the current
/// incumbent; when a neighbourhood is exhausted without improvement, restart
/// from a random point.
#[derive(Debug)]
pub struct HillClimbSearch {
    current: Option<Config>,
    /// Neighbours of `current` not yet suggested.
    frontier: Vec<Config>,
}

impl HillClimbSearch {
    /// Construct.
    pub fn new() -> Self {
        HillClimbSearch {
            current: None,
            frontier: Vec::new(),
        }
    }

    fn restart(&mut self, space: &ParamSpace, rng: &mut SmallRng) -> Config {
        let start = space.sample(rng);
        self.current = Some(start.clone());
        self.frontier = space.neighbors(&start);
        self.frontier.shuffle(rng);
        start
    }
}

impl Default for HillClimbSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchState for HillClimbSearch {
    fn save_state(&self) -> Value {
        Value::Map(vec![
            ("current".to_string(), self.current.to_value()),
            ("frontier".to_string(), self.frontier.to_value()),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        self.current = Option::<Config>::from_value(state.field("current"))
            .map_err(|e| format!("hill-climb incumbent: {e}"))?;
        self.frontier = Vec::<Config>::from_value(state.field("frontier"))
            .map_err(|e| format!("hill-climb frontier: {e}"))?;
        Ok(())
    }
}

impl SearchAlgorithm for HillClimbSearch {
    fn name(&self) -> &str {
        "hill-climb"
    }

    fn suggest(
        &mut self,
        space: &ParamSpace,
        db: &PerfDatabase,
        rng: &mut SmallRng,
    ) -> Option<Config> {
        // Adopt a better incumbent if the last evaluations found one.
        if let (Some(cur), Some(best)) = (&self.current, db.best()) {
            let cur_obj = db.lookup(cur);
            if cur_obj.is_none_or(|c| best.objective < c) && &best.config != cur {
                self.current = Some(best.config.clone());
                self.frontier = space.neighbors(&best.config);
                self.frontier.shuffle(rng);
            }
        }
        if self.current.is_none() {
            return Some(self.restart(space, rng));
        }
        // Pop unevaluated neighbours; restart when the neighbourhood is dry.
        while let Some(cand) = self.frontier.pop() {
            if !db.contains(&cand) {
                return Some(cand);
            }
        }
        Some(self.restart(space, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Convex objective: distance from (3, 3) on a 7×7 grid.
    fn objective(c: &Config) -> f64 {
        let dx = c[0] as f64 - 3.0;
        let dy = c[1] as f64 - 3.0;
        dx * dx + dy * dy
    }

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(Param::ints("x", 0..7))
            .with(Param::ints("y", 0..7))
    }

    #[test]
    fn climbs_to_optimum_on_convex_landscape() {
        let s = space();
        let mut db = PerfDatabase::new();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut alg = HillClimbSearch::new();
        for _ in 0..60 {
            let c = alg.suggest(&s, &db, &mut rng).unwrap();
            let obj = objective(&c);
            db.record(c, obj, HashMap::new());
        }
        assert_eq!(db.best().unwrap().objective, 0.0, "must find (3,3)");
    }

    #[test]
    fn never_suggests_invalid() {
        let s = ParamSpace::new()
            .with(Param::ints("x", 0..5))
            .with(Param::ints("y", 0..5))
            .with_constraint("x<=y", |s, c| {
                s.value(c, "x").as_int() <= s.value(c, "y").as_int()
            });
        let mut db = PerfDatabase::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut alg = HillClimbSearch::new();
        for _ in 0..40 {
            let c = alg.suggest(&s, &db, &mut rng).unwrap();
            assert!(s.is_valid(&c));
            let obj = objective(&c);
            db.record(c, obj, HashMap::new());
        }
    }
}
