//! Regenerate extension E2: thermal-aware node selection.
use powerstack_core::experiments::thermal;
fn main() {
    let r = pstack_bench::timed("E2", thermal::run_default);
    pstack_bench::emit("ext_thermal", &thermal::render(&r), &r);
}
