//! Manufacturing variation.
//!
//! Identical SKUs differ chip-to-chip in power at iso-frequency (process
//! variation affects leakage and switching capacitance). Under a power cap this
//! turns into *performance* variation — the basis for the paper's §3.1.1
//! "which nodes to select ... processor manufacturing variation" interaction
//! and for GEOPM's node-outlier detection (§3.2.2).
//!
//! The model draws a per-package efficiency factor from a truncated normal
//! distribution; dynamic and leakage power are scaled by it.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-package variation factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationFactors {
    /// Multiplier on dynamic power (1.0 = nominal).
    pub dynamic: f64,
    /// Multiplier on leakage power (1.0 = nominal).
    pub leakage: f64,
}

impl VariationFactors {
    /// The nominal (no-variation) package.
    pub const NOMINAL: VariationFactors = VariationFactors {
        dynamic: 1.0,
        leakage: 1.0,
    };
}

/// Distribution of manufacturing variation across a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Std-dev of the dynamic-power multiplier (e.g. 0.04 = 4%).
    pub sigma_dynamic: f64,
    /// Std-dev of the leakage multiplier (leakage varies more; e.g. 0.12).
    pub sigma_leakage: f64,
    /// Truncation bound in std-devs (samples clamp to ±bound·σ).
    pub truncate_sigmas: f64,
}

impl VariationModel {
    /// Literature-typical defaults: ~4% dynamic σ, ~12% leakage σ, ±3σ.
    ///
    /// Patki et al. and the GEOPM papers report 10–20% node power spread at
    /// iso-frequency on production Xeon fleets, consistent with these values.
    pub fn typical() -> Self {
        VariationModel {
            sigma_dynamic: 0.04,
            sigma_leakage: 0.12,
            truncate_sigmas: 3.0,
        }
    }

    /// A fleet with no variation (for controlled ablations).
    pub fn none() -> Self {
        VariationModel {
            sigma_dynamic: 0.0,
            sigma_leakage: 0.0,
            truncate_sigmas: 3.0,
        }
    }

    /// Sample one package's factors.
    pub fn sample(&self, rng: &mut SmallRng) -> VariationFactors {
        VariationFactors {
            dynamic: sample_truncated_lognormal_ish(rng, self.sigma_dynamic, self.truncate_sigmas),
            leakage: sample_truncated_lognormal_ish(rng, self.sigma_leakage, self.truncate_sigmas),
        }
    }
}

/// Sample `max(ε, 1 + σ·z)` with `z` standard-normal truncated to ±bound.
///
/// Box–Muller over the crate-local RNG; avoids pulling in `rand_distr` for a
/// single distribution.
fn sample_truncated_lognormal_ish(rng: &mut SmallRng, sigma: f64, bound: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let z = loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.abs() <= bound {
            break z;
        }
    };
    (1.0 + sigma * z).max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_sim::SeedTree;

    #[test]
    fn no_variation_is_nominal() {
        let mut rng = SeedTree::new(1).rng("var");
        let m = VariationModel::none();
        for _ in 0..10 {
            let f = m.sample(&mut rng);
            assert_eq!(f, VariationFactors::NOMINAL);
        }
    }

    #[test]
    fn sample_statistics_match_model() {
        let mut rng = SeedTree::new(2).rng("var");
        let m = VariationModel::typical();
        let n = 20_000;
        let samples: Vec<VariationFactors> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean_dyn: f64 = samples.iter().map(|s| s.dynamic).sum::<f64>() / n as f64;
        let var_dyn: f64 = samples
            .iter()
            .map(|s| (s.dynamic - mean_dyn).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean_dyn - 1.0).abs() < 0.01, "mean {mean_dyn}");
        assert!(
            (var_dyn.sqrt() - 0.04).abs() < 0.01,
            "sigma {}",
            var_dyn.sqrt()
        );
    }

    #[test]
    fn truncation_bounds_hold() {
        let mut rng = SeedTree::new(3).rng("var");
        let m = VariationModel::typical();
        for _ in 0..50_000 {
            let f = m.sample(&mut rng);
            assert!(f.dynamic >= 1.0 - 3.0 * 0.04 - 1e-9);
            assert!(f.dynamic <= 1.0 + 3.0 * 0.04 + 1e-9);
            assert!(f.leakage >= 1.0 - 3.0 * 0.12 - 1e-9);
            assert!(f.leakage <= 1.0 + 3.0 * 0.12 + 1e-9);
            assert!(f.dynamic > 0.0 && f.leakage > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = VariationModel::typical();
        let a: Vec<_> = {
            let mut rng = SeedTree::new(9).rng("v");
            (0..16).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SeedTree::new(9).rng("v");
            (0..16).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
