//! The autotuning loop (Figure 4).
//!
//! `Tuner` wires a [`SearchAlgorithm`] to an evaluator closure (the paper's
//! `plopper`: "compiles the code and executes it to get the execution time")
//! and repeats suggest → evaluate → record until the evaluation budget
//! (`--max-evals`, default 100 in ytopt) is spent.
//!
//! Two drivers share the loop logic: [`Tuner::run`] evaluates serially, and
//! [`Tuner::run_parallel`] asks the algorithm for whole batches
//! ([`SearchAlgorithm::suggest_batch`]) and fans evaluations out over a
//! scoped thread pool. Batch composition depends only on the seed and batch
//! size — never on the worker count — and results are recorded in suggestion
//! order, so a seeded run reproduces the identical [`TuneReport`] whether it
//! used one worker or eight. An evaluation cache memoizes `(objective, aux)`
//! per configuration so duplicate suggestions (common in warm-started runs)
//! never re-simulate.

use crate::db::PerfDatabase;
use crate::faultlog::FaultLog;
use crate::search::SearchAlgorithm;
use crate::space::{Config, ParamSpace};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The outcome of evaluating one configuration: the objective being
/// minimized plus named auxiliary metrics (e.g. power, energy).
pub type Evaluation = (f64, HashMap<String, f64>);

/// Hit/miss counters for the evaluation cache.
///
/// A *hit* is a suggested configuration whose result was already known (from
/// an earlier evaluation or a warm-start prior) and therefore cost nothing; a
/// *miss* triggered a real evaluation. `hits + misses` equals the number of
/// suggestions the tuner accepted from the algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Suggestions answered from the cache (no evaluator call).
    pub hits: usize,
    /// Suggestions that ran the evaluator.
    pub misses: usize,
}

/// Why a tuning run could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The algorithm proposed nothing and no warm-start prior exists, so
    /// there is no best configuration to report (e.g. an exhaustive sweep
    /// over a space whose constraints reject every point).
    NoEvaluations {
        /// Name of the algorithm that produced nothing.
        algorithm: String,
    },
    /// Static analysis of the run's inputs failed: the warm-start prior
    /// contains configurations outside the space, or the algorithm
    /// suggested an invalid configuration. Carries one rendered diagnostic
    /// per finding so lint failures propagate through `run`/`run_parallel`
    /// as errors instead of panics.
    Diagnostic {
        /// What was being checked, e.g. `"warm-start prior"`.
        context: String,
        /// One human-readable line per finding.
        diagnostics: Vec<String>,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoEvaluations { algorithm } => write!(
                f,
                "tuning with {algorithm} produced no evaluations and no warm-start prior exists"
            ),
            TuneError::Diagnostic {
                context,
                diagnostics,
            } => write!(
                f,
                "tuning rejected by static checks ({context}): {}",
                diagnostics.join("; ")
            ),
        }
    }
}

impl std::error::Error for TuneError {}

/// Result of a tuning run.
///
/// Serializes deterministically (the vendored serde sorts map keys), so two
/// identically-seeded runs render byte-identical JSON — the replayability
/// contract the chaos suite asserts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReport {
    /// Algorithm name (the *active* algorithm: the fallback's name when a
    /// resilient run degraded).
    pub algorithm: String,
    /// The full performance database.
    pub db: PerfDatabase,
    /// Best configuration found.
    pub best_config: Config,
    /// Best objective found.
    pub best_objective: f64,
    /// Number of evaluations actually performed.
    pub evals: usize,
    /// Evaluation-cache counters (hits are suggestions that never
    /// re-simulated).
    pub cache: CacheStats,
    /// What was injected and survived. Empty for the fault-free drivers;
    /// populated by [`Tuner::run_resilient`] /
    /// [`Tuner::run_parallel_resilient`].
    pub faults: FaultLog,
}

/// The tuning loop driver.
///
/// # Example
///
/// ```
/// use pstack_autotune::{ForestSearch, Param, ParamSpace, Tuner};
///
/// let space = ParamSpace::new()
///     .with(Param::ints("tile", [8, 16, 32, 64]))
///     .with(Param::ints("unroll", [1, 2, 4]));
/// let report = Tuner::new(space)
///     .max_evals(20)
///     .seed(42)
///     .run(&mut ForestSearch::new(), |space, cfg| {
///         // "plopper": evaluate the candidate (here: an analytic stand-in).
///         let tile = space.value(cfg, "tile").as_int() as f64;
///         let unroll = space.value(cfg, "unroll").as_int() as f64;
///         ((tile - 32.0).abs() + unroll, Default::default())
///     })
///     .expect("space is non-empty");
/// // The 12-point space is exhausted before the budget runs out.
/// assert_eq!(report.evals, 12);
/// assert_eq!(report.best_objective, 1.0); // tile=32, unroll=1
/// ```
pub struct Tuner {
    pub(crate) space: ParamSpace,
    pub(crate) max_evals: usize,
    pub(crate) seed: u64,
    pub(crate) warm_start: Option<PerfDatabase>,
    pub(crate) max_consecutive_duplicates: usize,
    pub(crate) batch_size: usize,
}

impl Tuner {
    /// ytopt-like default budget of 100 evaluations.
    pub const DEFAULT_MAX_EVALS: usize = 100;

    /// Consecutive duplicate suggestions tolerated before a run is declared
    /// exhausted for its strategy. Applies identically to the serial and
    /// batch loops (a batch contributes its duplicates in suggestion order).
    pub const DEFAULT_MAX_CONSECUTIVE_DUPLICATES: usize = 16;

    /// Default number of suggestions asked for per batch in
    /// [`run_parallel`](Self::run_parallel). Deliberately independent of the
    /// worker count so that changing workers never changes the search
    /// trajectory.
    pub const DEFAULT_BATCH_SIZE: usize = 8;

    /// Create a tuner over `space`.
    pub fn new(space: ParamSpace) -> Self {
        Tuner {
            space,
            max_evals: Self::DEFAULT_MAX_EVALS,
            seed: 0,
            warm_start: None,
            max_consecutive_duplicates: Self::DEFAULT_MAX_CONSECUTIVE_DUPLICATES,
            batch_size: Self::DEFAULT_BATCH_SIZE,
        }
    }

    /// Seed the run with a prior performance database (transfer from earlier
    /// runs of the same space — the site "historic profile information"
    /// pattern of the paper's §3.2.2 mode 2, and the warm-start used by
    /// transfer-learning tuners). Prior observations inform the surrogate
    /// and are never re-evaluated, but do not count against the budget.
    ///
    /// Prior configurations are validated against the space when the run
    /// starts; invalid ones surface as [`TuneError::Diagnostic`] from
    /// [`Tuner::run`] / [`Tuner::run_parallel`].
    pub fn warm_start(mut self, prior: PerfDatabase) -> Self {
        self.warm_start = Some(prior);
        self
    }

    /// Set the evaluation budget (`--max-evals`).
    ///
    /// # Panics
    /// Panics on a zero budget.
    pub fn max_evals(mut self, n: usize) -> Self {
        assert!(n > 0, "budget must be positive");
        self.max_evals = n;
        self
    }

    /// Set the RNG seed for reproducible runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Tolerance for consecutive duplicate suggestions before the run ends
    /// early (default [`Self::DEFAULT_MAX_CONSECUTIVE_DUPLICATES`]).
    ///
    /// # Panics
    /// Panics on zero (the run could never accept a single duplicate).
    pub fn max_consecutive_duplicates(mut self, n: usize) -> Self {
        assert!(n > 0, "duplicate tolerance must be positive");
        self.max_consecutive_duplicates = n;
        self
    }

    /// Suggestions requested per ask-tell round in
    /// [`run_parallel`](Self::run_parallel) (default
    /// [`Self::DEFAULT_BATCH_SIZE`]). Larger batches expose more parallelism
    /// but give model-based algorithms staler feedback between fits.
    ///
    /// # Panics
    /// Panics on a zero batch size.
    pub fn batch_size(mut self, k: usize) -> Self {
        assert!(k > 0, "batch size must be positive");
        self.batch_size = k;
        self
    }

    /// The space being tuned.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Run the loop serially. `evaluate` maps a configuration to
    /// `(objective, aux)`; the objective is minimized.
    ///
    /// Configurations the algorithm re-suggests are answered from the
    /// evaluation cache (a hit in [`TuneReport::cache`]) without consuming
    /// budget, but after [`max_consecutive_duplicates`]
    /// (`Self::max_consecutive_duplicates`) consecutive duplicates the run
    /// ends early — the space is exhausted for this strategy.
    ///
    /// # Errors
    /// [`TuneError::NoEvaluations`] when the algorithm proposes nothing and
    /// there is no warm-start prior to fall back on.
    pub fn run(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        mut evaluate: impl FnMut(&ParamSpace, &Config) -> (f64, HashMap<String, f64>),
    ) -> Result<TuneReport, TuneError> {
        self.preflight()?;
        let mut db = self.warm_start.clone().unwrap_or_default();
        let prior_len = db.len();
        let mut cache = self.prior_cache(&db);
        let mut stats = CacheStats::default();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut consecutive_dups = 0;
        while db.len() - prior_len < self.max_evals {
            let Some(cfg) = algorithm.suggest(&self.space, &db, &mut rng) else {
                break; // strategy exhausted (e.g. grid complete)
            };
            self.check_valid(algorithm, &cfg)?;
            if cache.contains_key(&cfg) {
                stats.hits += 1;
                consecutive_dups += 1;
                if consecutive_dups >= self.max_consecutive_duplicates {
                    break;
                }
                continue;
            }
            consecutive_dups = 0;
            stats.misses += 1;
            let (objective, aux) = evaluate(&self.space, &cfg);
            cache.insert(cfg.clone(), (objective, aux.clone()));
            db.record(cfg, objective, aux);
        }
        self.report(algorithm, db, prior_len, stats)
    }

    /// Run the loop with batched suggestions and a pool of `workers` threads
    /// evaluating each batch concurrently (scoped threads; no evaluation
    /// outlives the call).
    ///
    /// Determinism: batches are composed from the seeded RNG and the batch
    /// size alone, and results are recorded in suggestion order, so for any
    /// algorithm a seeded run returns the identical [`TuneReport`] for 1
    /// worker or 100. For [`RandomSearch`](crate::RandomSearch) the batched
    /// run is additionally equivalent to the serial [`run`](Self::run)
    /// (its batch-aware sampler consumes the same RNG stream).
    ///
    /// `evaluate` must be `Sync`: it is shared by reference across workers.
    ///
    /// # Example
    ///
    /// ```
    /// use pstack_autotune::{Param, ParamSpace, RandomSearch, Tuner};
    ///
    /// let space = ParamSpace::new()
    ///     .with(Param::ints("tile", [8, 16, 32, 64]))
    ///     .with(Param::ints("unroll", [1, 2, 4]));
    /// let tuner = Tuner::new(space).max_evals(10).seed(42);
    /// let parallel = tuner
    ///     .run_parallel(&mut RandomSearch::new(), 4, |space, cfg| {
    ///         let tile = space.value(cfg, "tile").as_int() as f64;
    ///         ((tile - 32.0).abs(), Default::default())
    ///     })
    ///     .expect("space is non-empty");
    /// // Same seed, one worker: identical observations in identical order.
    /// let serial = tuner
    ///     .run_parallel(&mut RandomSearch::new(), 1, |space, cfg| {
    ///         let tile = space.value(cfg, "tile").as_int() as f64;
    ///         ((tile - 32.0).abs(), Default::default())
    ///     })
    ///     .expect("space is non-empty");
    /// assert_eq!(parallel.db.observations(), serial.db.observations());
    /// ```
    ///
    /// # Errors
    /// [`TuneError::NoEvaluations`] when the algorithm proposes nothing and
    /// there is no warm-start prior to fall back on.
    ///
    /// # Panics
    /// Panics on zero workers.
    pub fn run_parallel(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        workers: usize,
        evaluate: impl Fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>) + Sync,
    ) -> Result<TuneReport, TuneError> {
        assert!(workers > 0, "need at least one worker");
        self.preflight()?;
        let mut db = self.warm_start.clone().unwrap_or_default();
        let prior_len = db.len();
        let mut cache = self.prior_cache(&db);
        let mut stats = CacheStats::default();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut consecutive_dups = 0;
        while db.len() - prior_len < self.max_evals {
            let want = self.batch_size.min(self.max_evals - (db.len() - prior_len));
            let mut proposals = algorithm.suggest_batch(&self.space, &db, &mut rng, want);
            if proposals.is_empty() {
                break; // strategy exhausted (e.g. grid complete)
            }
            // `suggest_batch` contracts to at most `want` proposals; an
            // over-returning algorithm has its tail dropped *before* the
            // duplicate filter so every processed proposal lands in exactly
            // one cache counter (hits + misses == accepted suggestions).
            proposals.truncate(want);
            // Filter duplicates in suggestion order, counting them toward
            // the same consecutive-duplicate exit as the serial loop.
            let mut fresh: Vec<Config> = Vec::with_capacity(proposals.len());
            let mut exhausted = false;
            for cfg in proposals {
                self.check_valid(algorithm, &cfg)?;
                if cache.contains_key(&cfg) || fresh.contains(&cfg) {
                    stats.hits += 1;
                    consecutive_dups += 1;
                    if consecutive_dups >= self.max_consecutive_duplicates {
                        exhausted = true;
                        break;
                    }
                } else {
                    consecutive_dups = 0;
                    fresh.push(cfg);
                }
            }
            for (cfg, (objective, aux)) in self.evaluate_batch(&fresh, workers, &evaluate) {
                stats.misses += 1;
                cache.insert(cfg.clone(), (objective, aux.clone()));
                db.record(cfg, objective, aux);
            }
            if exhausted {
                break;
            }
        }
        self.report(algorithm, db, prior_len, stats)
    }

    /// Evaluate `fresh` on up to `workers` scoped threads, returning results
    /// paired with their configurations *in suggestion order* — recording
    /// order is therefore independent of which worker finished first.
    fn evaluate_batch(
        &self,
        fresh: &[Config],
        workers: usize,
        evaluate: &(impl Fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>) + Sync),
    ) -> Vec<(Config, Evaluation)> {
        let outputs: Vec<Evaluation> = if workers == 1 || fresh.len() <= 1 {
            fresh.iter().map(|cfg| evaluate(&self.space, cfg)).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Evaluation>>> =
                fresh.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers.min(fresh.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cfg) = fresh.get(i) else { break };
                        let out = evaluate(&self.space, cfg);
                        *slots[i].lock().expect("no worker panicked") = Some(out);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("no worker panicked")
                        .expect("every slot was claimed and filled")
                })
                .collect()
        };
        fresh.iter().cloned().zip(outputs).collect()
    }

    /// Memoized results for warm-start priors (suggesting one is a hit, not
    /// a re-simulation).
    pub(crate) fn prior_cache(&self, db: &PerfDatabase) -> HashMap<Config, Evaluation> {
        db.observations()
            .iter()
            .map(|o| (o.config.clone(), (o.objective, o.aux.clone())))
            .collect()
    }

    /// Static checks on the run's inputs, before any evaluation happens.
    pub(crate) fn preflight(&self) -> Result<(), TuneError> {
        if self.space.dims() == 0 {
            return Err(TuneError::Diagnostic {
                context: "parameter space".to_string(),
                diagnostics: vec!["space has no parameters; nothing to tune".to_string()],
            });
        }
        if let Some(prior) = &self.warm_start {
            let bad: Vec<String> = prior
                .observations()
                .iter()
                .filter(|o| o.config.len() != self.space.dims() || !self.space.is_valid(&o.config))
                .map(|o| format!("warm-start config {:?} invalid in this space", o.config))
                .collect();
            if !bad.is_empty() {
                return Err(TuneError::Diagnostic {
                    context: "warm-start prior".to_string(),
                    diagnostics: bad,
                });
            }
        }
        Ok(())
    }

    pub(crate) fn check_valid(
        &self,
        algorithm: &dyn SearchAlgorithm,
        cfg: &Config,
    ) -> Result<(), TuneError> {
        if self.space.is_valid(cfg) {
            Ok(())
        } else {
            Err(TuneError::Diagnostic {
                context: format!("algorithm {}", algorithm.name()),
                diagnostics: vec![format!("suggested invalid config {cfg:?}")],
            })
        }
    }

    pub(crate) fn report(
        &self,
        algorithm: &dyn SearchAlgorithm,
        db: PerfDatabase,
        prior_len: usize,
        stats: CacheStats,
    ) -> Result<TuneReport, TuneError> {
        let Some(best) = db.best().cloned() else {
            return Err(TuneError::NoEvaluations {
                algorithm: algorithm.name().to_string(),
            });
        };
        Ok(TuneReport {
            algorithm: algorithm.name().to_string(),
            // Fresh evaluations only; warm-start priors are free.
            evals: db.len() - prior_len,
            best_config: best.config,
            best_objective: best.objective,
            db,
            cache: stats,
            faults: FaultLog::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{ExhaustiveSearch, ForestSearch, RandomSearch};
    use crate::space::Param;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(Param::ints("x", 0..10))
            .with(Param::ints("y", 0..10))
    }

    fn bowl(_s: &ParamSpace, c: &Config) -> (f64, HashMap<String, f64>) {
        let o = (c[0] as f64 - 6.0).powi(2) + (c[1] as f64 - 2.0).powi(2);
        (o, HashMap::new())
    }

    #[test]
    fn exhaustive_finds_exact_optimum() {
        let report = Tuner::new(space())
            .max_evals(1000)
            .run(&mut ExhaustiveSearch::new(), bowl)
            .unwrap();
        assert_eq!(report.best_objective, 0.0);
        assert_eq!(report.best_config, vec![6, 2]);
        assert_eq!(report.evals, 100);
    }

    #[test]
    fn budget_is_respected() {
        let report = Tuner::new(space())
            .max_evals(20)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        assert_eq!(report.evals, 20);
        assert_eq!(report.db.len(), 20);
    }

    #[test]
    fn forest_budget_run_improves_over_initial() {
        let report = Tuner::new(space())
            .max_evals(40)
            .seed(5)
            .run(&mut ForestSearch::new(), bowl)
            .unwrap();
        let traj = report.db.trajectory();
        assert!(traj.last().unwrap() < &traj[7], "surrogate phase improves");
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = Tuner::new(space())
            .max_evals(15)
            .seed(9)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        let b = Tuner::new(space())
            .max_evals(15)
            .seed(9)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.db.observations(), b.db.observations());
    }

    #[test]
    fn warm_start_accelerates_surrogate() {
        // A prior database near the optimum should let the surrogate find
        // the basin with a far smaller fresh budget.
        let cold = Tuner::new(space())
            .max_evals(12)
            .seed(3)
            .run(&mut ForestSearch::new().with_init(4), bowl)
            .unwrap();
        let mut prior = crate::db::PerfDatabase::new();
        for cfg in [
            vec![5usize, 2],
            vec![7, 2],
            vec![6, 3],
            vec![6, 1],
            vec![4, 4],
            vec![8, 8],
        ] {
            let (o, _) = bowl(&space(), &cfg);
            prior.record(cfg, o, HashMap::new());
        }
        let warm = Tuner::new(space())
            .max_evals(12)
            .seed(3)
            .warm_start(prior)
            .run(&mut ForestSearch::new().with_init(4), bowl)
            .unwrap();
        assert!(
            warm.best_objective <= cold.best_objective,
            "warm {} vs cold {}",
            warm.best_objective,
            cold.best_objective
        );
        assert!(
            warm.best_objective <= 1.0,
            "basin found: {}",
            warm.best_objective
        );
        // Budget counts only fresh evaluations.
        assert_eq!(warm.db.len(), 6 + warm.evals);
    }

    #[test]
    fn warm_start_validates_configs() {
        let mut prior = crate::db::PerfDatabase::new();
        prior.record(vec![99, 99], 1.0, HashMap::new());
        let err = Tuner::new(space())
            .warm_start(prior)
            .run(&mut RandomSearch::new(), |_, _| (0.0, HashMap::new()))
            .expect_err("invalid prior must be rejected");
        match err {
            TuneError::Diagnostic {
                context,
                diagnostics,
            } => {
                assert_eq!(context, "warm-start prior");
                assert_eq!(diagnostics.len(), 1);
                assert!(diagnostics[0].contains("invalid in this space"));
            }
            other => panic!("expected Diagnostic, got {other:?}"),
        }
        // The error implements std::error::Error with a readable message.
        let err: Box<dyn std::error::Error> = Box::new(TuneError::Diagnostic {
            context: "warm-start prior".into(),
            diagnostics: vec!["x".into()],
        });
        assert!(err.to_string().contains("rejected by static checks"));
    }

    #[test]
    fn small_space_terminates_early() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..3));
        let report = Tuner::new(tiny)
            .max_evals(100)
            .run(&mut RandomSearch::new(), |_, c| {
                (c[0] as f64, HashMap::new())
            })
            .unwrap();
        assert!(report.evals <= 3 + 16);
        assert_eq!(report.best_objective, 0.0);
    }

    #[test]
    fn small_space_terminates_early_in_parallel() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..3));
        let report = Tuner::new(tiny)
            .max_evals(100)
            .run_parallel(&mut RandomSearch::new(), 3, |_, c| {
                (c[0] as f64, HashMap::new())
            })
            .unwrap();
        assert_eq!(report.evals, 3, "every point evaluated exactly once");
        assert!(report.cache.hits <= Tuner::DEFAULT_MAX_CONSECUTIVE_DUPLICATES);
        assert_eq!(report.best_objective, 0.0);
    }

    #[test]
    fn parallel_random_matches_serial_run() {
        // The batch-aware random sampler consumes the identical RNG stream
        // as the serial loop, so all three drivers agree observation-for-
        // observation.
        let tuner = Tuner::new(space()).max_evals(30).seed(7);
        let serial = tuner.run(&mut RandomSearch::new(), bowl).unwrap();
        let one = tuner
            .run_parallel(&mut RandomSearch::new(), 1, bowl)
            .unwrap();
        let eight = tuner
            .run_parallel(&mut RandomSearch::new(), 8, bowl)
            .unwrap();
        assert_eq!(serial.db.observations(), one.db.observations());
        assert_eq!(one.db.observations(), eight.db.observations());
        assert_eq!(serial.best_config, eight.best_config);
        assert_eq!(serial.evals, eight.evals);
        assert_eq!(one.cache, eight.cache);
    }

    #[test]
    fn worker_count_never_changes_results() {
        use crate::search::{AnnealingSearch, HillClimbSearch};
        let algorithms: Vec<Box<dyn Fn() -> Box<dyn SearchAlgorithm>>> = vec![
            Box::new(|| Box::new(RandomSearch::new())),
            Box::new(|| Box::new(ExhaustiveSearch::new())),
            Box::new(|| Box::new(ForestSearch::new())),
            Box::new(|| Box::new(HillClimbSearch::new())),
            Box::new(|| Box::new(AnnealingSearch::default_schedule())),
        ];
        for make in algorithms {
            let tuner = Tuner::new(space()).max_evals(25).seed(11);
            let one = tuner.run_parallel(make().as_mut(), 1, bowl).unwrap();
            let eight = tuner.run_parallel(make().as_mut(), 8, bowl).unwrap();
            assert_eq!(
                one.db.observations(),
                eight.db.observations(),
                "algorithm {} diverged across worker counts",
                one.algorithm
            );
            assert_eq!(one.best_config, eight.best_config);
            assert_eq!(one.cache, eight.cache);
        }
    }

    /// An algorithm that proposes the same configuration forever.
    struct Stuck;

    impl SearchAlgorithm for Stuck {
        fn name(&self) -> &str {
            "stuck"
        }
        fn suggest(
            &mut self,
            _space: &ParamSpace,
            _db: &PerfDatabase,
            _rng: &mut SmallRng,
        ) -> Option<Config> {
            Some(vec![0, 0])
        }
    }

    #[test]
    fn duplicate_tolerance_is_configurable_serially() {
        let report = Tuner::new(space())
            .max_evals(50)
            .max_consecutive_duplicates(4)
            .run(&mut Stuck, bowl)
            .unwrap();
        assert_eq!(report.evals, 1);
        assert_eq!(report.cache.hits, 4, "stopped at the configured streak");
        assert_eq!(report.cache.misses, 1);
    }

    #[test]
    fn duplicate_tolerance_is_configurable_in_parallel() {
        let report = Tuner::new(space())
            .max_evals(50)
            .max_consecutive_duplicates(4)
            .run_parallel(&mut Stuck, 4, bowl)
            .unwrap();
        assert_eq!(report.evals, 1);
        assert_eq!(report.cache.hits, 4, "in-batch duplicates count too");
        assert_eq!(report.cache.misses, 1);
    }

    #[test]
    fn warm_start_suggestions_hit_the_cache() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..4));
        let mut prior = PerfDatabase::new();
        prior.record(vec![0], 0.0, HashMap::new());
        prior.record(vec![1], 1.0, HashMap::new());
        let report = Tuner::new(tiny)
            .max_evals(10)
            .warm_start(prior)
            .run(&mut ExhaustiveSearch::new(), |_, c| {
                (c[0] as f64, HashMap::new())
            })
            .unwrap();
        // The sweep re-suggests the two priors (hits) and evaluates the rest.
        assert_eq!(report.cache, CacheStats { hits: 2, misses: 2 });
        assert_eq!(report.evals, 2);
        assert_eq!(report.db.len(), 4);
    }

    #[test]
    fn unsatisfiable_space_is_an_error_not_a_panic() {
        let impossible = ParamSpace::new()
            .with(Param::ints("x", 0..3))
            .with_constraint("nothing allowed", |_, _| false);
        for workers in [None, Some(1), Some(4)] {
            let tuner = Tuner::new(impossible.clone()).max_evals(5);
            let err = match workers {
                None => tuner.run(&mut ExhaustiveSearch::new(), bowl),
                Some(w) => tuner.run_parallel(&mut ExhaustiveSearch::new(), w, bowl),
            }
            .unwrap_err();
            assert_eq!(
                err,
                TuneError::NoEvaluations {
                    algorithm: "exhaustive".into()
                }
            );
            assert!(err.to_string().contains("no evaluations"));
        }
    }

    #[test]
    fn parallel_respects_budget_and_batch_size() {
        // Budget not divisible by batch size: the last round asks for the
        // remainder only.
        let report = Tuner::new(space())
            .max_evals(21)
            .batch_size(4)
            .seed(2)
            .run_parallel(&mut RandomSearch::new(), 8, bowl)
            .unwrap();
        assert_eq!(report.evals, 21);
        assert_eq!(report.db.len(), 21);
    }
}
