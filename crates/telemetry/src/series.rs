//! Time series of samples with windowed statistics and exact integration.

use crate::metric::Sample;
use pstack_sim::{SimDuration, SimTime};

/// An append-only, time-ordered series of samples.
///
/// The value is treated as a **step function**: a sample's value holds from its
/// timestamp until the next sample. This matches how the simulator produces
/// telemetry (state changes at discrete events) and makes `∫ value dt` exact.
/// Unbounded by default; see [`TimeSeries::set_bound`] for the fleet-scale
/// ring mode that retains only recent samples while keeping full-range
/// integrals exact.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<Sample>,
    /// Retain at least this many most-recent samples (`None` = keep all).
    bound: Option<usize>,
    /// First-ever sample time (survives eviction).
    origin: Option<SimTime>,
    /// Samples evicted so far.
    evicted: u64,
    /// Exact step integral over the evicted prefix `[origin, boundary)`,
    /// accumulated in push order so a full-range [`TimeSeries::integrate`]
    /// stays bit-identical to the unbounded series.
    evicted_integral: f64,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Empty series with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries {
            samples: Vec::with_capacity(n),
            ..TimeSeries::default()
        }
    }

    /// Empty series retaining at least the `bound` most recent samples.
    pub fn bounded(bound: usize) -> Self {
        let mut ts = TimeSeries::new();
        ts.set_bound(Some(bound));
        ts
    }

    /// Bound (or unbound) the retained window: at least the `bound` most
    /// recent samples are kept, older ones are folded into the exact
    /// evicted-prefix integral. Full-range integrals and means (windows
    /// starting at or before the first-ever sample) remain exact — bit for
    /// bit what the unbounded series would return; windowed queries must not
    /// reach into the evicted prefix. Fleet-scale runs use this to hold
    /// per-node telemetry at O(bound) instead of O(simulated time).
    pub fn set_bound(&mut self, bound: Option<usize>) {
        if let Some(b) = bound {
            assert!(b >= 2, "bound must retain at least 2 samples");
        }
        self.bound = bound;
        self.evict_excess();
    }

    /// Samples evicted into the prefix integral so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `time` precedes the last appended sample — series are
    /// time-ordered by construction.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.samples.last() {
            assert!(
                time >= last.time,
                "out-of-order sample: {:?} < {:?}",
                time,
                last.time
            );
        }
        if self.origin.is_none() {
            self.origin = Some(time);
        }
        self.samples.push(Sample { time, value });
        self.evict_excess();
    }

    /// Fold the oldest samples into the evicted-prefix integral once the
    /// buffer holds twice the bound (amortized O(1) per push; the retained
    /// window floats between `bound` and `2*bound` samples).
    fn evict_excess(&mut self) {
        let Some(bound) = self.bound else { return };
        if self.samples.len() < bound.saturating_mul(2) {
            return;
        }
        let k = self.samples.len() - bound;
        for i in 0..k {
            let step = self.samples[i + 1].time.since(self.samples[i].time);
            self.evicted_integral += self.samples[i].value * step.as_secs_f64();
        }
        self.samples.drain(..k);
        self.evicted += k as u64;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Step-function value at time `t`: the value of the latest sample at or
    /// before `t`, or `None` before the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.binary_search_by(|s| s.time.cmp(&t)) {
            Ok(mut i) => {
                // Multiple samples may share a timestamp; take the last one.
                while i + 1 < self.samples.len() && self.samples[i + 1].time == t {
                    i += 1;
                }
                Some(self.samples[i].value)
            }
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].value),
        }
    }

    /// Exact step-function integral of the series over `[from, to]`.
    ///
    /// For a power series in watts this is the energy in joules. The value
    /// before the first sample is taken as 0; the last sample's value holds
    /// until `to`.
    ///
    /// On a bounded series, windows starting at or before the first-ever
    /// sample include the evicted-prefix carry and return exactly (bit for
    /// bit) what the unbounded series would; windows that start or end
    /// strictly inside the evicted prefix panic rather than answer wrong.
    pub fn integrate(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.samples.is_empty() {
            return 0.0;
        }
        if self.evicted > 0 {
            let boundary = self.samples[0].time;
            let origin = self.origin.expect("evicted implies a first sample");
            assert!(
                to >= boundary,
                "integration window ends inside evicted history"
            );
            if from <= origin {
                return self.fold_retained(boundary, to, self.evicted_integral);
            }
            assert!(
                from >= boundary,
                "integration window starts inside evicted history"
            );
        }
        self.fold_retained(from, to, 0.0)
    }

    /// Left-fold of the retained step integral over `[from, to]` starting
    /// from `init` — the same accumulation order as an unbounded series, so
    /// the bounded result is bit-identical, not merely close.
    fn fold_retained(&self, from: SimTime, to: SimTime, init: f64) -> f64 {
        let mut total = init;
        let mut prev_t = from;
        let mut prev_v = self.value_at(from).unwrap_or(0.0);
        for s in &self.samples {
            if s.time <= from {
                continue;
            }
            if s.time >= to {
                break;
            }
            total += prev_v * s.time.since(prev_t).as_secs_f64();
            prev_t = s.time;
            prev_v = s.value;
        }
        total += prev_v * to.since(prev_t).as_secs_f64();
        total
    }

    /// Time-weighted mean over `[from, to]` (step-function semantics).
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.integrate(from, to) / span
    }

    /// Maximum sampled value within `[from, to]`, including the step value
    /// carried into the window. `None` if the window precedes all samples.
    pub fn max_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut best: Option<f64> = self.value_at(from);
        for s in &self.samples {
            if s.time > from && s.time <= to {
                best = Some(best.map_or(s.value, |b| b.max(s.value)));
            }
        }
        best
    }

    /// Minimum sampled value within `[from, to]` (see [`TimeSeries::max_in`]).
    pub fn min_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut best: Option<f64> = self.value_at(from);
        for s in &self.samples {
            if s.time > from && s.time <= to {
                best = Some(best.map_or(s.value, |b| b.min(s.value)));
            }
        }
        best
    }

    /// Resample the step function at fixed `period` over `[from, to]`,
    /// returning `(time, value)` pairs — used to render figure series.
    pub fn resample(&self, from: SimTime, to: SimTime, period: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!period.is_zero(), "resample period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t <= to {
            out.push((t, self.value_at(t).unwrap_or(0.0)));
            match t.checked_add(period) {
                Some(next) => t = next,
                None => break,
            }
        }
        out
    }

    /// Fraction of `[from, to]` during which the value exceeded `threshold`.
    pub fn fraction_above(&self, from: SimTime, to: SimTime, threshold: f64) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let mut above = 0.0;
        let mut prev_t = from;
        let mut prev_v = self.value_at(from).unwrap_or(0.0);
        for s in &self.samples {
            if s.time <= from {
                continue;
            }
            if s.time >= to {
                break;
            }
            if prev_v > threshold {
                above += s.time.since(prev_t).as_secs_f64();
            }
            prev_t = s.time;
            prev_v = s.value;
        }
        if prev_v > threshold {
            above += to.since(prev_t).as_secs_f64();
        }
        above / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64) -> SimTime {
        SimTime::from_secs(t)
    }

    #[test]
    fn value_at_step_semantics() {
        let mut ts = TimeSeries::new();
        ts.push(s(1), 10.0);
        ts.push(s(3), 20.0);
        assert_eq!(ts.value_at(s(0)), None);
        assert_eq!(ts.value_at(s(1)), Some(10.0));
        assert_eq!(ts.value_at(s(2)), Some(10.0));
        assert_eq!(ts.value_at(s(3)), Some(20.0));
        assert_eq!(ts.value_at(s(99)), Some(20.0));
    }

    #[test]
    fn duplicate_timestamp_takes_last() {
        let mut ts = TimeSeries::new();
        ts.push(s(1), 10.0);
        ts.push(s(1), 15.0);
        assert_eq!(ts.value_at(s(1)), Some(15.0));
    }

    #[test]
    fn integration_exact_for_steps() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 100.0); // 100 W for 10 s = 1000 J
        ts.push(s(10), 200.0); // 200 W for 5 s = 1000 J
        assert!((ts.integrate(s(0), s(15)) - 2000.0).abs() < 1e-9);
        // Partial windows.
        assert!((ts.integrate(s(5), s(12)) - (5.0 * 100.0 + 2.0 * 200.0)).abs() < 1e-9);
    }

    #[test]
    fn integration_before_first_sample_is_zero() {
        let mut ts = TimeSeries::new();
        ts.push(s(10), 50.0);
        assert_eq!(ts.integrate(s(0), s(10)), 0.0);
        assert!((ts.integrate(s(0), s(12)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 0.0);
        ts.push(s(9), 100.0); // 0 for 9 s, 100 for 1 s
        assert!((ts.mean(s(0), s(10)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_include_carried_value() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 5.0);
        ts.push(s(10), 1.0);
        // Window (2, 4): only the carried value 5.0 applies.
        assert_eq!(ts.max_in(s(2), s(4)), Some(5.0));
        assert_eq!(ts.min_in(s(2), s(4)), Some(5.0));
        assert_eq!(ts.max_in(s(2), s(12)), Some(5.0));
        assert_eq!(ts.min_in(s(2), s(12)), Some(1.0));
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 1.0);
        ts.push(s(5), 2.0);
        let grid = ts.resample(s(0), s(8), SimDuration::from_secs(2));
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0].1, 1.0);
        assert_eq!(grid[2].1, 1.0); // t=4
        assert_eq!(grid[3].1, 2.0); // t=6
    }

    #[test]
    fn fraction_above_threshold() {
        let mut ts = TimeSeries::new();
        ts.push(s(0), 100.0);
        ts.push(s(4), 300.0);
        ts.push(s(6), 100.0);
        let f = ts.fraction_above(s(0), s(10), 200.0);
        assert!((f - 0.2).abs() < 1e-9, "got {f}");
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(s(5), 1.0);
        ts.push(s(4), 1.0);
    }

    #[test]
    fn bounded_series_full_range_integral_is_bit_identical() {
        let mut full = TimeSeries::new();
        let mut ring = TimeSeries::bounded(8);
        for i in 0..1000u64 {
            let v = (i as f64 * 0.37).sin() * 100.0 + 150.0;
            full.push(s(i), v);
            ring.push(s(i), v);
        }
        assert!(ring.evicted() > 0, "eviction must have occurred");
        assert!(ring.len() <= 16, "retained window stays bounded");
        let a = full.integrate(s(0), s(1500));
        let b = ring.integrate(s(0), s(1500));
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        assert_eq!(
            full.mean(s(0), s(1000)).to_bits(),
            ring.mean(s(0), s(1000)).to_bits()
        );
    }

    #[test]
    fn bounded_series_recent_window_queries_still_work() {
        let mut ring = TimeSeries::bounded(4);
        for i in 0..100u64 {
            ring.push(s(i), i as f64);
        }
        let boundary = ring.samples()[0].time;
        assert!(boundary > s(0));
        // Recent windows behave exactly as before.
        assert_eq!(ring.value_at(s(99)), Some(99.0));
        assert!((ring.integrate(s(98), s(99)) - 98.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "starts inside evicted history")]
    fn bounded_series_rejects_window_into_evicted_prefix() {
        let mut ring = TimeSeries::bounded(4);
        for i in 0..100u64 {
            ring.push(s(i), 1.0);
        }
        // Starts after the origin but before the retained boundary.
        let _ = ring.integrate(s(5), s(99));
    }

    #[test]
    fn unbounded_series_never_evicts() {
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            ts.push(s(i), 1.0);
        }
        assert_eq!(ts.evicted(), 0);
        assert_eq!(ts.len(), 100);
    }

    #[test]
    fn empty_series_behaviour() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.value_at(s(0)), None);
        assert_eq!(ts.integrate(s(0), s(10)), 0.0);
        assert_eq!(ts.max_in(s(0), s(10)), None);
    }
}
