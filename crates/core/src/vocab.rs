//! Table 3: definitions of terms, as a typed catalog.
//!
//! The paper fixes a vocabulary for the working group; keeping it as data
//! (rather than prose) lets the bench harness regenerate Table 3 verbatim
//! and lets tests assert the vocabulary stays complete.

use serde::{Deserialize, Serialize};

/// One defined term.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Term {
    /// The term.
    pub term: &'static str,
    /// Its definition (condensed from the paper's Table 3).
    pub definition: &'static str,
}

/// The Table 3 vocabulary.
pub fn vocabulary() -> Vec<Term> {
    vec![
        Term {
            term: "Job (or job allocation)",
            definition: "Allocation with assigned resources that run the application; \
                         orchestrated by the Resource Manager upon a job-allocation request.",
        },
        Term {
            term: "Application",
            definition: "User-level codes to conduct science. Control and telemetry are \
                         limited to metrics the application understands; power-related \
                         control/telemetry is not included.",
        },
        Term {
            term: "Resource Manager",
            definition: "Management software with view and control of resources at system \
                         (cluster) level; performs resource allocation and assignment in \
                         response to job requests.",
        },
        Term {
            term: "Runtime system",
            definition: "Management software running within a job allocation, in its own or \
                         the application's context (e.g. PMPI interception, OMPT callbacks); \
                         hardware/OS-aware, may be RM-aware and application-aware.",
        },
        Term {
            term: "Job moldability",
            definition: "Flexibility to change compute resources (tasks, nodes, threads) at \
                         job launch.",
        },
        Term {
            term: "Job malleability",
            definition: "Flexibility to change compute resources (tasks, nodes, threads) \
                         during the runtime of the job.",
        },
        Term {
            term: "Static interactions",
            definition: "Interactions between the RM and the runtime, application, and the \
                         rest of the subsystem occurring at job launch.",
        },
        Term {
            term: "Dynamic interactions",
            definition: "Interactions between RM, runtime, application and the rest of the \
                         subsystem during job execution / system uptime.",
        },
    ]
}

/// Render Table 3 as fixed-width text.
pub fn render_table3() -> String {
    let terms = vocabulary();
    let mut out = String::from("TABLE 3. DEFINITIONS OF TERMS\n");
    for t in &terms {
        out.push_str(&format!("{:<24} | {}\n", t.term, t.definition));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_complete() {
        let v = vocabulary();
        assert_eq!(v.len(), 8, "Table 3 has eight terms");
        for expected in [
            "Job (or job allocation)",
            "Application",
            "Resource Manager",
            "Runtime system",
            "Job moldability",
            "Job malleability",
            "Static interactions",
            "Dynamic interactions",
        ] {
            assert!(v.iter().any(|t| t.term == expected), "missing {expected}");
        }
    }

    #[test]
    fn definitions_nonempty_and_distinct() {
        let v = vocabulary();
        for t in &v {
            assert!(t.definition.len() > 20);
        }
        let mut terms: Vec<&str> = v.iter().map(|t| t.term).collect();
        terms.sort();
        terms.dedup();
        assert_eq!(terms.len(), v.len());
    }

    #[test]
    fn renders() {
        let s = render_table3();
        assert!(s.contains("TABLE 3"));
        assert!(s.contains("moldability"));
    }
}
