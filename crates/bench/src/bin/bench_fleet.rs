//! Fleet-scale simulation gate: 4k nodes / 50k jobs through the
//! event-driven multi-enclave engine.
//!
//! Runs the extension-E10 ladder ([`FleetScenario::full`]: 16 enclaves ×
//! 256 nodes, 50 000 bursty Poisson arrivals, rolling demand-response
//! cuts) once per [`TuningLevel`], writes
//! `results/bench_fleet.{json,txt}`, and enforces three contracts:
//!
//! 1. **Fig 1 ordering at fleet scale** — end-to-end tuning beats no
//!    tuning on work per kilojoule without losing completions.
//! 2. **Fig 3 dynamic-policy win** — the dynamic end-to-end policy beats
//!    the static node-only policy (efficiency or throughput).
//! 3. **Simulator throughput floor** — each arm's `jobs_h_sim_per_wall_s`
//!    (simulated jobs-per-hour delivered per wall-clock second of
//!    simulation) must clear [`FLEET_THROUGHPUT_FLOOR`]; the event engine
//!    regressing to per-tick-like cost trips this. Exits nonzero on any
//!    violation. The CI `fleet` stage runs this binary; `perfgate` diffs
//!    its JSON against the committed baseline.
//!
//! `POWERSTACK_FLEET_SMOKE=1` shrinks the run to the `small()` scenario
//! (and skips the throughput floor) for quick plumbing checks.

use powerstack_core::experiments::fleet::{self, FleetResult, FleetScenario};
use powerstack_core::framework::TuningLevel;
use serde::Serialize;
use std::time::Instant;

/// Minimum simulated jobs-per-hour delivered per wall second, per arm.
///
/// The 1-core reference container measures ~0.8 on every arm of the
/// 4k/50k ladder (~6 min wall per arm); the floor sits ~5× below that so
/// slower CI hosts pass while an order-of-magnitude collapse (e.g. losing
/// the event-driven leap over idle stretches) still trips it.
pub const FLEET_THROUGHPUT_FLOOR: f64 = 0.15;

#[derive(Serialize)]
struct FleetArm {
    /// Wall-clock seconds this arm took to simulate.
    wall_s: f64,
    /// Simulated hours advanced per wall second.
    sim_hours_per_wall_s: f64,
    /// Simulated jobs-per-hour delivered per wall second (the gate metric).
    jobs_h_sim_per_wall_s: f64,
    /// The simulated outcome (deterministic; perfgate compares it exactly).
    result: FleetResult,
}

#[derive(Serialize)]
struct FleetBench {
    nodes: usize,
    submitted: usize,
    smoke: bool,
    floor_jobs_h_per_wall_s: f64,
    arms: Vec<FleetArm>,
}

fn find(arms: &[FleetArm], tuning: TuningLevel) -> &FleetResult {
    &arms
        .iter()
        .find(|a| a.result.tuning == tuning)
        .unwrap_or_else(|| panic!("{tuning:?} arm missing"))
        .result
}

fn main() {
    pstack_analyze::startup_gate();

    let smoke = std::env::var("POWERSTACK_FLEET_SMOKE").is_ok();
    let base = if smoke {
        FleetScenario::small(TuningLevel::None, Some(0.55))
    } else {
        FleetScenario::full(TuningLevel::None)
    };

    let arms: Vec<FleetArm> = pstack_bench::traced("bench_fleet", |tc| {
        TuningLevel::ALL
            .iter()
            .map(|&tuning| {
                let mut span = tc.span("fleet_arm");
                span.attr("tuning", format!("{tuning:?}"));
                let start = Instant::now();
                let result = pstack_bench::timed(&format!("fleet {tuning:?}"), || {
                    FleetScenario {
                        tuning,
                        ..base.clone()
                    }
                    .run()
                });
                let wall_s = start.elapsed().as_secs_f64().max(1e-9);
                FleetArm {
                    wall_s,
                    sim_hours_per_wall_s: (result.makespan_s / 3600.0) / wall_s,
                    jobs_h_sim_per_wall_s: result.jobs_per_hour / wall_s,
                    result,
                }
            })
            .collect()
    });

    let bench = FleetBench {
        nodes: arms[0].result.nodes,
        submitted: arms[0].result.submitted,
        smoke,
        floor_jobs_h_per_wall_s: FLEET_THROUGHPUT_FLOOR,
        arms,
    };

    let results: Vec<FleetResult> = bench.arms.iter().map(|a| a.result.clone()).collect();
    let mut rendered = fleet::render(&results);
    rendered.push_str("\ntuning      | wall_s  | sim_h/wall_s | jobs_h_sim/wall_s\n");
    for a in &bench.arms {
        rendered.push_str(&format!(
            "{:<11} | {:>7.1} | {:>12.1} | {:>17.1}\n",
            format!("{:?}", a.result.tuning),
            a.wall_s,
            a.sim_hours_per_wall_s,
            a.jobs_h_sim_per_wall_s,
        ));
    }
    pstack_bench::emit("bench_fleet", &rendered, &bench);

    // Contract 1: Fig 1 ordering at fleet scale.
    let none = find(&bench.arms, TuningLevel::None);
    let e2e = find(&bench.arms, TuningLevel::EndToEnd);
    assert!(
        e2e.completed >= none.completed,
        "end-to-end lost completions: {} vs {}",
        e2e.completed,
        none.completed
    );
    assert!(
        e2e.work_per_kj > none.work_per_kj,
        "Fig 1 ordering failed at fleet scale: end-to-end {:.3} work/kJ vs no-tuning {:.3}",
        e2e.work_per_kj,
        none.work_per_kj
    );

    // Contract 2: Fig 3 dynamic-policy win over the static sitewide cap.
    let node_only = find(&bench.arms, TuningLevel::NodeOnly);
    assert!(
        e2e.work_per_kj > node_only.work_per_kj || e2e.jobs_per_hour > node_only.jobs_per_hour,
        "Fig 3 dynamic win failed: end-to-end ({:.3} work/kJ, {:.1} jobs/h) vs node-only ({:.3}, {:.1})",
        e2e.work_per_kj,
        e2e.jobs_per_hour,
        node_only.work_per_kj,
        node_only.jobs_per_hour
    );

    // Contract 3: simulator throughput floor (full scale only — the smoke
    // scenario is too small for a meaningful rate).
    if !smoke {
        for a in &bench.arms {
            assert!(
                a.jobs_h_sim_per_wall_s >= FLEET_THROUGHPUT_FLOOR,
                "{:?}: {:.2} simulated jobs/h per wall-second is below the {:.1} floor \
                 (wall {:.1}s); see results/bench_fleet.json",
                a.result.tuning,
                a.jobs_h_sim_per_wall_s,
                FLEET_THROUGHPUT_FLOOR,
                a.wall_s
            );
        }
    }
}
