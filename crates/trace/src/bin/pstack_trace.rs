//! `pstack_trace` — render, summarize, and diff framework trace files.
//!
//! ```text
//! pstack_trace render  <trace-file>            # span tree with durations
//! pstack_trace summary <trace-file>            # per-stage profile table
//! pstack_trace diff    <trace-a> <trace-b>     # profile delta a -> b
//! ```
//!
//! Accepts both trace formats the framework writes: JSON Lines
//! (`to_jsonl`) and Chrome `trace_event` JSON (`to_chrome`, the
//! `results/trace_*.json` artifacts); the format is sniffed from the first
//! bytes. Exits non-zero with a one-line error on unreadable or foreign
//! files.

use pstack_trace::{from_any, render_tree, ProfileSummary, Trace};
use std::process::ExitCode;

const USAGE: &str = "usage: pstack_trace <render|summary|diff> <trace-file> [trace-file-b]\n\
  render   print the span tree of a trace file\n\
  summary  print the per-stage profile of a trace file\n\
  diff     print the profile delta between two trace files";

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_any(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, path] if cmd == "render" => Ok(render_tree(&load(path)?)),
        [cmd, path] if cmd == "summary" => {
            let trace = load(path)?;
            let mut out = format!("{path}: {} spans, {} dropped\n", trace.len(), trace.dropped);
            out.push_str(&ProfileSummary::from_trace(&trace).render());
            Ok(out)
        }
        [cmd, a, b] if cmd == "diff" => {
            let pa = ProfileSummary::from_trace(&load(a)?);
            let pb = ProfileSummary::from_trace(&load(b)?);
            Ok(format!("{a} -> {b}\n{}", pa.diff(&pb)))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pstack_trace: {e}");
            ExitCode::FAILURE
        }
    }
}
