//! Evaluation-throughput measurement for the batched SoA fast path.
//!
//! Shared between the `bench_evalthroughput` binary and `regenerate_all`:
//! times the same deterministic sample of co-tune configurations through
//! three evaluators and reports evals/min for each:
//!
//! - `scalar`: the oracle — `simulate_app` rebuilds the full simulated
//!   stack (fresh `NodeManager`s, workload, runner) per evaluation.
//! - `arena`: the `EvalArena` fast path — reset-in-place state over the
//!   SoA `NodeBatch`, **bit-identical** to the scalar oracle (asserted for
//!   every sampled configuration, cost and every aux metric).
//! - `arena_coarse`: the arena with coarse-tick integration enabled —
//!   uncapped spans integrate with the closed-form RC exponential over long
//!   substeps instead of the scalar 250 ms grid, and capped spans settle the
//!   RAPL controller on fine ticks after each control event before advancing
//!   with the controller held. Not bit-identical (the throttle latch and cap
//!   controller are sampled per tick, so leakage sees slightly staler
//!   temperatures); the observed relative error is reported and bounded at
//!   [`COARSE_REL_TOL`].
//!
//! Two spaces are sampled: the fig4-class kernel space (single node,
//! §3.2.3's ytopt loop) and the uc3-class Hypre space (multi-node, §4.4).
//! The headline acceptance check asserts ≥[`FIG4_TARGET_SPEEDUP`]× evals/min
//! over scalar on the fig4-class space (enforced by the binary, reported
//! here).
//!
//! The scalar-equivalence contract this artifact declares in
//! `artifact_registry()` is enforced by lint PSA016.

use powerstack_core::cotune::{HypreCoTune, KernelCoTune};
use powerstack_core::interfaces::Objective;
use powerstack_core::EvalArena;
use pstack_autotune::{Config, ParamSpace};
use pstack_sim::SimDuration;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

const SEED_NOTE: &str = "configs sampled deterministically via enumerate().step_by()";
/// Coarse-lane substep; capped spans are further clamped by the arena's
/// held-tick ceiling.
pub const COARSE_SUBSTEP_S: u64 = 10;
/// Relative cost-error bound asserted on the coarse lane.
pub const COARSE_REL_TOL: f64 = 0.01;
/// Acceptance floor for the fig4-class exact-or-coarse speedup.
pub const FIG4_TARGET_SPEEDUP: f64 = 10.0;

/// What one evaluation returns: `(cost, aux metrics)`.
type EvalOut = (f64, HashMap<String, f64>);
/// Scalar-oracle evaluator over a space.
type ScalarEval<'a> = dyn Fn(&ParamSpace, &Config) -> EvalOut + 'a;
/// Arena-backed evaluator over a space.
type ArenaEval<'a> = dyn FnMut(&mut EvalArena, &ParamSpace, &Config) -> EvalOut + 'a;

/// One evaluator's timing over the sampled configurations.
#[derive(Debug, Serialize)]
pub struct Lane {
    pub wall_s: f64,
    pub evals_per_min: f64,
}

fn lane(wall_s: f64, n: usize) -> Lane {
    Lane {
        wall_s,
        evals_per_min: n as f64 / wall_s.max(1e-12) * 60.0,
    }
}

/// Throughput comparison over one co-tune space.
#[derive(Debug, Serialize)]
pub struct SpaceBench {
    pub space: String,
    pub configs: usize,
    pub scalar: Lane,
    pub arena: Lane,
    pub arena_coarse: Lane,
    pub speedup_exact: f64,
    pub speedup_coarse: f64,
    /// Every sampled configuration matched the scalar oracle bit-for-bit
    /// on the exact arena path (cost and all aux metrics).
    pub bit_identical: bool,
    /// Largest relative cost error observed on the coarse-tick path.
    pub coarse_max_rel_err: f64,
}

impl SpaceBench {
    /// Best achieved speedup over the scalar oracle on either arena lane.
    pub fn best_speedup(&self) -> f64 {
        self.speedup_exact.max(self.speedup_coarse)
    }
}

#[derive(Debug, Serialize)]
pub struct EvalThroughputResult {
    pub sampling: String,
    pub coarse_substep_s: u64,
    pub fig4_target_speedup: f64,
    pub fig4_kernel: SpaceBench,
    pub uc3_hypre: SpaceBench,
}

/// Run the three lanes over `configs` with the given evaluate closures.
/// Panics if the exact arena lane diverges from the scalar oracle by a
/// single bit or the coarse lane drifts past [`COARSE_REL_TOL`] — the
/// speedups this reports are only meaningful under those contracts.
fn bench_space(
    label: &str,
    space: &ParamSpace,
    configs: &[Config],
    scalar_eval: &ScalarEval,
    arena_eval: &mut ArenaEval,
) -> SpaceBench {
    // Scalar oracle lane.
    let t0 = Instant::now();
    let scalar_out: Vec<EvalOut> = configs.iter().map(|c| scalar_eval(space, c)).collect();
    let scalar_s = t0.elapsed().as_secs_f64();

    // Exact arena lane (one warm-up eval so steady-state reuse is timed).
    let mut arena = EvalArena::new();
    let _ = arena_eval(&mut arena, space, &configs[0]);
    let t1 = Instant::now();
    let arena_out: Vec<EvalOut> = configs
        .iter()
        .map(|c| arena_eval(&mut arena, space, c))
        .collect();
    let arena_s = t1.elapsed().as_secs_f64();

    // Coarse-tick arena lane.
    let mut coarse = EvalArena::new().with_coarse_substep(SimDuration::from_secs(COARSE_SUBSTEP_S));
    let _ = arena_eval(&mut coarse, space, &configs[0]);
    let t2 = Instant::now();
    let coarse_out: Vec<EvalOut> = configs
        .iter()
        .map(|c| arena_eval(&mut coarse, space, c))
        .collect();
    let coarse_s = t2.elapsed().as_secs_f64();

    // Scalar-equivalence check: the exact lane is bit-identical, the
    // coarse lane within tolerance.
    let mut bit_identical = true;
    let mut coarse_max_rel_err = 0.0f64;
    for (i, ((s, a), c)) in scalar_out
        .iter()
        .zip(&arena_out)
        .zip(&coarse_out)
        .enumerate()
    {
        let exact_match = s.0.to_bits() == a.0.to_bits()
            && s.1.len() == a.1.len()
            && s.1
                .iter()
                .all(|(k, v)| a.1.get(k).map(|w| v.to_bits() == w.to_bits()) == Some(true));
        assert!(
            exact_match,
            "{label}: arena diverged from the scalar oracle on config {i}: \
             {:?} vs {:?}",
            s, a
        );
        bit_identical &= exact_match;
        let rel = (c.0 - s.0).abs() / s.0.abs().max(f64::MIN_POSITIVE);
        coarse_max_rel_err = coarse_max_rel_err.max(rel);
    }
    assert!(
        coarse_max_rel_err <= COARSE_REL_TOL,
        "{label}: coarse ticks drifted {coarse_max_rel_err:.4} > {COARSE_REL_TOL}"
    );

    SpaceBench {
        space: label.to_string(),
        configs: configs.len(),
        scalar: lane(scalar_s, configs.len()),
        arena: lane(arena_s, configs.len()),
        arena_coarse: lane(coarse_s, configs.len()),
        speedup_exact: scalar_s / arena_s.max(1e-12),
        speedup_coarse: scalar_s / coarse_s.max(1e-12),
        bit_identical,
        coarse_max_rel_err,
    }
}

/// Run the full throughput measurement: both spaces, all three lanes, with
/// per-space trace spans under the caller's collector (use
/// [`crate::traced`] around this).
pub fn run() -> EvalThroughputResult {
    let kt = KernelCoTune::new(Objective::MinEdp);
    let ks = kt.space();
    let kernel_cfgs: Vec<Config> = ks.enumerate().step_by(331).take(48).collect();

    let ht = HypreCoTune::new(Objective::MinEnergy);
    let hs = ht.space();
    let hypre_cfgs: Vec<Config> = hs.enumerate().step_by(67).take(16).collect();

    let fig4_kernel = crate::timed("fig4_kernel", || {
        bench_space(
            "fig4_kernel",
            &ks,
            &kernel_cfgs,
            &|s, c| kt.evaluate(s, c),
            &mut |arena, s, c| kt.evaluate_in(arena, s, c),
        )
    });
    let uc3_hypre = crate::timed("uc3_hypre", || {
        bench_space(
            "uc3_hypre",
            &hs,
            &hypre_cfgs,
            &|s, c| ht.evaluate(s, c),
            &mut |arena, s, c| ht.evaluate_in(arena, s, c),
        )
    });

    EvalThroughputResult {
        sampling: SEED_NOTE.to_string(),
        coarse_substep_s: COARSE_SUBSTEP_S,
        fig4_target_speedup: FIG4_TARGET_SPEEDUP,
        fig4_kernel,
        uc3_hypre,
    }
}

/// Text rendering (the `results/bench_evalthroughput.txt` artifact).
pub fn render(r: &EvalThroughputResult) -> String {
    let row = |b: &SpaceBench| {
        format!(
            "{lbl:<12} | {n:>4} | {ss:>8.3} | {as_:>8.3} | {cs:>8.3} | {sx:>6.1}x | {cx:>6.1}x | {sm:>9.0} | {am:>9.0} | {cm:>9.0} | {bit} | {err:.2e}\n",
            lbl = b.space,
            n = b.configs,
            ss = b.scalar.wall_s,
            as_ = b.arena.wall_s,
            cs = b.arena_coarse.wall_s,
            sx = b.speedup_exact,
            cx = b.speedup_coarse,
            sm = b.scalar.evals_per_min,
            am = b.arena.evals_per_min,
            cm = b.arena_coarse.evals_per_min,
            bit = b.bit_identical,
            err = b.coarse_max_rel_err,
        )
    };
    format!(
        "EVAL THROUGHPUT: batched SoA fast path vs scalar oracle ({note})\n\
         space        |    n | scalar_s |  arena_s | coarse_s |  exact | coarse | scal/min | aren/min | coar/min | bit_identical | coarse_err\n\
         {k}{h}\
         acceptance: fig4-class exact-or-coarse speedup >= {t:.0}x\n",
        note = r.sampling,
        k = row(&r.fig4_kernel),
        h = row(&r.uc3_hypre),
        t = r.fig4_target_speedup,
    )
}
