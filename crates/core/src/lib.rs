//! # powerstack-core — the end-to-end auto-tuning framework
//!
//! This crate is the paper's primary contribution realized as code: the
//! layer model, standardized interfaces, knob registry, objective
//! translation, and the co-tuning orchestration that drives every
//! experiment.
//!
//! - [`vocab`] — Table 3's term definitions as a typed, renderable catalog.
//! - [`registry`] — Table 1's per-layer parameters and methods as a live
//!   knob registry, each row backed by an implemented control.
//! - [`catalog`] — Table 2's software components mapped to this workspace's
//!   implemented analogs.
//! - [`interfaces`] — the standardized cross-layer traits the paper calls
//!   for: power budget acceptance, telemetry reporting, objective handling.
//! - [`translate`] — objective translation down the stack (site → system →
//!   job → node), the paper's §3.1.4 worked example.
//! - [`framework`] — the Figure 1 end-to-end wiring: site policy into
//!   resource manager into job runtimes into node controls, packaged as a
//!   configurable experiment scenario.
//! - [`cotune`] — cross-layer parameter-space construction and tuning using
//!   `pstack-autotune` over simulated scenarios (§3.1, §4.4).
//! - [`arena`] — the reusable batched evaluation arena: reset-in-place
//!   scenario state over `pstack-hwmodel`'s SoA fast path, bit-identical to
//!   the scalar `simulate_app` oracle.
//! - [`experiments`] — one module per paper table/figure/use case, each
//!   regenerating the corresponding result (see DESIGN.md's index).

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod arena;
pub mod catalog;
pub mod cotune;
pub mod experiments;
pub mod framework;
pub mod interfaces;
pub mod registry;
pub mod translate;
pub mod validate;
pub mod vocab;

pub use arena::EvalArena;
pub use catalog::{component_catalog, CatalogEntry};
pub use framework::{Scenario, ScenarioResult, TuningLevel};
pub use interfaces::{Objective, PowerBudget};
pub use registry::{knob_registry, Actor, Knob, Layer, Temporal};
pub use translate::ObjectiveTranslator;
pub use vocab::{vocabulary, Term};
