//! Batched structure-of-arrays (SoA) node stepping — the evaluation fast path.
//!
//! [`Node::step`] is exact but pays, per package and per tick, for work the
//! tuning loop never reads: performance-counter updates, `Vec` allocation in
//! core splitting, repeated roofline and CMOS model evaluations over the same
//! `(mix, P-state, cores)` operating point, and a fresh `exp()` per thermal
//! advance. [`NodeBatch`] keeps the *dynamic* state of many nodes as flat
//! arrays (temperature, throttle bitset, energy, cap controllers) and the
//! *static* model as shared memoized coefficients, so stepping a node is a
//! handful of flops plus table lookups.
//!
//! ## Bit-identity contract
//!
//! The batch path is an optimization of the scalar path, not an approximation:
//! for the nominal-knob configuration the driver uses (top requested P-state,
//! top uncore, full duty cycle, [`VariationFactors::NOMINAL`]), every value it
//! produces is **bit-identical** to [`Node::step`] / [`Node::work_rate`]. The
//! only transformations applied are bit-transparent:
//!
//! - **Memoized coefficients.** `speed`, `core_dynamic_w` and `dram_w` depend
//!   only on `(mix, P-state, active cores)`; on a cache miss they are computed
//!   by calling the *same scalar model functions*, so a hit replays the exact
//!   bits a fresh call would produce.
//! - **Memoized exponential.** The RC-thermal decay factor `exp(-dt/τ)`
//!   depends only on the tick length; it is cached keyed on the bit pattern
//!   of `dt_s`.
//! - **Flat-window average.** When a tick is at least as long as the RAPL
//!   window, the measurement window sees only the step just recorded; the
//!   average is computed with the same two flops `average_w` would end with,
//!   skipping the deque walk but not changing a bit.
//! - **Skipped dead state.** Counter banks, package-level energy and the
//!   variation multiplies (`x * 1.0` is bitwise `x` for finite `x`) are
//!   elided because no consumer on this path reads them.
//!
//! Closed-form exponential integration (already exact in [`ThermalModel`])
//! means tick *length* never changes the thermal trajectory between control
//! events; the driver layer exploits this to coarsen ticks between
//! control/throttle events — uncapped spans coarsen outright, capped spans
//! settle the controller on fine ticks and then advance via
//! [`step_held`](NodeBatch::step_held) (see `pstack-core`'s `EvalArena`).
//!
//! The scalar path remains the oracle: `tests/batch_equivalence.rs` drives
//! both through random mix/core/tick/cap sequences (including throttle
//! hysteresis crossings) and asserts `f64::to_bits` equality.
//!
//! [`VariationFactors::NOMINAL`]: crate::variation::VariationFactors::NOMINAL

use crate::cap::{PowerCap, RaplWindow};
use crate::node::{NodeConfig, StepOutput};
use crate::phase::{PhaseKind, PhaseMix};
use crate::pstate::DutyCycle;
use crate::thermal::ThermalModel;
use pstack_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// A fixed-capacity bit vector; one bit per package lane.
#[derive(Debug, Clone, Default)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `len` bits, clearing every bit.
    pub fn reset(&mut self, len: usize) {
        self.words.resize(len.div_ceil(64), 0);
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = len;
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Write bit `i`.
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }
}

/// Memoized operating-point coefficients for one `(mix, P-state, active)`
/// triple. Filled by calling the scalar model functions once.
#[derive(Debug, Clone, Copy)]
struct Coeff {
    /// Relative speed (scalar `SpeedModel::speed`).
    speed: f64,
    /// Core dynamic power, W (scalar `PowerModel::core_dynamic_w`).
    core_dyn_w: f64,
    /// DRAM power, W (scalar `PowerModel::dram_w` at this speed).
    dram_w: f64,
    /// Core frequency at this P-state, GHz.
    freq_ghz: f64,
}

/// SoA dynamic state of every package lane in the batch.
///
/// Lane `node * n_packages + pkg` holds package `pkg` of node `node`. All
/// hot per-tick state lives in flat arrays so a step is sequential loads and
/// stores, never pointer-chasing through per-node structs.
#[derive(Debug, Default)]
pub struct PackageBatch {
    /// Junction temperature per lane, °C.
    temp_c: Vec<f64>,
    /// Thermal-throttle latch per lane.
    throttling: Bitset,
    /// Requested P-state index per lane (the DVFS knob).
    pstate_req: Vec<usize>,
    /// Optional RAPL cap + measurement window per lane.
    caps: Vec<Option<(PowerCap, RaplWindow)>>,
}

impl PackageBatch {
    fn lanes(&self) -> usize {
        self.temp_c.len()
    }
}

/// Batched SoA evaluation of many [`Node`]s with nominal knobs.
///
/// Construct once, then [`reset`](NodeBatch::reset) between evaluations:
/// state is rewritten in place and every allocation (lane arrays, cap
/// windows, coefficient tables) is reused.
///
/// [`Node`]: crate::node::Node
#[derive(Debug)]
pub struct NodeBatch {
    cfg: NodeConfig,
    /// Thermal parameters shared by every lane (scalar packages always use
    /// [`ThermalModel::server_default`]).
    thermal: ThermalModel,
    /// RC time constant `r_th · c_th`, seconds.
    tau_s: f64,
    /// Uncore frequency at the (fixed, top) uncore index, GHz.
    uncore_ghz: f64,
    /// Uncore power at that frequency, W — constant on this path.
    uncore_w: f64,
    /// Top core P-state index.
    top_idx: usize,
    pkgs: PackageBatch,
    /// Node energy per node, joules.
    energy_j: Vec<f64>,
    n_nodes: usize,
    /// Registered phase mixes; step/work_rate take a mix id, not a `&PhaseMix`.
    mixes: Vec<PhaseMix>,
    mix_index: HashMap<[u64; 4], usize>,
    /// Memoized scalar-model coefficients, stored dense: slot
    /// `mix · n_pstates + pstate`, tagged with the active-core count it was
    /// computed for. Within one evaluation a mix runs a fixed core count, so
    /// the one-entry-per-slot cache almost never collides; a collision just
    /// recomputes through the same scalar model calls. Keeping the stride at
    /// `n_pstates` (not `n_pstates · n_cores`) makes registering a fresh mix
    /// touch ~1 KB instead of ~26 KB — the memset and minor-fault cost of the
    /// wide layout dominated first-evaluation latency.
    coeffs: Vec<Option<(usize, Coeff)>>,
    /// `dt_s bit pattern → exp(-dt_s / τ)`.
    exp_memo: HashMap<u64, f64>,
    /// Inline slot for the latest decay factor — sub-steps are overwhelmingly
    /// the same length, so this hits without touching the memo map.
    last_decay: (u64, f64),
    /// Resets that reused existing allocations (no lane growth needed).
    reuse_hits: usize,
}

impl NodeBatch {
    /// Build an empty batch for nodes of the given configuration. Call
    /// [`reset`](NodeBatch::reset) to size it.
    pub fn new(cfg: NodeConfig) -> Self {
        let thermal = ThermalModel::server_default();
        let tau_s = thermal.r_th * thermal.c_th;
        let uncore_ghz = cfg.package.uncore.max();
        let uncore_w = cfg.package.power.uncore_w(uncore_ghz);
        let top_idx = cfg.package.pstates.top_idx();
        NodeBatch {
            cfg,
            thermal,
            tau_s,
            uncore_ghz,
            uncore_w,
            top_idx,
            pkgs: PackageBatch::default(),
            energy_j: Vec::new(),
            n_nodes: 0,
            mixes: Vec::new(),
            mix_index: HashMap::new(),
            coeffs: Vec::new(),
            exp_memo: HashMap::new(),
            last_decay: (u64::MAX, 0.0),
            reuse_hits: 0,
        }
    }

    /// The node configuration every lane shares.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Number of nodes currently in the batch.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Resets that reused existing lane allocations instead of growing them.
    pub fn reuse_hits(&self) -> usize {
        self.reuse_hits
    }

    /// Reset the batch in place to `n_nodes` fresh nodes, optionally applying
    /// a node power cap (split across packages exactly like
    /// [`Node::set_power_cap`]) at `t = 0` with the given window.
    ///
    /// Equivalent to constructing `n_nodes` × [`Node::nominal`] and calling
    /// `set_power_cap(SimTime::ZERO, cap_w, window)` on each — but without
    /// allocating when capacity suffices.
    ///
    /// # Panics
    /// Panics if a cap does not cover platform power (as the scalar node does).
    ///
    /// [`Node::nominal`]: crate::node::Node::nominal
    /// [`Node::set_power_cap`]: crate::node::Node::set_power_cap
    pub fn reset(&mut self, n_nodes: usize, node_cap_w: Option<f64>, window: SimDuration) {
        let lanes = n_nodes * self.cfg.n_packages;
        if lanes <= self.pkgs.lanes() && n_nodes <= self.energy_j.len() {
            self.reuse_hits += 1;
        }
        self.n_nodes = n_nodes;
        self.pkgs.temp_c.resize(lanes, 0.0);
        self.pkgs
            .temp_c
            .iter_mut()
            .for_each(|t| *t = self.thermal.t_ambient);
        self.pkgs.throttling.reset(lanes);
        self.pkgs.pstate_req.resize(lanes, 0);
        let top = self.top_idx;
        self.pkgs.pstate_req.iter_mut().for_each(|p| *p = top);
        self.pkgs
            .caps
            .resize_with(lanes, || None::<(PowerCap, RaplWindow)>);
        self.energy_j.resize(n_nodes, 0.0);
        self.energy_j.iter_mut().for_each(|e| *e = 0.0);
        match node_cap_w {
            None => self.pkgs.caps.iter_mut().for_each(|c| *c = None),
            Some(cap_w) => {
                // Fresh-node semantics (unlike `set_power_cap`'s mid-run
                // retarget): controller state and window history start empty,
                // exactly as on a newly built scalar node — only the window
                // allocation is recycled.
                let for_packages = cap_w - self.cfg.misc_power_w;
                assert!(
                    for_packages > 0.0,
                    "node cap {cap_w} below platform power {}",
                    self.cfg.misc_power_w
                );
                let per_pkg = for_packages / self.cfg.n_packages as f64;
                let top_idx = self.top_idx;
                for slot in self.pkgs.caps.iter_mut() {
                    let mut win = match slot.take() {
                        Some((_, mut w)) if w.window() == window => {
                            w.reset();
                            w
                        }
                        _ => RaplWindow::new(window),
                    };
                    win.record(SimTime::ZERO, 0.0);
                    *slot = Some((PowerCap::new(per_pkg, window, top_idx), win));
                }
            }
        }
    }

    /// Register a phase mix, returning its id. Mixes with identical weight
    /// bit patterns share an id, so per-phase registration is amortized.
    pub fn register_mix(&mut self, mix: &PhaseMix) -> usize {
        let key = [
            mix.weight(PhaseKind::ComputeBound).to_bits(),
            mix.weight(PhaseKind::MemoryBound).to_bits(),
            mix.weight(PhaseKind::CommBound).to_bits(),
            mix.weight(PhaseKind::IoBound).to_bits(),
        ];
        if let Some(&id) = self.mix_index.get(&key) {
            return id;
        }
        let id = self.mixes.len();
        self.mixes.push(mix.clone());
        self.mix_index.insert(key, id);
        self.coeffs
            .resize(self.mixes.len() * self.coeff_stride(), None);
        id
    }

    /// Request a P-state on every package of `node` (clamped to the table),
    /// mirroring per-package `set_pstate` on the scalar path.
    pub fn set_pstate(&mut self, node: usize, idx: usize) {
        let idx = idx.min(self.top_idx);
        let base = node * self.cfg.n_packages;
        for lane in base..base + self.cfg.n_packages {
            self.pkgs.pstate_req[lane] = idx;
        }
    }

    /// Apply a node power cap, replicating [`Node::set_power_cap`] bit for
    /// bit: platform power is reserved, the remainder split evenly across
    /// packages; an existing cap with the same window is retargeted in place.
    ///
    /// # Panics
    /// Panics if the cap does not cover platform power.
    ///
    /// [`Node::set_power_cap`]: crate::node::Node::set_power_cap
    pub fn set_power_cap(&mut self, node: usize, now: SimTime, cap_w: f64, window: SimDuration) {
        let for_packages = cap_w - self.cfg.misc_power_w;
        assert!(
            for_packages > 0.0,
            "node cap {cap_w} below platform power {}",
            self.cfg.misc_power_w
        );
        let per_pkg = for_packages / self.cfg.n_packages as f64;
        let base = node * self.cfg.n_packages;
        for lane in base..base + self.cfg.n_packages {
            match &mut self.pkgs.caps[lane] {
                Some((cap, _)) if cap.window() == window => cap.set_cap_w(per_pkg),
                slot => {
                    // Reuse the window's allocation where one exists; a reset
                    // window is indistinguishable from a fresh one.
                    let mut win = match slot.take() {
                        Some((_, mut w)) if w.window() == window => {
                            w.reset();
                            w
                        }
                        _ => RaplWindow::new(window),
                    };
                    win.record(now, 0.0);
                    *slot = Some((PowerCap::new(per_pkg, window, self.top_idx), win));
                }
            }
        }
    }

    /// Change the ambient (inlet) temperature of every lane, mirroring
    /// [`ThermalModel::set_ambient_c`] applied to each scalar package: the
    /// junction temperature floor moves with it.
    ///
    /// # Panics
    /// Panics if the ambient reaches the throttle point.
    pub fn set_ambient_c(&mut self, t_ambient: f64) {
        assert!(
            t_ambient < self.thermal.t_throttle,
            "ambient must stay below the throttle point"
        );
        let delta = t_ambient - self.thermal.t_ambient;
        self.thermal.t_ambient = t_ambient;
        self.pkgs.temp_c.iter_mut().for_each(|t| *t += delta);
    }

    /// True if any package of `node` currently holds a cap.
    pub fn has_cap(&self, node: usize) -> bool {
        let base = node * self.cfg.n_packages;
        self.pkgs.caps[base..base + self.cfg.n_packages]
            .iter()
            .any(|c| c.is_some())
    }

    /// Total energy consumed by `node`, joules (matches [`Node::energy_j`]).
    ///
    /// [`Node::energy_j`]: crate::node::Node::energy_j
    pub fn energy_j(&self, node: usize) -> f64 {
        self.energy_j[node]
    }

    /// Hottest package temperature of `node`, °C.
    pub fn max_temperature_c(&self, node: usize) -> f64 {
        let base = node * self.cfg.n_packages;
        self.pkgs.temp_c[base..base + self.cfg.n_packages]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Memoized decay factor `exp(-dt_s / τ)`; bit-identical to the scalar
    /// `ThermalModel::advance` computation for any previously seen `dt_s`.
    fn decay(&mut self, dt_s: f64) -> f64 {
        let bits = dt_s.to_bits();
        if self.last_decay.0 == bits {
            return self.last_decay.1;
        }
        let d = match self.exp_memo.get(&bits) {
            Some(&d) => d,
            None => {
                let d = (-dt_s / self.tau_s).exp();
                self.exp_memo.insert(bits, d);
                d
            }
        };
        self.last_decay = (bits, d);
        d
    }

    /// Dense-table slots per mix: one per P-state (active count is a tag).
    fn coeff_stride(&self) -> usize {
        self.top_idx + 1
    }

    /// Operating-point coefficients, computed on miss by the scalar model.
    /// `idx` is an *effective* (clamped) P-state and `active` a per-package
    /// core count, so the dense index is always in bounds.
    fn coeff(&mut self, mix_id: usize, idx: usize, active: usize) -> Coeff {
        let slot = mix_id * (self.top_idx + 1) + idx;
        if let Some((a, c)) = self.coeffs[slot] {
            if a == active {
                return c;
            }
        }
        let mix = &self.mixes[mix_id];
        let pk = &self.cfg.package;
        let freq_ghz = pk.pstates.freq(idx);
        let speed = pk
            .speed
            .speed(mix, freq_ghz, self.uncore_ghz, DutyCycle::FULL);
        let core_dyn_w = pk
            .power
            .core_dynamic_w(&pk.pstates, idx, DutyCycle::FULL, active, mix);
        let dram_w = pk.power.dram_w(mix, speed);
        let c = Coeff {
            speed,
            core_dyn_w,
            dram_w,
            freq_ghz,
        };
        self.coeffs[slot] = Some((active, c));
        c
    }

    /// Effective P-state of a lane after cap and thermal clamps (same
    /// precedence as [`Package::effective_pstate`]).
    ///
    /// [`Package::effective_pstate`]: crate::package::Package::effective_pstate
    fn effective_pstate(&self, lane: usize) -> usize {
        let mut idx = self.pkgs.pstate_req[lane];
        if let Some((cap, _)) = &self.pkgs.caps[lane] {
            idx = idx.min(cap.allowed_idx());
        }
        if self.pkgs.throttling.get(lane) {
            idx = 0;
        }
        idx
    }

    /// Work rate of `node` (work units per second), bit-identical to
    /// [`Node::work_rate`] at the same state.
    ///
    /// [`Node::work_rate`]: crate::node::Node::work_rate
    pub fn work_rate(&mut self, node: usize, mix_id: usize, active_cores: usize) -> f64 {
        let n_cores = self.cfg.package.n_cores;
        let mut remaining = active_cores.min(self.cfg.total_cores());
        let base = node * self.cfg.n_packages;
        let mut sum = 0.0;
        for lane in base..base + self.cfg.n_packages {
            let n = remaining.min(n_cores);
            remaining -= n;
            let idx = self.effective_pstate(lane);
            let c = self.coeff(mix_id, idx, n);
            sum += c.speed * n as f64 / n_cores as f64;
        }
        sum / self.cfg.n_packages as f64
    }

    /// Advance `node` by `dt` running mix `mix_id` on `active_cores`,
    /// bit-identical to [`Node::step`] at the same state (counters excepted —
    /// the batch keeps none).
    ///
    /// [`Node::step`]: crate::node::Node::step
    pub fn step(
        &mut self,
        node: usize,
        now: SimTime,
        dt: SimDuration,
        mix_id: usize,
        active_cores: usize,
    ) -> StepOutput {
        self.step_inner(node, now, dt, mix_id, active_cores, false)
            .0
    }

    /// Like [`step`](NodeBatch::step) but with the cap controller *held*:
    /// the allowed P-state only moves on an emergency descent (measured
    /// average above the cap); climbing and probing are suppressed. Used by
    /// coarse-tick drivers between control events, where a long tick would
    /// otherwise turn one 250 ms probe excursion into a tick-long one.
    ///
    /// Returns the step output plus whether any package's allowed P-state
    /// changed — a control event the driver should react to by re-entering
    /// fine stepping.
    pub fn step_held(
        &mut self,
        node: usize,
        now: SimTime,
        dt: SimDuration,
        mix_id: usize,
        active_cores: usize,
    ) -> (StepOutput, bool) {
        self.step_inner(node, now, dt, mix_id, active_cores, true)
    }

    fn step_inner(
        &mut self,
        node: usize,
        now: SimTime,
        dt: SimDuration,
        mix_id: usize,
        active_cores: usize,
        hold_climb: bool,
    ) -> (StepOutput, bool) {
        let n_cores = self.cfg.package.n_cores;
        let n_packages = self.cfg.n_packages;
        let dt_s = dt.as_secs_f64();
        let decay = self.decay(dt_s);
        let mut remaining = active_cores.min(self.cfg.total_cores());
        let base = node * n_packages;
        let mut work = 0.0;
        let mut power = self.cfg.misc_power_w;
        let mut freq = 0.0;
        let mut throttled = false;
        let mut cap_changed = false;
        for lane in base..base + n_packages {
            let n = remaining.min(n_cores);
            remaining -= n;
            let idx = self.effective_pstate(lane);
            let c = self.coeff(mix_id, idx, n);
            // Same association as the scalar `Package::power_w`:
            // ((core_dyn + leak) + uncore) + dram, with the ×1.0 nominal
            // variation factors elided (bitwise identity).
            let leak = self.cfg.package.power.leakage_w(self.pkgs.temp_c[lane]);
            let p_w = c.core_dyn_w + leak + self.uncore_w + c.dram_w;
            // Exact RC advance with the memoized decay factor.
            let t_inf = self.thermal.t_ambient + p_w * self.thermal.r_th;
            let t_now = t_inf + (self.pkgs.temp_c[lane] - t_inf) * decay;
            self.pkgs.temp_c[lane] = t_now;
            if t_now >= self.thermal.t_throttle {
                self.pkgs.throttling.set(lane, true);
            } else if t_now <= self.thermal.t_throttle - self.thermal.hysteresis {
                self.pkgs.throttling.set(lane, false);
            }
            // RAPL bookkeeping + one control action, as in `Package::step`.
            if let Some((cap, win)) = &mut self.pkgs.caps[lane] {
                win.record(now, p_w);
                let end = now + dt;
                let avg = if dt >= win.window() {
                    // The window sees only the step just recorded, so the
                    // average is flat at `p_w`. Replicate `average_w`'s two
                    // final flops so the bits agree with the general path.
                    let from = SimTime(end.0.saturating_sub(win.window().0));
                    let span = end.since(from).as_secs_f64();
                    (p_w * span) / span
                } else {
                    win.average_w(end)
                };
                if !hold_climb || avg > cap.cap_w() {
                    let before = cap.allowed_idx();
                    cap.control(avg, self.top_idx);
                    cap_changed |= cap.allowed_idx() != before;
                }
            }
            let share = n as f64 / n_cores as f64;
            work += c.speed * dt_s * share;
            power += p_w;
            freq += c.freq_ghz;
            throttled |= self.pkgs.throttling.get(lane);
        }
        self.energy_j[node] += power * dt_s;
        let out = StepOutput {
            work: work / n_packages as f64,
            power_w: power,
            effective_freq_ghz: freq / n_packages as f64,
            throttled,
        };
        (out, cap_changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseKind;

    fn batch() -> NodeBatch {
        let mut b = NodeBatch::new(NodeConfig::server_default());
        b.reset(1, None, SimDuration::from_millis(10));
        b
    }

    #[test]
    fn bitset_round_trip() {
        let mut bs = Bitset::default();
        bs.reset(130);
        assert_eq!(bs.len(), 130);
        bs.set(0, true);
        bs.set(64, true);
        bs.set(129, true);
        assert!(bs.get(0) && bs.get(64) && bs.get(129));
        assert!(!bs.get(1) && !bs.get(63) && !bs.get(128));
        bs.set(64, false);
        assert!(!bs.get(64));
        bs.reset(130);
        assert!(!bs.get(0) && !bs.get(129));
    }

    #[test]
    fn register_mix_dedupes_identical_weights() {
        let mut b = batch();
        let a = b.register_mix(&PhaseMix::pure(PhaseKind::ComputeBound));
        let c = b.register_mix(&PhaseMix::pure(PhaseKind::ComputeBound));
        let d = b.register_mix(&PhaseMix::pure(PhaseKind::CommBound));
        assert_eq!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut b = NodeBatch::new(NodeConfig::server_default());
        b.reset(4, None, SimDuration::from_millis(10));
        assert_eq!(b.reuse_hits(), 0);
        let mix = b.register_mix(&PhaseMix::pure(PhaseKind::ComputeBound));
        b.step(0, SimTime::ZERO, SimDuration::from_secs(1), mix, 48);
        assert!(b.energy_j(0) > 0.0);
        b.reset(4, None, SimDuration::from_millis(10));
        assert_eq!(b.reuse_hits(), 1);
        assert_eq!(b.energy_j(0), 0.0);
        assert_eq!(b.max_temperature_c(0), 25.0);
        b.reset(2, Some(300.0), SimDuration::from_millis(10));
        assert_eq!(b.reuse_hits(), 2);
        assert!(b.has_cap(0) && b.has_cap(1));
        b.reset(2, None, SimDuration::from_millis(10));
        assert!(!b.has_cap(0));
    }

    #[test]
    #[should_panic(expected = "below platform power")]
    fn cap_below_platform_panics() {
        let mut b = batch();
        b.set_power_cap(0, SimTime::ZERO, 30.0, SimDuration::from_millis(10));
    }
}
