//! Crash-safe resume equivalence through the public facade.
//!
//! Contracts asserted here (the integration-level view of extension E7):
//!
//! - a session killed at *any* decile of its budget resumes from the
//!   write-ahead checkpoint to a **byte-identical** report;
//! - parallel resumes may use a different worker count than the killed
//!   run — recovery does not depend on the pool size that died;
//! - the resilient loop's quarantine ledger and the evaluation cache
//!   round-trip through snapshots (`misses == evals` still balances after
//!   a crash/resume cycle);
//! - a WAL truncated or bit-flipped at **any byte offset** yields either a
//!   clean resume from the longest valid prefix (still byte-identical —
//!   whatever the tail lost is simply re-evaluated) or a typed error.
//!   Never a panic.
//! - resuming with the wrong algorithm is refused with a typed
//!   checkpoint error, not silently accepted.

// Integration tests are exempt from the workspace unwrap policy.
#![allow(clippy::disallowed_methods)]

use powerstack::autotune::{
    AnnealingSearch, Config, EvalError, Evaluation, ForestSearch, ParamSpace, RandomSearch,
    Robustness, TuneError, TuneReport, Tuner,
};
use powerstack::prelude::*;
use proptest::prelude::*;
use pstack_ckpt::{ScratchDir, SessionDir};
use std::collections::HashMap;

const SEED: u64 = 20200913;
const MAX_EVALS: usize = 12;
const SNAPSHOT_EVERY: usize = 5;

fn space() -> ParamSpace {
    ParamSpace::new()
        .with(Param::ints("tile", [8, 16, 32, 64]))
        .with(Param::ints("unroll", [1, 2, 4, 8]))
        .with(Param::boolean("packing"))
        .with_constraint("unroll<=tile", |s, c| {
            s.value(c, "unroll").as_int() <= s.value(c, "tile").as_int()
        })
}

fn objective(space: &ParamSpace, cfg: &Config) -> (f64, HashMap<String, f64>) {
    let tile = space.value(cfg, "tile").as_int() as f64;
    let unroll = space.value(cfg, "unroll").as_int() as f64;
    let packing = space.value(cfg, "packing").as_bool();
    let time = (tile - 32.0).abs() / 8.0 + (unroll - 4.0).abs() + if packing { 0.0 } else { 1.5 };
    let mut aux = HashMap::new();
    aux.insert("time_s".to_string(), time);
    (1.0 + time, aux)
}

fn json(report: &TuneReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

fn base_tuner() -> Tuner {
    Tuner::new(space()).max_evals(MAX_EVALS).seed(SEED)
}

/// Kill ordinals at every decile of an `evals`-long session, deduplicated.
fn decile_kill_points(evals: usize) -> Vec<usize> {
    let mut points: Vec<usize> = (1..=10)
        .map(|k| (evals * k / 10).max(1).min(evals) - 1)
        .collect();
    points.dedup();
    points
}

// --- serial kill/resume grid ----------------------------------------------

#[test]
fn serial_kill_resume_is_byte_identical_at_every_decile() {
    let base = base_tuner();
    let baseline = base
        .run(&mut AnnealingSearch::default_schedule(), objective)
        .expect("baseline completes");
    let baseline_json = json(&baseline);
    for kill_at in decile_kill_points(baseline.evals) {
        let scratch = ScratchDir::new(&format!("it-serial-{kill_at}"));
        let armed = base
            .clone()
            .checkpoint(scratch.path())
            .snapshot_every(SNAPSHOT_EVERY)
            .interrupt_when(move |ordinal| ordinal == kill_at);
        match armed.run(&mut AnnealingSearch::default_schedule(), objective) {
            Err(TuneError::Interrupted { at_ordinal }) => assert_eq!(at_ordinal, kill_at),
            other => panic!("expected interrupt at {kill_at}, got {other:?}"),
        }
        let resumer = base.clone().checkpoint(scratch.path());
        let resumed = resumer
            .resume(&mut AnnealingSearch::default_schedule(), objective)
            .expect("resume completes");
        assert_eq!(
            json(&resumed),
            baseline_json,
            "kill at ordinal {kill_at} diverged on resume"
        );
    }
}

// --- parallel worker invariance -------------------------------------------

#[test]
fn parallel_kill_resume_is_worker_invariant() {
    let base = base_tuner();
    for workers in [1usize, 4, 8] {
        let resume_workers = match workers {
            1 => 4,
            4 => 8,
            _ => 1,
        };
        let baseline = base
            .run_parallel(&mut RandomSearch::new(), workers, objective)
            .expect("baseline completes");
        let baseline_json = json(&baseline);
        for kill_at in decile_kill_points(baseline.evals) {
            let scratch = ScratchDir::new(&format!("it-par-{workers}-{kill_at}"));
            let armed = base
                .clone()
                .checkpoint(scratch.path())
                .snapshot_every(SNAPSHOT_EVERY)
                .interrupt_when(move |ordinal| ordinal == kill_at);
            match armed.run_parallel(&mut RandomSearch::new(), workers, objective) {
                Err(TuneError::Interrupted { .. }) => {}
                other => panic!("expected interrupt at {kill_at}, got {other:?}"),
            }
            let resumer = base.clone().checkpoint(scratch.path());
            let resumed = resumer
                .resume_parallel(&mut RandomSearch::new(), resume_workers, objective)
                .expect("resume completes");
            assert_eq!(
                json(&resumed),
                baseline_json,
                "workers {workers}->{resume_workers}, kill at {kill_at}: resume diverged"
            );
        }
    }
}

// --- quarantine ledger + eval cache round-trips ---------------------------

/// Evaluator whose `tile = 64` configurations always fail: after the retry
/// budget they are quarantined, so the session's WAL and snapshots carry a
/// real quarantine ledger across the kill.
fn flaky(space: &ParamSpace, cfg: &Config, _attempt: usize) -> Result<Evaluation, EvalError> {
    if space.value(cfg, "tile").as_int() == 64 {
        return Err(EvalError::Failed("tile 64 always faults".to_string()));
    }
    Ok(objective(space, cfg))
}

/// Quarantine checks only engage well past the small test database, so the
/// honest objective spread never trips poison detection mid-grid.
fn lenient() -> Robustness {
    Robustness {
        outlier_factor: 100.0,
        poison_fraction: 0.9,
        ..Robustness::default()
    }
}

#[test]
fn quarantine_ledger_round_trips_through_snapshots() {
    let base = base_tuner();
    let baseline = base
        .run_resilient(&mut ForestSearch::new(), None, &lenient(), flaky)
        .expect("baseline completes");
    assert!(
        baseline.faults.counts.quarantined > 0,
        "fixture produced no quarantines; the ledger round-trip is vacuous"
    );
    let baseline_json = json(&baseline);
    for kill_at in decile_kill_points(baseline.evals) {
        let scratch = ScratchDir::new(&format!("it-quar-{kill_at}"));
        let armed = base
            .clone()
            .checkpoint(scratch.path())
            .snapshot_every(SNAPSHOT_EVERY)
            .interrupt_when(move |ordinal| ordinal == kill_at);
        match armed.run_resilient(&mut ForestSearch::new(), None, &lenient(), flaky) {
            Err(TuneError::Interrupted { .. }) => {}
            other => panic!("expected interrupt at {kill_at}, got {other:?}"),
        }
        let resumed = base
            .clone()
            .checkpoint(scratch.path())
            .resume_resilient(&mut ForestSearch::new(), None, flaky)
            .expect("resume completes");
        assert_eq!(
            json(&resumed),
            baseline_json,
            "quarantine ledger diverged after kill at {kill_at}"
        );
        // The ledger balance survives the crash: everything that ran is a
        // miss; hits and quarantine skips never re-simulate.
        assert_eq!(
            resumed.cache.misses, resumed.evals,
            "misses must equal evals"
        );
    }
}

#[test]
fn eval_cache_round_trips_and_misses_equal_evals() {
    // A space small enough that the random walk re-suggests configurations,
    // so the cache actually fields hits across the kill/resume cycle.
    let tiny = ParamSpace::new()
        .with(Param::ints("tile", [8, 16]))
        .with(Param::boolean("packing"));
    let base = Tuner::new(tiny).max_evals(16).seed(SEED);
    let baseline = base
        .run(&mut RandomSearch::new(), objective_tiny)
        .expect("baseline completes");
    assert!(
        baseline.cache.hits > 0,
        "fixture produced no cache hits; the cache round-trip is vacuous"
    );
    let baseline_json = json(&baseline);
    let kill_at = (baseline.evals / 2).max(1) - 1;
    let scratch = ScratchDir::new("it-cache");
    let armed = base
        .clone()
        .checkpoint(scratch.path())
        .snapshot_every(2)
        .interrupt_when(move |ordinal| ordinal == kill_at);
    match armed.run(&mut RandomSearch::new(), objective_tiny) {
        Err(TuneError::Interrupted { .. }) => {}
        other => panic!("expected interrupt, got {other:?}"),
    }
    let resumed = base
        .clone()
        .checkpoint(scratch.path())
        .resume(&mut RandomSearch::new(), objective_tiny)
        .expect("resume completes");
    assert_eq!(json(&resumed), baseline_json, "cached session diverged");
    assert_eq!(
        resumed.cache.misses, resumed.evals,
        "misses must equal evals"
    );
    assert_eq!(resumed.cache.hits, baseline.cache.hits);
}

fn objective_tiny(space: &ParamSpace, cfg: &Config) -> (f64, HashMap<String, f64>) {
    let tile = space.value(cfg, "tile").as_int() as f64;
    let packing = space.value(cfg, "packing").as_bool();
    (tile / 8.0 + if packing { 0.0 } else { 1.5 }, HashMap::new())
}

// --- wrong-algorithm refusal ----------------------------------------------

#[test]
fn resume_with_wrong_algorithm_is_refused() {
    let base = base_tuner();
    let scratch = ScratchDir::new("it-wrong-algo");
    let armed = base
        .clone()
        .checkpoint(scratch.path())
        .interrupt_when(|ordinal| ordinal == 3);
    match armed.run(&mut AnnealingSearch::default_schedule(), objective) {
        Err(TuneError::Interrupted { .. }) => {}
        other => panic!("expected interrupt, got {other:?}"),
    }
    match base
        .clone()
        .checkpoint(scratch.path())
        .resume(&mut RandomSearch::new(), objective)
    {
        Err(TuneError::Checkpoint { detail }) => {
            assert!(
                detail.contains("random") || detail.contains("anneal"),
                "refusal should name the mismatched algorithm: {detail}"
            );
        }
        other => panic!("algorithm mismatch must be a checkpoint error, got {other:?}"),
    }
}

// --- WAL corruption: never panic, never diverge ---------------------------

/// One killed session's artifacts, captured once: the baseline report JSON
/// plus the exact WAL and snapshot bytes the kill left on disk.
struct KilledSession {
    baseline_json: String,
    wal: Vec<u8>,
    snapshot: Vec<u8>,
}

fn killed_session() -> &'static KilledSession {
    static CELL: std::sync::OnceLock<KilledSession> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let base = base_tuner();
        let baseline = base
            .run(&mut AnnealingSearch::default_schedule(), objective)
            .expect("baseline completes");
        let kill_at = (baseline.evals * 3 / 4).max(1) - 1;
        let scratch = ScratchDir::new("it-corrupt-src");
        let armed = base
            .clone()
            .checkpoint(scratch.path())
            .snapshot_every(SNAPSHOT_EVERY)
            .interrupt_when(move |ordinal| ordinal == kill_at);
        match armed.run(&mut AnnealingSearch::default_schedule(), objective) {
            Err(TuneError::Interrupted { .. }) => {}
            other => panic!("expected interrupt, got {other:?}"),
        }
        let dir = SessionDir::new(scratch.path()).expect("session dir");
        KilledSession {
            baseline_json: json(&baseline),
            wal: std::fs::read(dir.wal_path()).expect("read WAL"),
            snapshot: std::fs::read(dir.snapshot_path()).expect("read snapshot"),
        }
    })
}

/// Resume from a mutated copy of the killed session. The only acceptable
/// outcomes: a report byte-identical to the uninterrupted baseline (the
/// corruption fell in a torn/droppable tail — whatever was lost is simply
/// re-evaluated) or a typed `TuneError`. Reaching either arm at all proves
/// no panic.
fn resume_mutated(wal: &[u8]) {
    let src = killed_session();
    let scratch = ScratchDir::new("it-corrupt");
    let dir = SessionDir::new(scratch.path()).expect("session dir");
    std::fs::write(dir.wal_path(), wal).expect("write mutated WAL");
    std::fs::write(dir.snapshot_path(), &src.snapshot).expect("write snapshot");
    let resumer = base_tuner().checkpoint(scratch.path());
    match resumer.resume(&mut AnnealingSearch::default_schedule(), objective) {
        Ok(report) => assert_eq!(
            json(&report),
            src.baseline_json,
            "resume from corrupted WAL diverged instead of erroring"
        ),
        Err(e) => {
            // Typed errors are acceptable; their rendering must be clean.
            assert!(!format!("{e}").is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the WAL at any byte offset resumes from the longest
    /// valid prefix (re-evaluating what the tail lost) or fails typed.
    #[test]
    fn truncated_wal_never_panics(offset in 0usize..8192) {
        let src = killed_session();
        let cut = offset % (src.wal.len() + 1);
        resume_mutated(&src.wal[..cut]);
    }

    /// Flipping any single bit anywhere in the WAL is caught by the frame
    /// checksums: clean resume from the prefix before the damage, or a
    /// typed error. Never a panic, never a silently-divergent report.
    #[test]
    fn bit_flipped_wal_never_panics(offset in 0usize..8192, bit in 0u8..8) {
        let src = killed_session();
        let mut wal = src.wal.clone();
        let at = offset % wal.len();
        wal[at] ^= 1 << bit;
        resume_mutated(&wal);
    }
}
