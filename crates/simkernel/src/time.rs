//! Simulated time.
//!
//! Time is an integer number of microseconds since simulation start. Integer
//! time keeps event ordering exact and makes long-horizon simulations (days of
//! simulated cluster uptime) immune to floating-point accumulation error.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Absolute simulated time: microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Time as fractional seconds (for reporting; never feed back into ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative or non-finite inputs clamp to zero: durations are never negative.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Construct from fractional seconds, rounding *up* to the next whole
    /// microsecond (never yields a shorter span than requested).
    pub fn from_secs_f64_ceil(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).ceil() as u64)
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3), SimTime(3_000_000));
        assert_eq!(SimTime::from_millis(3), SimTime(3_000));
        assert_eq!(SimTime::from_micros(3), SimTime(3));
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_micros(), 10_500_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn float_conversion() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 10, SimDuration::from_secs(1));
        assert_eq!(d / 4, SimDuration::from_micros(25_000));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u32::MAX as u64));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(2500)), "0.003s");
    }
}
