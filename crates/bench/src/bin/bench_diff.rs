//! Perf-regression gate: fresh artifacts vs committed `results/`.
//!
//! Usage: `bench_diff [COMMITTED_DIR] [FRESH_DIR] [--require NAME ...]`
//!
//! Defaults: committed `results/`, fresh `$POWERSTACK_RESULTS_DIR` (the
//! directory the regenerating bins were pointed at). Compares every
//! artifact covered by [`pstack_bench::diff::shipped_rules`] that exists in
//! the fresh directory, prints the perfgate table, and exits nonzero on any
//! tolerance violation or missing required artifact. The CI `perfgate` job
//! regenerates a fast subset into a scratch dir and runs this binary with
//! that subset `--require`d.
//!
//! Registered `writes_json: false`: this binary is a pure gate — it writes
//! no artifact of its own (and therefore carries no trace exporter).

use pstack_bench::diff;
use std::path::PathBuf;

fn main() {
    pstack_analyze::startup_gate();

    let mut committed = PathBuf::from("results");
    let mut fresh = PathBuf::from(
        std::env::var("POWERSTACK_RESULTS_DIR").unwrap_or_else(|_| "target/perfgate".to_string()),
    );
    let mut require: Vec<String> = Vec::new();
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => {
                let name = args.next().unwrap_or_else(|| {
                    eprintln!("error: --require needs an artifact name");
                    std::process::exit(2);
                });
                require.push(name);
            }
            _ => {
                match positional {
                    0 => committed = PathBuf::from(&arg),
                    1 => fresh = PathBuf::from(&arg),
                    _ => {
                        eprintln!("error: unexpected argument {arg:?}");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
    }

    let report =
        pstack_bench::run_or_exit("bench_diff", diff::diff_dirs(&committed, &fresh, &require));
    println!("{}", diff::render(&report));
    if report.failures > 0 {
        eprintln!(
            "error: bench_diff: {} gated metric(s) regressed",
            report.failures
        );
        std::process::exit(1);
    }
}
