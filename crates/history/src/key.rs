//! History keys: canonical space fingerprints and the `(space, app,
//! objective)` triple every record is filed under.
//!
//! The checkpoint layer's space fingerprint
//! (`pstack_autotune::ParamSpace::fingerprint`) hashes parameters in
//! *declaration order* — exactly right for resume, where configuration
//! indices must mean the same knob values, and exactly wrong for history,
//! where two teams declaring the same space in a different order should
//! share data. [`SpaceShape::fingerprint`] is the canonical variant:
//! parameters are sorted by name (and constraints by name) before hashing,
//! so the print is invariant under reordering while still distinguishing
//! any real shape change (renamed knob, added value, new constraint).

use pstack_ckpt::fnv1a64;
use serde::{Deserialize, Serialize};

/// On-disk format version stamped into every store's `meta.json` and
/// shard-log header. Bump on any incompatible schema change so an old
/// store is rejected instead of misread.
pub const HISTORY_FORMAT_VERSION: u32 = 1;

/// One parameter of a space *shape*: its name and its value list rendered
/// canonically (the value order is meaningful — it is the ordinal
/// encoding — so it is preserved).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceParam {
    /// Parameter name, e.g. `"tile"`, `"node_cap_w"`.
    pub name: String,
    /// Rendered legal values, in declaration order.
    pub values: Vec<String>,
}

/// The hashable description of a parameter space: what the space *is*,
/// independent of how the code happened to declare it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceShape {
    /// The parameters (any order; the fingerprint canonicalizes).
    pub params: Vec<SpaceParam>,
    /// Constraint names (predicates are opaque closures, so their names
    /// stand in, as in the checkpoint fingerprint).
    pub constraints: Vec<String>,
}

impl SpaceShape {
    /// The canonical 16-hex-digit fingerprint: parameters sorted by name,
    /// constraints sorted, FNV-1a over the rendered form. Invariant under
    /// parameter/constraint reordering; sensitive to every rename, value
    /// change, and added/removed entry.
    pub fn fingerprint(&self) -> String {
        let mut params: Vec<&SpaceParam> = self.params.iter().collect();
        params.sort_by(|a, b| a.name.cmp(&b.name));
        let mut constraints: Vec<&String> = self.constraints.iter().collect();
        constraints.sort();
        let mut canon = String::new();
        for p in params {
            canon.push_str(&p.name);
            canon.push('=');
            for v in &p.values {
                canon.push_str(v);
                canon.push(',');
            }
            canon.push(';');
        }
        canon.push('|');
        for c in constraints {
            canon.push_str(c);
            canon.push(';');
        }
        format!("{:016x}", fnv1a64(canon.as_bytes()))
    }
}

/// Canonical fingerprint straight from `(name, values)` pairs plus
/// constraint names — for callers that have no [`SpaceShape`] at hand.
pub fn canonical_space_fingerprint(
    params: &[(String, Vec<String>)],
    constraints: &[String],
) -> String {
    SpaceShape {
        params: params
            .iter()
            .map(|(name, values)| SpaceParam {
                name: name.clone(),
                values: values.clone(),
            })
            .collect(),
        constraints: constraints.to_vec(),
    }
    .fingerprint()
}

/// Stable 16-hex fingerprint of a configuration (its index vector, LE
/// bytes). Identical to `pstack_autotune::config_fingerprint`, duplicated
/// here so the storage layer does not depend on the tuner.
pub fn config_fingerprint(cfg: &[usize]) -> String {
    let mut bytes = Vec::with_capacity(cfg.len() * 8);
    for &i in cfg {
        bytes.extend_from_slice(&(i as u64).to_le_bytes());
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// What a history record is filed under: which space, which application,
/// which objective. Records under different keys never mix — a `min-edp`
/// observation must not warm-start a `min-time` campaign, and two apps on
/// the same space are different workloads.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HistoryKey {
    /// Canonical space fingerprint ([`SpaceShape::fingerprint`]).
    pub space: String,
    /// Application label, e.g. `"hypre"`, `"kernel"`.
    pub app: String,
    /// Objective label, e.g. `"min-edp"`.
    pub objective: String,
}

impl HistoryKey {
    /// Build a key.
    pub fn new(
        space: impl Into<String>,
        app: impl Into<String>,
        objective: impl Into<String>,
    ) -> Self {
        HistoryKey {
            space: space.into(),
            app: app.into(),
            objective: objective.into(),
        }
    }

    /// The canonical rendering used for shard routing and diagnostics.
    pub fn canonical(&self) -> String {
        format!("{}/{}/{}", self.space, self.app, self.objective)
    }

    /// Which shard (of `shard_count`) this key's records live in.
    ///
    /// # Panics
    /// Panics on a zero shard count (the store enforces its bounds before
    /// routing).
    pub fn shard(&self, shard_count: usize) -> usize {
        assert!(shard_count > 0, "shard count must be positive");
        (fnv1a64(self.canonical().as_bytes()) % shard_count as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> SpaceShape {
        SpaceShape {
            params: vec![
                SpaceParam {
                    name: "tile".into(),
                    values: vec!["8".into(), "16".into(), "32".into()],
                },
                SpaceParam {
                    name: "solver".into(),
                    values: vec!["pcg".into(), "gmres".into()],
                },
            ],
            constraints: vec!["unroll<=tile".into(), "amg".into()],
        }
    }

    #[test]
    fn fingerprint_is_reorder_invariant() {
        let a = shape();
        let mut b = shape();
        b.params.reverse();
        b.constraints.reverse();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
    }

    #[test]
    fn fingerprint_tracks_every_real_shape_change() {
        let base = shape().fingerprint();
        let mut renamed = shape();
        renamed.params[0].name = "tile2".into();
        assert_ne!(base, renamed.fingerprint());
        let mut revalued = shape();
        revalued.params[0].values.push("64".into());
        assert_ne!(base, revalued.fingerprint());
        let mut reconstrained = shape();
        reconstrained.constraints.push("extra".into());
        assert_ne!(base, reconstrained.fingerprint());
        // Value *order* is the ordinal encoding, so reordering values is a
        // real change (indices would mean different knob settings).
        let mut swapped = shape();
        swapped.params[0].values.swap(0, 1);
        assert_ne!(base, swapped.fingerprint());
    }

    #[test]
    fn key_shards_stay_in_range_and_are_stable() {
        let key = HistoryKey::new(shape().fingerprint(), "hypre", "min-edp");
        for shards in 1..=64 {
            assert!(key.shard(shards) < shards);
        }
        assert_eq!(key.shard(8), key.shard(8), "routing is deterministic");
        let other = HistoryKey::new(shape().fingerprint(), "kernel", "min-edp");
        assert_ne!(key.canonical(), other.canonical());
    }

    #[test]
    fn config_fingerprint_distinguishes_order_and_value() {
        assert_eq!(config_fingerprint(&[1, 2]), config_fingerprint(&[1, 2]));
        assert_ne!(config_fingerprint(&[1, 2]), config_fingerprint(&[2, 1]));
        assert_ne!(config_fingerprint(&[1]), config_fingerprint(&[1, 0]));
        assert_eq!(config_fingerprint(&[3, 0, 1]).len(), 16);
    }

    #[test]
    fn key_round_trips_through_json() {
        let key = HistoryKey::new("abcd0123abcd0123", "hypre", "min-edp");
        let json = serde_json::to_string(&key).expect("serializes");
        let back: HistoryKey = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, key);
    }
}
