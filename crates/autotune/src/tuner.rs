//! The autotuning loop (Figure 4).
//!
//! `Tuner` wires a [`SearchAlgorithm`] to an evaluator closure (the paper's
//! `plopper`: "compiles the code and executes it to get the execution time")
//! and repeats suggest → evaluate → record until the evaluation budget
//! (`--max-evals`, default 100 in ytopt) is spent.

use crate::db::PerfDatabase;
use crate::search::SearchAlgorithm;
use crate::space::{Config, ParamSpace};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Algorithm name.
    pub algorithm: String,
    /// The full performance database.
    pub db: PerfDatabase,
    /// Best configuration found.
    pub best_config: Config,
    /// Best objective found.
    pub best_objective: f64,
    /// Number of evaluations actually performed.
    pub evals: usize,
}

/// The tuning loop driver.
///
/// # Example
///
/// ```
/// use pstack_autotune::{ForestSearch, Param, ParamSpace, Tuner};
///
/// let space = ParamSpace::new()
///     .with(Param::ints("tile", [8, 16, 32, 64]))
///     .with(Param::ints("unroll", [1, 2, 4]));
/// let report = Tuner::new(space)
///     .max_evals(20)
///     .seed(42)
///     .run(&mut ForestSearch::new(), |space, cfg| {
///         // "plopper": evaluate the candidate (here: an analytic stand-in).
///         let tile = space.value(cfg, "tile").as_int() as f64;
///         let unroll = space.value(cfg, "unroll").as_int() as f64;
///         ((tile - 32.0).abs() + unroll, Default::default())
///     });
/// // The 12-point space is exhausted before the budget runs out.
/// assert_eq!(report.evals, 12);
/// assert_eq!(report.best_objective, 1.0); // tile=32, unroll=1
/// ```
pub struct Tuner {
    space: ParamSpace,
    max_evals: usize,
    seed: u64,
    warm_start: Option<PerfDatabase>,
}

impl Tuner {
    /// ytopt-like default budget of 100 evaluations.
    pub const DEFAULT_MAX_EVALS: usize = 100;

    /// Create a tuner over `space`.
    pub fn new(space: ParamSpace) -> Self {
        Tuner {
            space,
            max_evals: Self::DEFAULT_MAX_EVALS,
            seed: 0,
            warm_start: None,
        }
    }

    /// Seed the run with a prior performance database (transfer from earlier
    /// runs of the same space — the site "historic profile information"
    /// pattern of the paper's §3.2.2 mode 2, and the warm-start used by
    /// transfer-learning tuners). Prior observations inform the surrogate
    /// and are never re-evaluated, but do not count against the budget.
    ///
    /// # Panics
    /// Panics if any prior configuration is invalid in this space.
    pub fn warm_start(mut self, prior: PerfDatabase) -> Self {
        for obs in prior.observations() {
            assert!(
                self.space.is_valid(&obs.config),
                "warm-start config {:?} invalid in this space",
                obs.config
            );
        }
        self.warm_start = Some(prior);
        self
    }

    /// Set the evaluation budget (`--max-evals`).
    ///
    /// # Panics
    /// Panics on a zero budget.
    pub fn max_evals(mut self, n: usize) -> Self {
        assert!(n > 0, "budget must be positive");
        self.max_evals = n;
        self
    }

    /// Set the RNG seed for reproducible runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The space being tuned.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Run the loop. `evaluate` maps a configuration to `(objective, aux)`;
    /// the objective is minimized.
    ///
    /// Configurations the algorithm re-suggests are *not* re-evaluated — the
    /// cached observation is reused without consuming budget, but after 16
    /// consecutive duplicates the run ends early (the space is exhausted for
    /// this strategy).
    pub fn run(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        mut evaluate: impl FnMut(&ParamSpace, &Config) -> (f64, HashMap<String, f64>),
    ) -> TuneReport {
        let mut db = self.warm_start.clone().unwrap_or_default();
        let prior_len = db.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut consecutive_dups = 0;
        while db.len() - prior_len < self.max_evals {
            let Some(cfg) = algorithm.suggest(&self.space, &db, &mut rng) else {
                break; // strategy exhausted (e.g. grid complete)
            };
            assert!(
                self.space.is_valid(&cfg),
                "algorithm {} suggested invalid config {:?}",
                algorithm.name(),
                cfg
            );
            if db.contains(&cfg) {
                consecutive_dups += 1;
                if consecutive_dups >= 16 {
                    break;
                }
                continue;
            }
            consecutive_dups = 0;
            let (objective, aux) = evaluate(&self.space, &cfg);
            db.record(cfg, objective, aux);
        }
        let best = db.best().expect("at least one evaluation").clone();
        TuneReport {
            algorithm: algorithm.name().to_string(),
            // Fresh evaluations only; warm-start priors are free.
            evals: db.len() - prior_len,
            best_config: best.config,
            best_objective: best.objective,
            db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{ExhaustiveSearch, ForestSearch, RandomSearch};
    use crate::space::Param;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(Param::ints("x", 0..10))
            .with(Param::ints("y", 0..10))
    }

    fn bowl(_s: &ParamSpace, c: &Config) -> (f64, HashMap<String, f64>) {
        let o = (c[0] as f64 - 6.0).powi(2) + (c[1] as f64 - 2.0).powi(2);
        (o, HashMap::new())
    }

    #[test]
    fn exhaustive_finds_exact_optimum() {
        let report = Tuner::new(space())
            .max_evals(1000)
            .run(&mut ExhaustiveSearch::new(), bowl);
        assert_eq!(report.best_objective, 0.0);
        assert_eq!(report.best_config, vec![6, 2]);
        assert_eq!(report.evals, 100);
    }

    #[test]
    fn budget_is_respected() {
        let report = Tuner::new(space())
            .max_evals(20)
            .run(&mut RandomSearch::new(), bowl);
        assert_eq!(report.evals, 20);
        assert_eq!(report.db.len(), 20);
    }

    #[test]
    fn forest_budget_run_improves_over_initial() {
        let report = Tuner::new(space())
            .max_evals(40)
            .seed(5)
            .run(&mut ForestSearch::new(), bowl);
        let traj = report.db.trajectory();
        assert!(traj.last().unwrap() < &traj[7], "surrogate phase improves");
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = Tuner::new(space())
            .max_evals(15)
            .seed(9)
            .run(&mut RandomSearch::new(), bowl);
        let b = Tuner::new(space())
            .max_evals(15)
            .seed(9)
            .run(&mut RandomSearch::new(), bowl);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.db.observations(), b.db.observations());
    }

    #[test]
    fn warm_start_accelerates_surrogate() {
        // A prior database near the optimum should let the surrogate find
        // the basin with a far smaller fresh budget.
        let cold = Tuner::new(space())
            .max_evals(12)
            .seed(3)
            .run(&mut ForestSearch::new().with_init(4), bowl);
        let mut prior = crate::db::PerfDatabase::new();
        for cfg in [vec![5usize, 2], vec![7, 2], vec![6, 3], vec![6, 1], vec![4, 4], vec![8, 8]] {
            let (o, _) = bowl(&space(), &cfg);
            prior.record(cfg, o, HashMap::new());
        }
        let warm = Tuner::new(space())
            .max_evals(12)
            .seed(3)
            .warm_start(prior)
            .run(&mut ForestSearch::new().with_init(4), bowl);
        assert!(
            warm.best_objective <= cold.best_objective,
            "warm {} vs cold {}",
            warm.best_objective,
            cold.best_objective
        );
        assert!(warm.best_objective <= 1.0, "basin found: {}", warm.best_objective);
        // Budget counts only fresh evaluations.
        assert_eq!(warm.db.len(), 6 + warm.evals);
    }

    #[test]
    #[should_panic(expected = "invalid in this space")]
    fn warm_start_validates_configs() {
        let mut prior = crate::db::PerfDatabase::new();
        prior.record(vec![99, 99], 1.0, HashMap::new());
        let _ = Tuner::new(space()).warm_start(prior);
    }

    #[test]
    fn small_space_terminates_early() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..3));
        let report = Tuner::new(tiny)
            .max_evals(100)
            .run(&mut RandomSearch::new(), |_, c| (c[0] as f64, HashMap::new()));
        assert!(report.evals <= 3 + 16);
        assert_eq!(report.best_objective, 0.0);
    }
}
