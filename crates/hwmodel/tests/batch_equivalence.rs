//! Scalar-oracle equivalence for the batched SoA fast path.
//!
//! `NodeBatch` claims *bit* identity with `Node::step` / `Node::work_rate`
//! for the nominal-knob configuration. These property tests drive both
//! implementations through identical random sequences of phase mixes, active
//! core counts, tick lengths, P-state requests and cap applications —
//! including sequences hot enough to cross the 95 °C throttle threshold and
//! cool back through the 90 °C hysteresis release — and compare every output
//! with `f64::to_bits`.

#![allow(clippy::disallowed_methods)]

use proptest::prelude::*;
use pstack_hwmodel::{Node, NodeBatch, NodeConfig, NodeId, PhaseKind, PhaseMix, ThermalModel};
use pstack_sim::{SimDuration, SimTime};

/// One scripted action applied identically to both implementations.
#[derive(Debug, Clone)]
enum Action {
    /// Advance by `dt_us` running `mix` on `active` cores.
    Step {
        mix: PhaseMix,
        active: usize,
        dt_us: u64,
    },
    /// Request a P-state on every package.
    SetPstate(usize),
    /// Apply a node power cap (watts) over a 10 ms window.
    SetCap(f64),
}

/// Custom strategy (the vendored proptest stand-in has no `prop_oneof` /
/// `prop_map`): mostly steps, with occasional P-state requests and cap
/// applications mixed in.
struct ActionStrategy;

impl Strategy for ActionStrategy {
    type Value = Action;

    fn generate(&self, rng: &mut proptest::TestRng) -> Action {
        use rand::Rng;
        match rng.gen_range(0u32..10) {
            0 => Action::SetPstate(rng.gen_range(0usize..31)),
            1 => Action::SetCap(rng.gen_range(100.0f64..440.0)),
            _ => {
                let mix = match rng.gen_range(0u32..5) {
                    0 => PhaseMix::pure(PhaseKind::ComputeBound),
                    1 => PhaseMix::pure(PhaseKind::MemoryBound),
                    2 => PhaseMix::pure(PhaseKind::CommBound),
                    3 => PhaseMix::pure(PhaseKind::IoBound),
                    _ => PhaseMix::new(
                        rng.gen_range(1u32..9) as f64,
                        rng.gen_range(1u32..9) as f64,
                        rng.gen_range(1u32..9) as f64,
                        rng.gen_range(1u32..9) as f64,
                    ),
                };
                let active = [0usize, 1, 6, 24, 30, 48, 64][rng.gen_range(0usize..7)];
                // 1 µs .. 60 s spans the driver's substep range and beyond.
                let dt_us = match rng.gen_range(0u32..3) {
                    0 => rng.gen_range(1u64..250_001),
                    1 => 250_000,
                    _ => rng.gen_range(250_000u64..60_000_001),
                };
                Action::Step { mix, active, dt_us }
            }
        }
    }
}

/// Run the same script through the scalar node and the batch, asserting
/// bitwise-equal outputs at every step.
fn check_equivalence(initial_cap: Option<f64>, script: Vec<Action>) {
    let cfg = NodeConfig::server_default();
    let window = SimDuration::from_millis(10);
    let mut node = Node::nominal(NodeId(0), cfg.clone());
    let mut batch = NodeBatch::new(cfg);
    batch.reset(1, initial_cap, window);
    if let Some(cap) = initial_cap {
        node.set_power_cap(SimTime::ZERO, cap, window);
    }
    let mut t = SimTime::ZERO;
    for (i, action) in script.into_iter().enumerate() {
        match action {
            Action::Step { mix, active, dt_us } => {
                let dt = SimDuration::from_micros(dt_us);
                let mix_id = batch.register_mix(&mix);
                let rate_scalar = node.work_rate(&mix, active);
                let rate_batch = batch.work_rate(0, mix_id, active);
                assert_eq!(
                    rate_scalar.to_bits(),
                    rate_batch.to_bits(),
                    "work_rate diverged at action {i}: {rate_scalar} vs {rate_batch}"
                );
                let s = node.step(t, dt, &mix, active);
                let b = batch.step(0, t, dt, mix_id, active);
                assert_eq!(
                    s.power_w.to_bits(),
                    b.power_w.to_bits(),
                    "power diverged at action {i}: {} vs {}",
                    s.power_w,
                    b.power_w
                );
                assert_eq!(
                    s.work.to_bits(),
                    b.work.to_bits(),
                    "work diverged at action {i}"
                );
                assert_eq!(
                    s.effective_freq_ghz.to_bits(),
                    b.effective_freq_ghz.to_bits(),
                    "frequency diverged at action {i}"
                );
                assert_eq!(s.throttled, b.throttled, "throttle diverged at action {i}");
                assert_eq!(
                    node.energy_j().to_bits(),
                    batch.energy_j(0).to_bits(),
                    "energy diverged at action {i}"
                );
                assert_eq!(
                    node.max_temperature_c().to_bits(),
                    batch.max_temperature_c(0).to_bits(),
                    "temperature diverged at action {i}"
                );
                t += dt;
            }
            Action::SetPstate(idx) => {
                for p in node.packages_mut() {
                    p.set_pstate(idx);
                }
                batch.set_pstate(0, idx);
            }
            Action::SetCap(cap_w) => {
                node.set_power_cap(t, cap_w, window);
                batch.set_power_cap(0, t, cap_w, window);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uncapped random sequences: thermals, throttling and work accounting.
    #[test]
    fn batch_matches_scalar_uncapped(script in prop::collection::vec(ActionStrategy, 1..40)) {
        check_equivalence(None, script);
    }

    /// Capped from t = 0: the RAPL controller trajectory must match too.
    #[test]
    fn batch_matches_scalar_capped(
        cap in 150.0f64..440.0,
        script in prop::collection::vec(ActionStrategy, 1..40),
    ) {
        check_equivalence(Some(cap), script);
    }

    /// The memoized decay factor reproduces the scalar `ThermalModel` exactly
    /// for arbitrary power/tick sequences.
    #[test]
    fn thermal_memo_is_exact(
        seq in prop::collection::vec((0.0f64..500.0, 1u64..120_000_001), 1..64),
    ) {
        let cfg = NodeConfig::server_default();
        let mut scalar = ThermalModel::server_default();
        let mut batch = NodeBatch::new(cfg);
        batch.reset(1, None, SimDuration::from_millis(10));
        // Drive the batch's lane 0 thermal state indirectly is not possible
        // at arbitrary powers, so check the decay factor against a scalar
        // model advanced with the same dt: temperatures stay bit-equal when
        // power comes from the same step computation (covered above); here we
        // pin the standalone exponential path.
        for (p_w, dt_us) in seq {
            let dt_s = SimDuration::from_micros(dt_us).as_secs_f64();
            let before = scalar.temperature_c();
            scalar.advance(p_w, dt_s);
            let tau = scalar.r_th * scalar.c_th;
            let decay = (-dt_s / tau).exp();
            let t_inf = scalar.t_ambient + p_w * scalar.r_th;
            let expect = t_inf + (before - t_inf) * decay;
            prop_assert_eq!(scalar.temperature_c().to_bits(), expect.to_bits());
        }
    }
}

/// Deterministic regression: with a hot inlet, a sustained compute sequence
/// must cross the 95 °C throttle on both paths at the same step, hold through
/// hysteresis, and release at the same step after idling down.
#[test]
fn throttle_hysteresis_crossing_matches() {
    let cfg = NodeConfig::server_default();
    let mut node = Node::nominal(NodeId(0), cfg.clone());
    let mut batch = NodeBatch::new(cfg);
    batch.reset(1, None, SimDuration::from_millis(10));
    // Hot inlet so the compute mix can actually reach 95 °C (steady state
    // ≈ 70 + 155·0.25 ≈ 109 °C per package).
    node.set_ambient_c(70.0);
    batch.set_ambient_c(70.0);
    let mix = PhaseMix::pure(PhaseKind::ComputeBound);
    let mix_id = batch.register_mix(&mix);
    let dt = SimDuration::from_millis(250);
    let mut t = SimTime::ZERO;
    let mut saw_throttle = false;
    for i in 0..2000 {
        let s = node.step(t, dt, &mix, 48);
        let b = batch.step(0, t, dt, mix_id, 48);
        assert_eq!(s.throttled, b.throttled, "latch diverged at heat step {i}");
        assert_eq!(s.power_w.to_bits(), b.power_w.to_bits());
        assert_eq!(s.work.to_bits(), b.work.to_bits());
        saw_throttle |= s.throttled;
        t += dt;
    }
    assert!(saw_throttle, "test must actually engage the throttle");
    // Cool down: idle mix, zero active cores — the hysteresis release below
    // 90 °C must happen on the same step for both paths.
    let idle = PhaseMix::pure(PhaseKind::IoBound);
    let idle_id = batch.register_mix(&idle);
    let mut released = false;
    for i in 0..2000 {
        let s = node.step(t, dt, &idle, 0);
        let b = batch.step(0, t, dt, idle_id, 0);
        assert_eq!(s.throttled, b.throttled, "latch diverged at cool step {i}");
        assert_eq!(s.power_w.to_bits(), b.power_w.to_bits());
        released |= !s.throttled;
        t += dt;
    }
    assert!(released, "test must actually release the throttle");
    assert_eq!(
        node.energy_j().to_bits(),
        batch.energy_j(0).to_bits(),
        "energy must agree across the full throttle cycle"
    );
}
