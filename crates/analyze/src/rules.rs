//! The lint rules.
//!
//! Every rule is a [`Lint`] with a stable ID (`PSA001`..`PSA021`), a
//! one-line description, and a pure `check` over a [`FrameworkModel`].
//! Rules never mutate anything and never read the environment, so the
//! report for a given model is byte-deterministic. [`registry`] returns
//! them in fixed ID order; [`crate::analyze`] runs them all.

use std::collections::BTreeMap;

use powerstack_core::translate::JobShare;
use powerstack_core::{Actor, Knob, Layer, ObjectiveTranslator, PowerBudget, Temporal};
use pstack_autotune::{ParamSpace, ParamValue};
use pstack_diag::Diagnostic;
use pstack_hwmodel::{PhaseKind, PhaseMix};
use pstack_node::Signal;

use crate::model::{FrameworkModel, SearchSpec};

/// One static-analysis rule.
pub trait Lint {
    /// Stable rule ID, e.g. `"PSA004"`.
    fn id(&self) -> &'static str;
    /// Short kebab-case name, e.g. `"space-well-formed"`.
    fn name(&self) -> &'static str;
    /// One-line description of what the rule enforces.
    fn description(&self) -> &'static str;
    /// Run the rule over a model snapshot.
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic>;
}

/// All rules, in fixed ID order. The report order (and therefore the JSON
/// and text renderings) follows this sequence.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(KnobBoundContainment),
        Box::new(KnobOwnershipConflicts),
        Box::new(UnitConsistency),
        Box::new(SpaceWellFormedness),
        Box::new(PowerModelSanity),
        Box::new(SearchFeasibility),
        Box::new(CatalogIntegrity),
        Box::new(ExperimentIntegrity),
        Box::new(TranslatorSanity),
        Box::new(RegistryWellFormedness),
        Box::new(LayerInvariants),
        Box::new(FaultPlanSanity),
        Box::new(RetryBudgetFeasibility),
        Box::new(TraceExporterCoverage),
        Box::new(CheckpointSchema),
        Box::new(ScalarEquivalenceCoverage),
        Box::new(LockHierarchyCoverage),
        Box::new(RawSyncPrimitives),
        Box::new(HistoryKeySanity),
        Box::new(EventScheduleSanity),
        Box::new(FleetFaultPlanSanity),
    ]
}

/// Crates an `implemented_by`/`analog` path may reference.
const KNOWN_CRATES: [&str; 12] = [
    "powerstack_core",
    "pstack_rm",
    "pstack_runtime",
    "pstack_apps",
    "pstack_node",
    "pstack_hwmodel",
    "pstack_autotune",
    "pstack_sim",
    "pstack_telemetry",
    "pstack_bench",
    "pstack_diag",
    "pstack_analyze",
];

/// Enumerating constraints beyond this lattice size is skipped (reported as
/// an Info diagnostic, never silently).
const ENUMERATION_LIMIT: u128 = 1_000_000;

/// Diagnostic layer tag for a registry layer.
fn layer_tag(layer: Layer) -> &'static str {
    match layer {
        Layer::System => "system",
        Layer::JobRuntime => "job-runtime",
        Layer::Application => "application",
        Layer::Node => "node",
    }
}

fn actor_tag(actor: Actor) -> &'static str {
    match actor {
        Actor::ResourceManager => "resource-manager",
        Actor::RuntimeSystem => "runtime-system",
        Actor::Application => "application",
        Actor::NodeManager => "node-manager",
    }
}

/// Numeric view of a parameter value, if it has one.
fn numeric(v: &ParamValue) -> Option<f64> {
    match v {
        ParamValue::Int(i) => Some(*i as f64),
        ParamValue::Float(f) => Some(*f),
        ParamValue::Str(_) | ParamValue::Bool(_) => None,
    }
}

/// Count of valid grid points, or `None` when the lattice is too large to
/// enumerate within [`ENUMERATION_LIMIT`].
fn valid_cardinality(space: &ParamSpace) -> Option<u128> {
    if space.dims() == 0 || space.cardinality() > ENUMERATION_LIMIT {
        return None;
    }
    Some(space.enumerate().count() as u128)
}

// ---------------------------------------------------------------------------
// PSA001 — knob-bound containment
// ---------------------------------------------------------------------------

/// Search-space knob values must sit inside the physical envelopes the
/// hardware model declares (power caps inside `[idle, peak]`, frequencies
/// inside the plausible DVFS band, thread counts inside the core count).
pub struct KnobBoundContainment;

impl Lint for KnobBoundContainment {
    fn id(&self) -> &'static str {
        "PSA001"
    }
    fn name(&self) -> &'static str {
        "knob-bound-containment"
    }
    fn description(&self) -> &'static str {
        "search-space knob values stay inside hwmodel physical envelopes"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let (f_lo, f_hi) = pstack_hwmodel::invariants::FREQ_ENVELOPE_GHZ;
        let total_cores = model.node.total_cores();
        for spec in &model.searches {
            for p in spec.space.params() {
                let path = format!("{}/{}", spec.name, p.name);
                if p.name.ends_with("cap_w") {
                    for v in &p.values {
                        let Some(w) = numeric(v) else { continue };
                        // 0.0 is the "uncapped" sentinel throughout the
                        // co-tuning spaces; only real caps are checked.
                        if w == 0.0 {
                            continue;
                        }
                        out.extend(pstack_hwmodel::invariants::check_cap_in_envelope(
                            self.id(),
                            w,
                            &model.node,
                            &path,
                        ));
                    }
                } else if p.name.contains("freq") || p.name.ends_with("_ghz") {
                    for v in &p.values {
                        let Some(f) = numeric(v) else { continue };
                        if !(f_lo..=f_hi).contains(&f) {
                            out.push(Diagnostic::error(
                                self.id(),
                                "cross-layer",
                                &path,
                                format!(
                                    "frequency {f} GHz outside the plausible DVFS envelope \
                                     [{f_lo}, {f_hi}] GHz"
                                ),
                            ));
                        }
                    }
                } else if p.name == "threads" {
                    for v in &p.values {
                        let Some(t) = numeric(v) else { continue };
                        if t < 1.0 || t > total_cores as f64 {
                            out.push(Diagnostic::error(
                                self.id(),
                                "cross-layer",
                                &path,
                                format!(
                                    "thread count {t} outside [1, {total_cores}] \
                                     (node has {total_cores} cores)"
                                ),
                            ));
                        }
                    }
                } else if p.name == "nodes" {
                    for v in &p.values {
                        let Some(n) = numeric(v) else { continue };
                        if n < 1.0 {
                            out.push(Diagnostic::error(
                                self.id(),
                                "cross-layer",
                                &path,
                                format!("node count {n} must be at least 1"),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA002 — cross-layer knob ownership conflicts
// ---------------------------------------------------------------------------

/// The control resource a registry knob actuates, when it is unambiguous.
///
/// This is the mapping the ownership-conflict rule (the paper's §3.2
/// hazard) runs on: two distinct (layer, actor) pairs writing the same
/// resource is a conflict. Knobs whose target is ambiguous (e.g. MERIC's
/// whole-configuration control) map to `None` and are exempt.
pub fn control_resource(knob: &Knob) -> Option<&'static str> {
    let ib = knob.implemented_by;
    let name = knob.name;
    if ib.contains("set_power_limit")
        || ib.contains("::cap::")
        || knob.method.contains("power balancing")
    {
        Some("rapl-cap")
    } else if ib.contains("set_freq") || ib.contains("countdown") || name.contains("DVFS") {
        Some("core-freq")
    } else if ib.contains("set_uncore") || ib.contains("scavenger") || name.contains("uncore") {
        Some("uncore-freq")
    } else if ib.contains("dutycycle")
        || ib.contains("DutyCycle")
        || name.contains("clock modulation")
    {
        Some("duty-cycle")
    } else if ib.contains("fit_nodes") || ib.contains("irm") {
        Some("node-assignment")
    } else {
        None
    }
}

/// Two distinct (layer, actor) pairs writing the same control is the §3.2
/// interaction hazard. If the stack declares an arbiter for the resource
/// the overlap is a warning (arbitration is exactly what makes co-residency
/// legal); without one it is an error.
pub struct KnobOwnershipConflicts;

impl Lint for KnobOwnershipConflicts {
    fn id(&self) -> &'static str {
        "PSA002"
    }
    fn name(&self) -> &'static str {
        "knob-ownership-conflicts"
    }
    fn description(&self) -> &'static str {
        "no two (layer, actor) pairs write the same control without an arbiter"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut writers: BTreeMap<&'static str, Vec<&Knob>> = BTreeMap::new();
        for k in &model.knobs {
            if let Some(res) = control_resource(k) {
                writers.entry(res).or_default().push(k);
            }
        }
        let mut out = Vec::new();
        for (resource, knobs) in writers {
            let mut pairs: Vec<(Layer, Actor)> = knobs.iter().map(|k| (k.layer, k.actor)).collect();
            pairs.sort_by_key(|(l, a)| (layer_tag(*l), actor_tag(*a)));
            pairs.dedup();
            if pairs.len() <= 1 {
                continue;
            }
            let who: Vec<String> = knobs
                .iter()
                .map(|k| format!("{}/{} ({})", layer_tag(k.layer), actor_tag(k.actor), k.name))
                .collect();
            let arbitrated = model.arbitrated_controls.contains(&resource);
            let msg = format!(
                "{} distinct (layer, actor) pairs write `{resource}`: {}",
                pairs.len(),
                who.join("; ")
            );
            let path = format!("registry/{resource}");
            if arbitrated {
                out.push(Diagnostic::warn(
                    self.id(),
                    "cross-layer",
                    path,
                    format!("{msg} — arbitrated, first claim wins at runtime"),
                ));
            } else {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    path,
                    format!("{msg} — no arbiter declared for this control"),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA003 — unit consistency
// ---------------------------------------------------------------------------

/// The stack speaks watts, joules, and gigahertz — never milliwatts. Every
/// telemetry signal must use a vocabulary unit, and power-valued search
/// parameters must be plausible watt quantities.
pub struct UnitConsistency;

impl Lint for UnitConsistency {
    fn id(&self) -> &'static str {
        "PSA003"
    }
    fn name(&self) -> &'static str {
        "unit-consistency"
    }
    fn description(&self) -> &'static str {
        "signals and power parameters use the shared unit vocabulary (W, not mW)"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out =
            pstack_node::invariants::check_signal_units(self.id(), &Signal::ALL, "node::signals");
        for spec in &model.searches {
            for p in spec.space.params() {
                let path = format!("{}/{}", spec.name, p.name);
                if p.name.ends_with("_mw") || p.name.ends_with("_uw") {
                    out.push(Diagnostic::error(
                        self.id(),
                        "cross-layer",
                        &path,
                        "parameter is named in milliwatts/microwatts; the stack's power \
                         unit is watts everywhere (vocab `power bound`)",
                    ));
                }
                if p.name.ends_with("cap_w") || p.name.ends_with("power_w") {
                    for v in &p.values {
                        let Some(w) = numeric(v) else { continue };
                        if w < 0.0 {
                            out.push(Diagnostic::error(
                                self.id(),
                                "cross-layer",
                                &path,
                                format!("negative power value {w} W"),
                            ));
                        } else if w >= 10_000.0 {
                            out.push(Diagnostic::error(
                                self.id(),
                                "cross-layer",
                                &path,
                                format!(
                                    "power value {w} is implausible for a node-level watt \
                                     quantity; looks like a milliwatt value leaked in"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA004 — parameter-space well-formedness
// ---------------------------------------------------------------------------

/// A search space must have at least one parameter, no duplicate or
/// non-finite values inside a parameter, and constraints that leave the
/// grid reachable.
pub struct SpaceWellFormedness;

impl SpaceWellFormedness {
    /// The full check over one named space, shared with the proptest suite.
    pub fn check_space(rule: &str, name: &str, space: &ParamSpace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if space.dims() == 0 {
            out.push(Diagnostic::error(
                rule,
                "cross-layer",
                name,
                "parameter space has no parameters; nothing to tune",
            ));
            return out;
        }
        for p in space.params() {
            let path = format!("{name}/{}", p.name);
            if p.values.len() == 1 {
                out.push(Diagnostic::info(
                    rule,
                    "cross-layer",
                    &path,
                    "degenerate parameter with a single value; consider folding it \
                     into the objective",
                ));
            }
            for (i, v) in p.values.iter().enumerate() {
                if let ParamValue::Float(f) = v {
                    if !f.is_finite() {
                        out.push(Diagnostic::error(
                            rule,
                            "cross-layer",
                            &path,
                            format!("non-finite value {f} at index {i}"),
                        ));
                    }
                }
                if p.values[..i].contains(v) {
                    out.push(Diagnostic::error(
                        rule,
                        "cross-layer",
                        &path,
                        format!("duplicate value {v} at index {i}; grid points alias"),
                    ));
                }
            }
        }
        match valid_cardinality(space) {
            None => out.push(Diagnostic::info(
                rule,
                "cross-layer",
                name,
                format!(
                    "lattice cardinality {} exceeds the enumeration limit; constraint \
                     reachability not checked",
                    space.cardinality()
                ),
            )),
            Some(0) => out.push(Diagnostic::error(
                rule,
                "cross-layer",
                name,
                "constraints reject every grid point; the space is unsatisfiable",
            )),
            Some(valid) => {
                let lattice = space.cardinality();
                if (valid as f64) < 0.10 * lattice as f64 {
                    out.push(Diagnostic::warn(
                        rule,
                        "cross-layer",
                        name,
                        format!(
                            "only {valid} of {lattice} grid points satisfy the \
                             constraints; random sampling will mostly reject"
                        ),
                    ));
                }
            }
        }
        out
    }
}

impl Lint for SpaceWellFormedness {
    fn id(&self) -> &'static str {
        "PSA004"
    }
    fn name(&self) -> &'static str {
        "space-well-formed"
    }
    fn description(&self) -> &'static str {
        "param spaces are non-empty, duplicate-free, and constraint-reachable"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for spec in &model.searches {
            out.extend(Self::check_space(self.id(), &spec.name, &spec.space));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA005 — power-model sanity
// ---------------------------------------------------------------------------

/// The node power model must be physically plausible: monotone P(f) at a
/// fixed phase mix, non-negative leakage, a well-ordered idle/peak
/// envelope, and a monotone P-state table.
pub struct PowerModelSanity;

impl Lint for PowerModelSanity {
    fn id(&self) -> &'static str {
        "PSA005"
    }
    fn name(&self) -> &'static str {
        "power-model-sanity"
    }
    fn description(&self) -> &'static str {
        "power model is monotone in f, leakage >= 0, envelope well-ordered"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let pkg = &model.node.package;
        let mut out =
            pstack_hwmodel::invariants::check_pstate_table(self.id(), &pkg.pstates, "node.pstates");
        out.extend(pstack_hwmodel::invariants::check_freq_ladder(
            self.id(),
            &pkg.uncore,
            "node.uncore",
        ));
        out.extend(pstack_hwmodel::invariants::check_power_model(
            self.id(),
            &pkg.power,
            &pkg.pstates,
            "node.power_model",
        ));
        let env = pstack_hwmodel::power_envelope(&model.node);
        if !(env.idle_w.is_finite() && env.peak_w.is_finite() && env.idle_w < env.peak_w) {
            out.push(Diagnostic::error(
                self.id(),
                "node",
                "node.envelope",
                format!(
                    "power envelope is not well-ordered: idle {:.1} W, peak {:.1} W",
                    env.idle_w, env.peak_w
                ),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA006 — search-config feasibility
// ---------------------------------------------------------------------------

/// Tuner budgets must make sense against the space they aim at: nonzero
/// budget and batch, batch no larger than the reachable space, and
/// warm-start priors that are actually inside the space.
pub struct SearchFeasibility;

impl SearchFeasibility {
    /// The full check over one spec, shared with fixture tests.
    pub fn check_spec(rule: &str, spec: &SearchSpec) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if spec.max_evals == 0 {
            out.push(Diagnostic::error(
                rule,
                "cross-layer",
                &spec.name,
                "max_evals is 0; the search can never evaluate anything",
            ));
        }
        if spec.batch_size == 0 {
            out.push(Diagnostic::error(
                rule,
                "cross-layer",
                &spec.name,
                "batch_size is 0; the parallel evaluator would deadlock",
            ));
        }
        let reachable = valid_cardinality(&spec.space);
        if let Some(valid) = reachable {
            if spec.batch_size as u128 > valid {
                out.push(Diagnostic::warn(
                    rule,
                    "cross-layer",
                    &spec.name,
                    format!(
                        "batch_size {} exceeds the {valid} reachable grid points; \
                         batches will be padded with duplicates",
                        spec.batch_size
                    ),
                ));
            }
            if spec.max_evals as u128 > valid {
                out.push(Diagnostic::info(
                    rule,
                    "cross-layer",
                    &spec.name,
                    format!(
                        "max_evals {} exceeds the {valid} reachable grid points; an \
                         exhaustive sweep is cheaper than search",
                        spec.max_evals
                    ),
                ));
            }
        }
        for (i, cfg) in spec.warm_start.iter().enumerate() {
            let ok = cfg.len() == spec.space.dims()
                && cfg
                    .iter()
                    .zip(spec.space.params())
                    .all(|(&idx, p)| idx < p.values.len())
                && spec.space.is_valid(cfg);
            if !ok {
                out.push(Diagnostic::error(
                    rule,
                    "cross-layer",
                    format!("{}/warm_start[{i}]", spec.name),
                    format!(
                        "warm-start prior {cfg:?} is not a valid configuration of this \
                         {}-dimensional space",
                        spec.space.dims()
                    ),
                ));
            }
        }
        out
    }
}

impl Lint for SearchFeasibility {
    fn id(&self) -> &'static str {
        "PSA006"
    }
    fn name(&self) -> &'static str {
        "search-feasibility"
    }
    fn description(&self) -> &'static str {
        "tuner budgets and warm-start priors are feasible for their spaces"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for spec in &model.searches {
            out.extend(Self::check_spec(self.id(), spec));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA007 — catalog referential integrity
// ---------------------------------------------------------------------------

/// Every Table 2 catalog entry must point at crates that exist in this
/// workspace, and every layer must be covered by at least one entry.
pub struct CatalogIntegrity;

impl Lint for CatalogIntegrity {
    fn id(&self) -> &'static str {
        "PSA007"
    }
    fn name(&self) -> &'static str {
        "catalog-integrity"
    }
    fn description(&self) -> &'static str {
        "catalog analogs resolve to workspace crates; every layer covered"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for entry in &model.catalog {
            let path = format!("catalog/{}", entry.paper_component);
            if entry.paper_component.is_empty() {
                out.push(Diagnostic::error(
                    self.id(),
                    layer_tag(entry.layer),
                    "catalog",
                    "catalog entry with an empty paper_component name",
                ));
            }
            for analog in entry.analog.split(',') {
                let analog = analog.trim();
                if analog.is_empty() {
                    continue;
                }
                let krate = analog.split("::").next().unwrap_or(analog);
                if !KNOWN_CRATES.contains(&krate) {
                    out.push(Diagnostic::error(
                        self.id(),
                        layer_tag(entry.layer),
                        &path,
                        format!("analog `{analog}` references unknown crate `{krate}`"),
                    ));
                }
            }
        }
        for layer in Layer::ALL {
            if !model.catalog.iter().any(|e| e.layer == layer) {
                out.push(Diagnostic::warn(
                    self.id(),
                    layer_tag(layer),
                    "catalog",
                    format!("no catalog entry covers the {} layer", layer_tag(layer)),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA008 — experiment referential integrity
// ---------------------------------------------------------------------------

/// The experiment manifest must have unique, non-empty names and cover the
/// artifacts DESIGN.md promises (all six figures plus the three use cases).
pub struct ExperimentIntegrity;

/// Artifacts the manifest must cover (the DESIGN.md §3 index).
const REQUIRED_EXPERIMENTS: [&str; 9] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "uc1", "uc6", "uc7",
];

impl Lint for ExperimentIntegrity {
    fn id(&self) -> &'static str {
        "PSA008"
    }
    fn name(&self) -> &'static str {
        "experiment-integrity"
    }
    fn description(&self) -> &'static str {
        "experiment manifest is unique, complete, and fully described"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, e) in model.experiments.iter().enumerate() {
            let path = format!("experiments/{}", e.name);
            if e.name.is_empty() {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    format!("experiments[{i}]"),
                    "experiment with an empty name",
                ));
            }
            if e.artifact.is_empty() {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    "experiment does not say which paper artifact it regenerates",
                ));
            }
            if model.experiments[..i].iter().any(|p| p.name == e.name) {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    "duplicate experiment name in the manifest",
                ));
            }
        }
        for required in REQUIRED_EXPERIMENTS {
            if !model.experiments.iter().any(|e| e.name == required) {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    format!("experiments/{required}"),
                    "required experiment missing from the manifest (DESIGN.md §3 index)",
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA009 — objective-translator sanity
// ---------------------------------------------------------------------------

/// Top-down budget translation must conserve watts (usable = budget minus
/// the reserve, nothing created), keep the reserve fraction sane, and map
/// larger node budgets to frequencies that never decrease.
pub struct TranslatorSanity;

impl Lint for TranslatorSanity {
    fn id(&self) -> &'static str {
        "PSA009"
    }
    fn name(&self) -> &'static str {
        "translator-sanity"
    }
    fn description(&self) -> &'static str {
        "budget translation conserves watts and is monotone in budget"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let reserve = model.system_reserve_fraction;
        if !(0.0..0.5).contains(&reserve) {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "translator.system_reserve_fraction",
                format!(
                    "reserve fraction {reserve} outside [0, 0.5); the system would \
                     withhold most of its own budget"
                ),
            ));
            return out;
        }
        let mut tr = ObjectiveTranslator::default();
        tr.system_reserve_fraction = reserve;
        let budget = PowerBudget {
            watts: 10_000.0,
            window_us: 1_000_000,
        };
        let jobs = [
            JobShare {
                nodes: 3,
                efficiency: None,
            },
            JobShare {
                nodes: 1,
                efficiency: None,
            },
        ];
        let shares = tr.system_to_jobs(budget, &jobs);
        let granted: f64 = shares.iter().map(|b| b.watts).sum();
        let usable = budget.watts * (1.0 - reserve);
        if granted > usable + 1e-6 {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "translator.system_to_jobs",
                format!(
                    "translation grants {granted:.3} W from a usable budget of \
                     {usable:.3} W; watts are being created"
                ),
            ));
        }
        if (granted - usable).abs() > 1e-6 {
            out.push(Diagnostic::warn(
                self.id(),
                "system",
                "translator.system_to_jobs",
                format!(
                    "translation strands {:.3} W of the usable budget",
                    usable - granted
                ),
            ));
        }
        let mix = PhaseMix::pure(PhaseKind::ComputeBound);
        let mut prev = f64::NEG_INFINITY;
        for budget_w in [150.0, 200.0, 250.0, 300.0, 400.0, 500.0] {
            let f = tr.node_budget_to_freq(
                budget_w,
                &mix,
                model.node.package.n_cores,
                model.node.n_packages,
                model.node.misc_power_w,
            );
            if f < prev {
                out.push(Diagnostic::error(
                    self.id(),
                    "system",
                    "translator.node_budget_to_freq",
                    format!(
                        "advisory frequency decreases ({prev} -> {f} GHz) as the node \
                         budget grows to {budget_w} W"
                    ),
                ));
                break;
            }
            prev = f;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA010 — knob-registry well-formedness
// ---------------------------------------------------------------------------

/// Table 1 must be internally coherent: unique (layer, name) rows,
/// `implemented_by` paths that resolve to workspace crates, every layer
/// represented, and actors that match their layer.
pub struct RegistryWellFormedness;

impl Lint for RegistryWellFormedness {
    fn id(&self) -> &'static str {
        "PSA010"
    }
    fn name(&self) -> &'static str {
        "registry-well-formed"
    }
    fn description(&self) -> &'static str {
        "knob registry rows are unique, resolvable, and actor-coherent"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, k) in model.knobs.iter().enumerate() {
            let path = format!("registry/{}/{}", layer_tag(k.layer), k.name);
            if model.knobs[..i]
                .iter()
                .any(|p| p.layer == k.layer && p.name == k.name)
            {
                out.push(Diagnostic::error(
                    self.id(),
                    layer_tag(k.layer),
                    &path,
                    "duplicate (layer, name) row in the knob registry",
                ));
            }
            let krate = k.implemented_by.split("::").next().unwrap_or("");
            if !k.implemented_by.contains("::") || !KNOWN_CRATES.contains(&krate) {
                out.push(Diagnostic::error(
                    self.id(),
                    layer_tag(k.layer),
                    &path,
                    format!(
                        "implemented_by `{}` does not resolve to a workspace crate",
                        k.implemented_by
                    ),
                ));
            }
            let expected = match k.layer {
                Layer::System => Actor::ResourceManager,
                Layer::JobRuntime => Actor::RuntimeSystem,
                Layer::Application => Actor::Application,
                Layer::Node => Actor::NodeManager,
            };
            if k.actor != expected {
                out.push(Diagnostic::warn(
                    self.id(),
                    layer_tag(k.layer),
                    &path,
                    format!(
                        "actor {} is unusual for the {} layer",
                        actor_tag(k.actor),
                        layer_tag(k.layer)
                    ),
                ));
            }
        }
        for layer in Layer::ALL {
            if !model.knobs.iter().any(|k| k.layer == layer) {
                out.push(Diagnostic::error(
                    self.id(),
                    layer_tag(layer),
                    "registry",
                    format!("no knob registered for the {} layer", layer_tag(layer)),
                ));
            }
        }
        for temporal in [Temporal::LaunchTime, Temporal::Runtime] {
            if !model.knobs.iter().any(|k| k.temporal == temporal) {
                out.push(Diagnostic::warn(
                    self.id(),
                    "cross-layer",
                    "registry",
                    format!("no knob with {temporal:?} temporality; Table 1 covers both"),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA011 — layer-provided invariants
// ---------------------------------------------------------------------------

/// Runs every `invariants()` provider the layer crates export. The emitted
/// diagnostics keep their provider rule IDs (`INV-HW-001`, ...), so a
/// failure names the layer that owns the broken invariant.
pub struct LayerInvariants;

impl LayerInvariants {
    /// All layer invariant checks, in layer order.
    pub fn providers() -> Vec<pstack_diag::InvariantCheck> {
        let mut all = pstack_hwmodel::invariants();
        all.extend(pstack_rm::invariants());
        all.extend(pstack_runtime::invariants());
        all.extend(pstack_node::invariants());
        all.extend(pstack_apps::invariants());
        all
    }
}

impl Lint for LayerInvariants {
    fn id(&self) -> &'static str {
        "PSA011"
    }
    fn name(&self) -> &'static str {
        "layer-invariants"
    }
    fn description(&self) -> &'static str {
        "every layer's declared invariants hold over its shipped defaults"
    }
    fn check(&self, _model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for inv in Self::providers() {
            out.extend(inv.run());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA012 — fault-plan sanity
// ---------------------------------------------------------------------------

/// Every fault plan the chaos experiments run must be internally coherent:
/// probabilities in `[0, 1]`, amplification factors ≥ 1, lag and restart
/// windows positive, emergencies inside `(0, 1]` of budget — plus unique
/// plan names across the model (duplicate names make fault logs and result
/// rows ambiguous). The per-plan substance lives in
/// [`pstack_faults::FaultPlan::check`]; this rule runs it over the model and
/// adds the cross-plan checks.
pub struct FaultPlanSanity;

impl Lint for FaultPlanSanity {
    fn id(&self) -> &'static str {
        "PSA012"
    }
    fn name(&self) -> &'static str {
        "fault-plan-sanity"
    }
    fn description(&self) -> &'static str {
        "every fault plan has coherent rates/factors and a unique name"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for plan in &model.fault_plans {
            let path = format!("faults.plan.{}", plan.name);
            out.extend(plan.check(self.id(), &path));
            *seen.entry(plan.name.as_str()).or_insert(0) += 1;
        }
        for (name, n) in seen {
            if n > 1 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    format!("faults.plan.{name}"),
                    format!("fault plan name {name:?} appears {n} times; names must be unique"),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA013 — retry-budget feasibility
// ---------------------------------------------------------------------------

/// The resilient loop's retry policy must be able to terminate and its own
/// budgets must be mutually consistent: at least one attempt, finite
/// non-negative backoffs, a schedule that respects the total-backoff cap,
/// and — against each plan's evaluation timeout — a worst-case
/// per-configuration stall that stays bounded.
pub struct RetryBudgetFeasibility;

impl Lint for RetryBudgetFeasibility {
    fn id(&self) -> &'static str {
        "PSA013"
    }
    fn name(&self) -> &'static str {
        "retry-budget-feasible"
    }
    fn description(&self) -> &'static str {
        "the retry policy terminates and respects its own backoff budgets"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let r = &model.retry;
        let path = "autotune.retry";
        if r.max_attempts == 0 {
            out.push(Diagnostic::error(
                self.id(),
                "cross-layer",
                path,
                "max_attempts = 0: the loop could never evaluate anything",
            ));
        }
        for (what, v) in [
            ("backoff_base_s", r.backoff_base_s),
            ("backoff_factor", r.backoff_factor),
            ("max_total_backoff_s", r.max_total_backoff_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    path,
                    format!("{what} = {v} must be finite and non-negative"),
                ));
            }
        }
        if r.backoff_factor < 1.0 && r.backoff_factor.is_finite() && r.backoff_factor >= 0.0 {
            out.push(Diagnostic::warn(
                self.id(),
                "cross-layer",
                path,
                format!(
                    "backoff_factor = {} < 1: backoffs shrink instead of growing",
                    r.backoff_factor
                ),
            ));
        }
        // The schedule must honour its own contract (the proptest target,
        // re-checked statically over the shipped policy).
        if r.max_attempts >= 1 && r.max_total_backoff_s.is_finite() && r.max_total_backoff_s >= 0.0
        {
            let schedule = r.schedule();
            if schedule.len() != r.max_attempts - 1 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    path,
                    format!(
                        "schedule has {} backoffs for {} attempts (want {})",
                        schedule.len(),
                        r.max_attempts,
                        r.max_attempts - 1
                    ),
                ));
            }
            let total: f64 = schedule.iter().sum();
            if total > r.max_total_backoff_s + 1e-9 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    path,
                    format!(
                        "summed backoff {total:.1}s exceeds max_total_backoff_s {:.1}s",
                        r.max_total_backoff_s
                    ),
                ));
            }
            // Worst-case stall per configuration against each plan's
            // evaluation timeout: attempts × timeout + summed backoff. An
            // unbounded stall starves the whole tuning run.
            for plan in &model.fault_plans {
                if plan.evals.timeout_prob > 0.0 {
                    let stall = r.max_attempts as f64 * plan.evals.timeout_s + total;
                    if !stall.is_finite() || stall > 3600.0 {
                        out.push(Diagnostic::warn(
                            self.id(),
                            "cross-layer",
                            format!("faults.plan.{}", plan.name),
                            format!(
                                "worst-case per-config stall {stall:.0}s under plan {:?} \
                                 exceeds an hour",
                                plan.name
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA014 — trace-exporter coverage
// ---------------------------------------------------------------------------

/// Every bench binary that writes a `results/*.json` artifact must also
/// register a trace exporter (`results/trace_*.json`): an artifact with no
/// trace cannot be attributed when a regeneration slows down or diverges.
/// Duplicate bin registrations are errors too — the manifest is the lint's
/// ground truth, so it must be internally consistent.
pub struct TraceExporterCoverage;

impl Lint for TraceExporterCoverage {
    fn id(&self) -> &'static str {
        "PSA014"
    }
    fn name(&self) -> &'static str {
        "trace-exporter-coverage"
    }
    fn description(&self) -> &'static str {
        "every JSON-writing bench bin registers a trace exporter"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut seen = BTreeMap::new();
        for a in &model.artifacts {
            let path = format!("bench.bin.{}", a.bin);
            if *seen.entry(a.bin).or_insert(0usize) >= 1 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    format!("bin {} registered more than once", a.bin),
                ));
            }
            *seen.get_mut(a.bin).expect("just inserted") += 1;
            if a.writes_json && !a.trace_exporter {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    format!(
                        "{} writes results/*.json but registers no trace exporter \
                         (wrap its work in pstack_bench::traced)",
                        a.bin
                    ),
                ));
            }
        }
        if model.artifacts.is_empty() {
            out.push(Diagnostic::warn(
                self.id(),
                "cross-layer",
                "bench.bin",
                "artifact registry is empty: no bench bins are declared",
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA015 — checkpoint-schema compatibility
// ---------------------------------------------------------------------------

/// Crash-safe resume stakes everything on the checkpoint-schema contract:
/// WAL session headers record `(algorithm name, schema_version)` and the
/// resume guard refuses a session whose recorded pair disagrees with the
/// resuming binary. This rule audits the shipped declarations statically —
/// every algorithm must declare a version ≥ 1 (0 is the no-fallback
/// sentinel in session metadata), carry a unique name (the header's lookup
/// key), and survive a `save_state` → `load_state` round trip on a fresh
/// instance; the WAL and snapshot format versions must themselves be ≥ 1.
pub struct CheckpointSchema;

impl Lint for CheckpointSchema {
    fn id(&self) -> &'static str {
        "PSA015"
    }
    fn name(&self) -> &'static str {
        "checkpoint-schema"
    }
    fn description(&self) -> &'static str {
        "every shipped algorithm honours the checkpoint-schema versioning contract"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (what, v) in [
            ("WAL format version", model.ckpt_wal_version),
            ("snapshot format version", model.ckpt_snapshot_version),
        ] {
            if v == 0 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    "autotune.ckpt",
                    format!("{what} is 0; session files could never be version-checked"),
                ));
            }
        }
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for alg in &model.algorithms {
            let path = format!("autotune.search.{}", alg.name);
            *seen.entry(alg.name.as_str()).or_insert(0) += 1;
            if alg.schema_version == 0 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    format!(
                        "algorithm {:?} declares checkpoint schema_version 0; versions start \
                         at 1 (0 is the no-fallback sentinel in session metadata)",
                        alg.name
                    ),
                ));
            }
            if let Some(err) = &alg.round_trip_error {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    format!(
                        "algorithm {:?} rejects its own save_state on load_state: {err}",
                        alg.name
                    ),
                ));
            }
        }
        for (name, n) in seen {
            if n > 1 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    format!("autotune.search.{name}"),
                    format!(
                        "algorithm name {name:?} shipped {n} times; WAL headers key resume \
                         compatibility on the name, so it must be unique"
                    ),
                ));
            }
        }
        if model.algorithms.is_empty() {
            out.push(Diagnostic::warn(
                self.id(),
                "cross-layer",
                "autotune.search",
                "no shipped algorithms declared; the checkpoint-schema audit is vacuous",
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA016 — scalar-equivalence coverage
// ---------------------------------------------------------------------------

/// Benchmarks built on a batch-capable evaluator must declare a
/// scalar-equivalence check. The batched SoA fast path earns its speedups by
/// restructuring the oracle's arithmetic, so every registered bench artifact
/// that times it has to assert the contract that keeps it honest:
/// bit-identical results on the exact lane, bounded relative error on coarse
/// lanes. A `batch_evaluator` registration without `scalar_equivalence` is a
/// fast path whose numbers nothing would catch drifting from the model it
/// claims to accelerate. The inverse declaration (`scalar_equivalence`
/// without `batch_evaluator`) is flagged too — an equivalence check with no
/// batch path compares the oracle to itself and gives false confidence.
pub struct ScalarEquivalenceCoverage;

impl Lint for ScalarEquivalenceCoverage {
    fn id(&self) -> &'static str {
        "PSA016"
    }
    fn name(&self) -> &'static str {
        "scalar-equivalence-coverage"
    }
    fn description(&self) -> &'static str {
        "every batch-evaluator bench bin declares a scalar-equivalence check"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for a in &model.artifacts {
            let path = format!("bench.bin.{}", a.bin);
            if a.batch_evaluator && !a.scalar_equivalence {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    &path,
                    format!(
                        "{} times a batch-capable evaluator but declares no \
                         scalar-equivalence check (assert the exact lane is \
                         bit-identical to the scalar oracle and bound coarse-lane \
                         error, then register with ArtifactInfo::batched)",
                        a.bin
                    ),
                ));
            }
            if a.scalar_equivalence && !a.batch_evaluator {
                out.push(Diagnostic::warn(
                    self.id(),
                    "cross-layer",
                    &path,
                    format!(
                        "{} declares a scalar-equivalence check but no batch \
                         evaluator; the check compares the oracle to itself",
                        a.bin
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA017 — lock-hierarchy coverage
// ---------------------------------------------------------------------------

/// The declared lock hierarchy must cover every synchronization site
/// `pstack-sync` registers, and the `may_acquire` relation must be a
/// rank-consistent DAG: a site may only permit acquisition of sites with a
/// strictly greater rank, no site may be declared twice, and no declaration
/// may reference an unknown or undeclared site. A cycle in the declared
/// relation is the static shadow of an ABBA deadlock; a registry site with
/// no hierarchy row is a lock the deadlock argument silently ignores.
pub struct LockHierarchyCoverage;

impl Lint for LockHierarchyCoverage {
    fn id(&self) -> &'static str {
        "PSA017"
    }
    fn name(&self) -> &'static str {
        "lock-hierarchy-coverage"
    }
    fn description(&self) -> &'static str {
        "declared lock hierarchy covers every pstack-sync site and is an acyclic, rank-consistent DAG"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let decls = &model.lock_hierarchy;
        let ranks: BTreeMap<&str, u32> = decls.iter().map(|d| (d.site.as_str(), d.rank)).collect();

        // Duplicate declarations collapse in the rank map; catch them first.
        let mut seen = std::collections::BTreeSet::new();
        for d in decls {
            if !seen.insert(d.site.as_str()) {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    format!("sync.hierarchy.{}", d.site),
                    format!("site {} is declared twice in the lock hierarchy", d.site),
                ));
            }
        }

        // Coverage: every registered site has a hierarchy row...
        for site in pstack_sync::sites::all() {
            if !ranks.contains_key(site.label) {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    format!("sync.hierarchy.{}", site.label),
                    format!(
                        "pstack-sync site {} (owner {}) has no lock-hierarchy declaration",
                        site.label, site.owner
                    ),
                ));
            }
        }
        // ...and every row names a registered site (a stale row is a lie
        // about the codebase, downgraded to a warning).
        for d in decls {
            if !pstack_sync::sites::is_declared(&d.site) {
                out.push(Diagnostic::warn(
                    self.id(),
                    "cross-layer",
                    format!("sync.hierarchy.{}", d.site),
                    format!(
                        "lock-hierarchy row {} matches no pstack-sync site (stale declaration?)",
                        d.site
                    ),
                ));
            }
        }

        // Edge sanity: targets declared, ranks strictly increasing inward.
        for d in decls {
            for target in &d.may_acquire {
                match ranks.get(target.as_str()) {
                    None => out.push(Diagnostic::error(
                        self.id(),
                        "cross-layer",
                        format!("sync.hierarchy.{}", d.site),
                        format!(
                            "{} may_acquire {}, which has no hierarchy declaration",
                            d.site, target
                        ),
                    )),
                    Some(&inner) if inner <= d.rank => out.push(Diagnostic::error(
                        self.id(),
                        "cross-layer",
                        format!("sync.hierarchy.{}", d.site),
                        format!(
                            "{} (rank {}) may_acquire {} (rank {}): inner locks must \
                             rank strictly above the locks held while taking them",
                            d.site, d.rank, target, inner
                        ),
                    )),
                    Some(_) => {}
                }
            }
        }

        // Cycle check over the declared relation (rank consistency already
        // implies acyclicity when it holds, but a model can be wrong in
        // both ways at once — report the cycle explicitly).
        if let Some(cycle) = declared_cycle(decls) {
            out.push(Diagnostic::error(
                self.id(),
                "cross-layer",
                "sync.hierarchy",
                format!(
                    "declared may_acquire relation has a cycle: {}",
                    cycle.join(" -> ")
                ),
            ));
        }
        out
    }
}

/// First cycle in the declared `may_acquire` relation, as a closed path.
fn declared_cycle(decls: &[crate::model::LockSiteDecl]) -> Option<Vec<String>> {
    let edges: BTreeMap<&str, Vec<&str>> = decls
        .iter()
        .map(|d| {
            (
                d.site.as_str(),
                d.may_acquire.iter().map(String::as_str).collect(),
            )
        })
        .collect();
    // Iterative DFS, white/grey/black: a grey re-entry closes a cycle.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    for start in edges.keys() {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = edges.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succ.len() {
                let target = succ[*next];
                *next += 1;
                match color.get(target).copied().unwrap_or(0) {
                    1 => {
                        let from = path.iter().position(|&n| n == target).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[from..].iter().map(|s| s.to_string()).collect();
                        cycle.push(target.to_string());
                        return Some(cycle);
                    }
                    0 => {
                        color.insert(target, 1);
                        stack.push((target, 0));
                        path.push(target);
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// PSA018 — raw-sync-primitive scan
// ---------------------------------------------------------------------------

/// Library code must go through the instrumented `pstack-sync` wrappers:
/// a raw `std::sync` `Mutex`/`RwLock`/`Condvar` or bare counter atomic in a
/// `crates/*/src` file is invisible to the lock-order graph, the schedule
/// explorer, and the poison-recovery policy all at once. The scan walks the
/// real source tree; `pstack-sync` itself, binary targets, test files, and
/// `#[cfg(test)]` modules are exempt (tests may exercise raw primitives
/// deliberately), as are comment lines.
pub struct RawSyncPrimitives;

/// The `std::sync` path prefix, assembled so this rule's own source never
/// matches the needle it scans for.
const STD_SYNC: &str = concat!("std::", "sync::");

/// Banned type tokens: holding primitives plus the counter atomics the
/// wrappers cover. `Arc`, `Once`, and `mpsc` stay allowed — they are not
/// lock-shaped and take no part in the hierarchy.
const BANNED: [&str; 5] = [
    concat!("Mut", "ex"),
    concat!("RwL", "ock"),
    concat!("Cond", "var"),
    concat!("AtomicU", "size"),
    concat!("AtomicU", "64"),
];

/// Marker that exempts the remainder of a file (test module follows).
const TEST_MARKER: &str = concat!("#[cfg(te", "st)]");

impl Lint for RawSyncPrimitives {
    fn id(&self) -> &'static str {
        "PSA018"
    }
    fn name(&self) -> &'static str {
        "raw-sync-primitives"
    }
    fn description(&self) -> &'static str {
        "library code uses pstack-sync wrappers, not raw std::sync Mutex/RwLock/Condvar/atomics"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let Some(root) = &model.source_root else {
            return vec![Diagnostic::info(
                self.id(),
                "cross-layer",
                "sync.scan",
                "no source_root in the model; raw-primitive scan skipped".to_string(),
            )];
        };
        let mut out = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<std::path::PathBuf> = match std::fs::read_dir(&crates_dir) {
            Ok(it) => it
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect(),
            Err(err) => {
                return vec![Diagnostic::info(
                    self.id(),
                    "cross-layer",
                    "sync.scan",
                    format!(
                        "cannot read {}: {err}; raw-primitive scan skipped",
                        crates_dir.display()
                    ),
                )]
            }
        };
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            // The wrapper layer is the one place raw primitives belong.
            if crate_dir.file_name().is_some_and(|n| n == "sync") {
                continue;
            }
            scan_dir(self.id(), root, &crate_dir.join("src"), &mut out);
        }
        out
    }
}

/// Recursively scan `dir` for library `.rs` files holding raw primitives.
fn scan_dir(
    rule_id: &'static str,
    root: &std::path::Path,
    dir: &std::path::Path,
    out: &mut Vec<Diagnostic>,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<std::path::PathBuf> =
        entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // Binary targets and integration-test dirs may use raw
            // primitives (CLIs own their process; tests are adversarial).
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "bin" || name == "tests" {
                continue;
            }
            scan_dir(rule_id, root, &path, out);
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with(TEST_MARKER) {
                break; // test module: the rest of the file is exempt
            }
            if trimmed.starts_with("//") {
                continue;
            }
            if line.contains(STD_SYNC) && BANNED.iter().any(|b| line.contains(b)) {
                out.push(Diagnostic::error(
                    rule_id,
                    "cross-layer",
                    format!("sync.scan.{rel}"),
                    format!(
                        "{rel}:{}: raw {STD_SYNC} primitive in library code; use the \
                         pstack-sync wrapper so the site joins the lock-order graph \
                         (line: {})",
                        lineno + 1,
                        trimmed.trim_end()
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PSA019 — history-key-sanity
// ---------------------------------------------------------------------------

/// PSA019: the shared performance-history configuration is coherent — the
/// shard count is inside store bounds, the declared format version matches
/// the storage crate's, every key fingerprint is canonical (16 lowercase
/// hex) and invariant under parameter reordering, and no two declarations
/// collide on one `(space, app, objective)` key (records from different
/// workloads must never mix).
pub struct HistoryKeySanity;

impl Lint for HistoryKeySanity {
    fn id(&self) -> &'static str {
        "PSA019"
    }
    fn name(&self) -> &'static str {
        "history-key-sanity"
    }
    fn description(&self) -> &'static str {
        "history store shard count in bounds, key fingerprints canonical and stable, no key collisions"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        use pstack_history::{HistoryStore, HISTORY_FORMAT_VERSION};
        let mut out = Vec::new();
        let spec = &model.history;
        if spec.shard_count == 0 || spec.shard_count > HistoryStore::MAX_SHARDS {
            out.push(Diagnostic::error(
                self.id(),
                "cross-layer",
                "history.shards",
                format!(
                    "history shard count {} outside the store's accepted range 1..={}",
                    spec.shard_count,
                    HistoryStore::MAX_SHARDS
                ),
            ));
        }
        if spec.format_version != HISTORY_FORMAT_VERSION {
            out.push(Diagnostic::error(
                self.id(),
                "cross-layer",
                "history.format",
                format!(
                    "declared history format version {} != pstack-history's {} — stores \
                     written by one side would be rejected by the other",
                    spec.format_version, HISTORY_FORMAT_VERSION
                ),
            ));
        }
        let mut seen_names: BTreeMap<&str, usize> = BTreeMap::new();
        let mut seen_keys: BTreeMap<(String, String, String), &str> = BTreeMap::new();
        for decl in &spec.keys {
            *seen_names.entry(decl.name.as_str()).or_insert(0) += 1;
            if decl.app.is_empty() || decl.objective.is_empty() {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    decl.name.clone(),
                    format!(
                        "history key '{}' has an empty app or objective label; records \
                         filed under it would be unqueryable",
                        decl.name
                    ),
                ));
            }
            if decl.shape.params.is_empty() {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    decl.name.clone(),
                    format!(
                        "history key '{}' declares an empty parameter space; there is \
                         nothing to record under it",
                        decl.name
                    ),
                ));
            }
            let fp = decl.shape.fingerprint();
            if fp.len() != 16
                || !fp
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
            {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    decl.name.clone(),
                    format!(
                        "history key '{}' fingerprint '{fp}' is not 16 lowercase hex digits",
                        decl.name
                    ),
                ));
            }
            // Stability: the canonical fingerprint must not depend on the
            // order the code happened to declare parameters/constraints in,
            // or two sessions of the same campaign would shard apart.
            let mut reordered = decl.shape.clone();
            reordered.params.reverse();
            reordered.constraints.reverse();
            if reordered.fingerprint() != fp {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    decl.name.clone(),
                    format!(
                        "history key '{}' fingerprint changes under parameter reordering \
                         — the canonical space fingerprint is not canonical",
                        decl.name
                    ),
                ));
            }
            let triple = (fp, decl.app.clone(), decl.objective.clone());
            if let Some(prev) = seen_keys.insert(triple, decl.name.as_str()) {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    decl.name.clone(),
                    format!(
                        "history key '{}' collides with '{prev}': same space fingerprint, \
                         app, and objective — their records would silently mix",
                        decl.name
                    ),
                ));
            }
        }
        for (name, count) in seen_names {
            if count > 1 {
                out.push(Diagnostic::error(
                    self.id(),
                    "cross-layer",
                    name.to_string(),
                    format!("history key declaration name '{name}' appears {count} times"),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA020 — event-schedule sanity
// ---------------------------------------------------------------------------

/// PSA020: the event-driven scheduler's ordering contract holds on the
/// model's recorded [`EventModelSpec`](crate::model::EventModelSpec)
/// exercise — the heap cursor never regresses (a retroactive push may fire
/// late, but can never pull processed time backwards), same-instant events
/// pop in rank order (budget change → fault events → arrival → tick →
/// completion), every
/// pushed event is either popped or still pending (none lost), and the
/// per-enclave power-budget shards are finite, nonnegative, and sum to the
/// site budget *bit-for-bit* (hierarchical aggregation must conserve the
/// budget exactly).
pub struct EventScheduleSanity;

impl EventScheduleSanity {
    fn kind_rank(label: &str) -> Option<u32> {
        // Mirrors `EventKind::rank` in pstack-rm: budget changes gate
        // everything at an instant, fault events (node crash/reboot, job
        // kill, stuck actuator, telemetry dropout) apply before the
        // arrivals they degrade, arrivals precede the tick that schedules
        // them, completions come last.
        match label {
            "budget_change" => Some(0),
            "node_fail" => Some(1),
            "node_recover" => Some(2),
            "job_fail" => Some(3),
            "cap_stick" => Some(4),
            "telemetry_dropout" => Some(5),
            "arrival" => Some(6),
            "tick" => Some(7),
            "completion" => Some(8),
            _ => None,
        }
    }
}

impl Lint for EventScheduleSanity {
    fn id(&self) -> &'static str {
        "PSA020"
    }
    fn name(&self) -> &'static str {
        "event-schedule-sanity"
    }
    fn description(&self) -> &'static str {
        "event cursor monotone, same-instant events in rank order, events conserved, enclave shards sum to site budget"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let ev = &model.events;

        // Cursor monotonicity and tracking: the cursor after each pop must
        // never decrease, and must equal max(previous cursor, fire time).
        let mut prev_cursor = 0u64;
        for (i, (time, cursor, label)) in ev.popped.iter().enumerate() {
            if *cursor < prev_cursor {
                out.push(Diagnostic::error(
                    self.id(),
                    "system",
                    format!("events.popped[{i}]"),
                    format!(
                        "event cursor regressed from {prev_cursor}us to {cursor}us on a \
                         '{label}' pop — processed time must never move backwards"
                    ),
                ));
            }
            let expect = prev_cursor.max(*time);
            if *cursor != expect {
                out.push(Diagnostic::error(
                    self.id(),
                    "system",
                    format!("events.popped[{i}]"),
                    format!(
                        "cursor {cursor}us does not track pops: expected \
                         max(prev {prev_cursor}us, fire {time}us) = {expect}us"
                    ),
                ));
            }
            if Self::kind_rank(label).is_none() {
                out.push(Diagnostic::error(
                    self.id(),
                    "system",
                    format!("events.popped[{i}]"),
                    format!("unknown event kind label '{label}'"),
                ));
            }
            prev_cursor = *cursor;
        }
        if ev.final_cursor_us != prev_cursor {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "events.cursor",
                format!(
                    "final cursor {}us disagrees with the last pop's cursor {}us",
                    ev.final_cursor_us, prev_cursor
                ),
            ));
        }

        // Same-instant rank order: adjacent pops at one fire time must go
        // budget change → fault events → arrival → tick → completion.
        for (i, pair) in ev.popped.windows(2).enumerate() {
            let (ta, _, la) = &pair[0];
            let (tb, _, lb) = &pair[1];
            if ta == tb {
                if let (Some(ra), Some(rb)) = (Self::kind_rank(la), Self::kind_rank(lb)) {
                    if ra > rb {
                        out.push(Diagnostic::error(
                            self.id(),
                            "system",
                            format!("events.popped[{}]", i + 1),
                            format!(
                                "same-instant events at {ta}us popped out of rank order: \
                                 '{la}' before '{lb}' — a budget change must gate the \
                                 arrivals it applies to, arrivals precede the tick that \
                                 schedules them"
                            ),
                        ));
                    }
                }
            }
        }

        // Conservation: every pushed event was either popped or is pending.
        let accounted = ev.popped_count + ev.pending_after as u64;
        if accounted != ev.pushed as u64 {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "events.conservation",
                format!(
                    "{} events pushed but {} popped + {} pending = {accounted} — events \
                     were lost or duplicated",
                    ev.pushed, ev.popped_count, ev.pending_after
                ),
            ));
        }
        if ev.popped_count != ev.popped.len() as u64 {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "events.conservation",
                format!(
                    "heap lifetime counter says {} pops but the recording has {}",
                    ev.popped_count,
                    ev.popped.len()
                ),
            ));
        }

        // Budget sharding: per-enclave shards are finite, nonnegative, one
        // per enclave, and sum to the site budget bit-for-bit.
        if ev.shards.len() != ev.capacities.len() {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "events.shards",
                format!(
                    "{} budget shards for {} enclaves",
                    ev.shards.len(),
                    ev.capacities.len()
                ),
            ));
        }
        for (i, s) in ev.shards.iter().enumerate() {
            if !s.is_finite() || *s < 0.0 {
                out.push(Diagnostic::error(
                    self.id(),
                    "system",
                    format!("events.shards[{i}]"),
                    format!("budget shard {s} W is negative or non-finite"),
                ));
            }
        }
        let sum: f64 = ev.shards.iter().sum();
        if sum.to_bits() != ev.site_budget_w.to_bits() {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "events.shards",
                format!(
                    "enclave shards sum to {sum} W, site budget is {} W — hierarchical \
                     aggregation must conserve the budget exactly (last shard absorbs \
                     the floating-point residue)",
                    ev.site_budget_w
                ),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// PSA021 — fleet-fault-plan sanity
// ---------------------------------------------------------------------------

/// PSA021: every fleet-scale fault plan the E11 chaos grid injects must be
/// internally coherent — probabilities in `[0, 1]`, MTBF/MTTR and outage
/// windows positive, and a requeue budget (`max_retries ≥ 1`) wherever job
/// failures are enabled, since a zero-retry plan silently turns every
/// injected job failure into a permanent loss and the conservation SLO can
/// no longer distinguish a scheduler bug from the plan's own bookkeeping.
/// The per-plan substance lives in
/// [`pstack_faults::FleetFaultPlan::check`]; this rule runs it over the
/// model and adds cross-plan checks: unique names, a quiescent control plan
/// (no active fault classes — the grid's fault-free baseline), and at least
/// one genuinely mixed plan (≥ 4 classes) so the chaos grid exercises fault
/// interactions, not just isolated classes.
pub struct FleetFaultPlanSanity;

impl Lint for FleetFaultPlanSanity {
    fn id(&self) -> &'static str {
        "PSA021"
    }
    fn name(&self) -> &'static str {
        "fleet-fault-plan-sanity"
    }
    fn description(&self) -> &'static str {
        "fleet fault plans have coherent rates, requeue budgets where job failures are on, unique names, and the catalog keeps a control plan and a mixed plan"
    }
    fn check(&self, model: &FrameworkModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for plan in &model.fleet_fault_plans {
            let path = format!("faults.fleet.{}", plan.name);
            out.extend(plan.check(self.id(), &path));
            *seen.entry(plan.name.as_str()).or_insert(0) += 1;
        }
        for (name, n) in seen {
            if n > 1 {
                out.push(Diagnostic::error(
                    self.id(),
                    "system",
                    format!("faults.fleet.{name}"),
                    format!(
                        "fleet fault plan name {name:?} appears {n} times; names must be unique"
                    ),
                ));
            }
        }
        if !model
            .fleet_fault_plans
            .iter()
            .any(|p| p.active_classes() == 0)
        {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "faults.fleet",
                "no quiescent control plan: the chaos grid needs a fault-free baseline \
                 to attribute SLO regressions to injected faults"
                    .to_string(),
            ));
        }
        if !model
            .fleet_fault_plans
            .iter()
            .any(|p| p.active_classes() >= 4)
        {
            out.push(Diagnostic::error(
                self.id(),
                "system",
                "faults.fleet",
                "no mixed plan with >= 4 active fault classes: the chaos grid must \
                 exercise fault interactions, not just isolated classes"
                    .to_string(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let rules = registry();
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "rule IDs must be unique and in order");
        assert_eq!(ids.len(), 21);
        for r in &rules {
            assert!(!r.name().is_empty() && !r.description().is_empty());
        }
    }

    #[test]
    fn history_key_sanity_passes_shipped_and_flags_broken() {
        use crate::model::HistoryKeyDecl;
        let rule = HistoryKeySanity;
        let mut model = FrameworkModel::shipped();
        assert!(
            rule.check(&model).is_empty(),
            "shipped history spec must be clean: {:#?}",
            rule.check(&model)
        );

        // Out-of-bounds shard count and version skew are errors.
        model.history.shard_count = 0;
        model.history.format_version += 1;
        let diags = rule.check(&model);
        assert!(diags.iter().any(|d| d.path == "history.shards"));
        assert!(diags.iter().any(|d| d.path == "history.format"));

        // A second declaration colliding on (space, app, objective) is an
        // error — records from distinct campaigns must never mix.
        let mut model = FrameworkModel::shipped();
        let clone = HistoryKeyDecl::new(
            "history.hypre2",
            model.history.keys[0].app.clone(),
            model.history.keys[0].objective.clone(),
            model.history.keys[0].shape.clone(),
        );
        model.history.keys.push(clone);
        let diags = rule.check(&model);
        assert!(
            diags.iter().any(|d| d.message.contains("collides")),
            "expected a key-collision error: {diags:#?}"
        );

        // Empty app labels and empty spaces are errors.
        let mut model = FrameworkModel::shipped();
        model.history.keys[0].app.clear();
        model.history.keys[1].shape.params.clear();
        let diags = rule.check(&model);
        assert!(diags.iter().any(|d| d.message.contains("empty app")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("empty parameter space")));
    }

    #[test]
    fn fleet_fault_plan_sanity_passes_shipped_and_flags_broken() {
        use pstack_faults::FleetFaultPlan;

        let rule = FleetFaultPlanSanity;
        let model = FrameworkModel::shipped();
        assert!(
            rule.check(&model).is_empty(),
            "shipped fleet fault plans must be clean: {:#?}",
            rule.check(&model)
        );

        // A zero-retry plan with job failures on loses the requeue budget.
        let mut broken = FrameworkModel::shipped();
        let mut bad = FleetFaultPlan::mixed();
        bad.name = "zero_retry".into();
        bad.jobs.max_retries = 0;
        broken.fleet_fault_plans.push(bad);
        let diags = rule.check(&broken);
        assert!(
            diags.iter().any(|d| d.message.contains("max_retries")),
            "expected a requeue-budget error: {diags:#?}"
        );

        // Duplicate names are ambiguous.
        let mut broken = FrameworkModel::shipped();
        broken.fleet_fault_plans.push(FleetFaultPlan::mixed());
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("must be unique")));

        // Dropping the quiescent control plan loses the baseline.
        let mut broken = FrameworkModel::shipped();
        broken.fleet_fault_plans.retain(|p| p.active_classes() > 0);
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("control plan")));

        // Dropping the mixed plan loses interaction coverage.
        let mut broken = FrameworkModel::shipped();
        broken.fleet_fault_plans.retain(|p| p.active_classes() < 4);
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("mixed plan")));

        // An out-of-range probability is caught by the per-plan substance.
        let mut broken = FrameworkModel::shipped();
        let mut bad = FleetFaultPlan::mixed();
        bad.name = "hot_actuators".into();
        bad.actuators.stick_prob = 1.5;
        broken.fleet_fault_plans.push(bad);
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("stick_prob")));
    }

    #[test]
    fn event_schedule_sanity_passes_shipped_and_flags_broken() {
        let rule = EventScheduleSanity;
        let model = FrameworkModel::shipped();
        assert!(
            rule.check(&model).is_empty(),
            "shipped event model must be clean: {:#?}",
            rule.check(&model)
        );
        // The shipped exercise must actually cover the interesting cases:
        // a retroactive pop (fire time below the cursor) and a same-instant
        // cluster of all four kinds.
        assert!(
            model.events.popped.iter().any(|(t, c, _)| t < c),
            "exercise must include a retroactive event firing behind the cursor"
        );
        let first_time = model
            .events
            .popped
            .iter()
            .find(|(t, _, _)| {
                model
                    .events
                    .popped
                    .iter()
                    .filter(|(t2, _, _)| t2 == t)
                    .count()
                    >= 4
            })
            .map(|(t, _, _)| *t)
            .expect("exercise must include a 4-kind same-instant cluster");
        assert!(first_time > 0);

        // A cursor regression is an error.
        let mut broken = FrameworkModel::shipped();
        let last = broken.events.popped.len() - 1;
        broken.events.popped[last].1 = 0;
        let diags = rule.check(&broken);
        assert!(
            diags.iter().any(|d| d.message.contains("cursor regressed")),
            "expected a cursor-regression error: {diags:#?}"
        );

        // Reordering a same-instant pair against kind rank (tick before the
        // arrival it would schedule) is an error.
        let mut broken = FrameworkModel::shipped();
        let i = broken
            .events
            .popped
            .windows(2)
            .position(|w| w[0].0 == w[1].0 && w[0].2 == "arrival" && w[1].2 == "tick")
            .expect("exercise includes an adjacent same-instant arrival/tick pair");
        broken.events.popped[i].2 = "tick".to_string();
        broken.events.popped[i + 1].2 = "arrival".to_string();
        let diags = rule.check(&broken);
        assert!(
            diags.iter().any(|d| d.message.contains("rank order")),
            "expected a rank-order error: {diags:#?}"
        );

        // Losing an event breaks conservation.
        let mut broken = FrameworkModel::shipped();
        broken.events.pushed += 1;
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("lost or duplicated")));

        // Shards that no longer sum to the site budget are an error, as is
        // a negative shard.
        let mut broken = FrameworkModel::shipped();
        broken.events.shards[0] += 1e-9;
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("conserve the budget")));
        let mut broken = FrameworkModel::shipped();
        broken.events.shards[0] = -1.0;
        assert!(rule
            .check(&broken)
            .iter()
            .any(|d| d.message.contains("negative or non-finite")));
    }

    #[test]
    fn control_resource_maps_shipped_registry() {
        let knobs = powerstack_core::knob_registry();
        let mapped = knobs.iter().filter_map(control_resource).count();
        // The shipped Table 1 has writers for all five control resources.
        assert!(mapped >= 8, "expected >= 8 mapped knobs, got {mapped}");
        let resources: std::collections::BTreeSet<_> =
            knobs.iter().filter_map(control_resource).collect();
        for r in [
            "rapl-cap",
            "core-freq",
            "uncore-freq",
            "duty-cycle",
            "node-assignment",
        ] {
            assert!(resources.contains(r), "missing resource {r}");
        }
    }
}
