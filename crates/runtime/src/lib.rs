//! # pstack-runtime — job-level runtime systems
//!
//! The job/runtime layer of the PowerStack (paper Table 2: "GEOPM, READEX,
//! Conductor, Uncore power scavenger, and COUNTDOWN"). This crate provides:
//!
//! - [`exec`]: the execution substrate — [`exec::JobRunner`] co-simulates an
//!   application's phase sequence across the job's nodes with MPI barrier
//!   semantics and load imbalance, firing runtime hooks at region entries and
//!   control intervals.
//! - [`agent`]: the [`agent::RuntimeAgent`] trait every runtime implements,
//!   plus the [`agent::ArbitratedNodes`] control facade.
//! - [`arbiter`]: knob-ownership arbitration so two runtimes can co-exist
//!   without conflicting actuation (use case §3.2.7).
//! - [`geopm`]: a GEOPM-like runtime — tree-aggregated telemetry, plugin
//!   agents (monitor, power governor, power balancer, frequency map,
//!   energy-efficient) and an RM endpoint (§3.2.2, Figure 3).
//! - [`conductor`]: a Conductor-like runtime — configuration exploration then
//!   adaptive power reallocation under a job power bound (§3.2.1).
//! - [`countdown`]: a COUNTDOWN-like runtime — frequency reduction inside MPI
//!   phases, performance-neutral by construction (§3.2.6).
//! - [`meric`]: a MERIC/READEX-like runtime — per-region dynamic tuning from
//!   instrumented region boundaries (§3.2.4).
//! - [`scavenger`]: an Uncore-Power-Scavenger-like runtime (Table 2) —
//!   bandwidth-driven uncore frequency reclamation.
//! - [`dutycycle`]: an adaptive clock-modulation runtime (Table 1's duty
//!   cycle knob; Bhalachandra et al.) — early-arriving ranks run at reduced
//!   duty cycle.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod agent;
pub mod arbiter;
pub mod conductor;
pub mod countdown;
pub mod dutycycle;
pub mod exec;
pub mod geopm;
pub mod invariants;
pub mod meric;
pub mod scavenger;

pub use agent::{ArbitratedNodes, JobTelemetry, KnobKind, RuntimeAgent};
pub use arbiter::{Arbiter, ArbiterMode};
pub use conductor::Conductor;
pub use countdown::{Countdown, CountdownMode};
pub use dutycycle::DutyCycleAdapter;
pub use exec::{JobResult, JobRunner};
pub use geopm::{Geopm, GeopmPolicy};
pub use invariants::invariants;
pub use meric::Meric;
pub use scavenger::UncoreScavenger;
