//! # pstack-autotune — the auto-tuning framework (ytopt-like)
//!
//! Implements the paper's §3.2.3 autotuning loop (Figure 4): an autotuner
//! assigns values from a parameter space, an evaluator (the paper's `plopper`)
//! builds and runs the candidate, and the observed objective lands in a
//! performance database the search refines from. The same machinery drives the
//! cross-layer tuning of §3.1 — application knobs, system-software knobs and
//! power knobs are all just parameters.
//!
//! - [`space`]: typed discrete parameter spaces with READEX-ATP-style
//!   dependency constraints ("which combinations of parameters are not
//!   allowed").
//! - [`db`]: the performance database — every observation plus the
//!   best-so-far trajectory that Figure 4-style convergence plots need.
//! - [`search`]: search algorithms — random, grid/exhaustive, hill-climbing
//!   with restarts, simulated annealing, and a random-forest surrogate (the
//!   ytopt default).
//! - [`tuner`]: the loop itself, with a configurable evaluation budget
//!   (`--max-evals` in ytopt terms).
//! - [`resilient`]: fault-tolerant drivers — bounded retry-with-backoff,
//!   quarantine of repeatedly failing configurations, graceful degradation
//!   to a fallback search when the database is poisoned.
//! - [`faultlog`]: the [`FaultLog`] carried by every [`TuneReport`] stating
//!   what was injected and what was survived.
//! - [`ckpt`]: crash-safe sessions — a write-ahead log of every evaluation,
//!   periodic full snapshots, and `resume*` entry points on all four drivers
//!   that replay a killed session to a byte-identical [`TuneReport`].
//! - [`history_service`]: the shared performance-history bridge — warm
//!   starts from and recording to a `pstack-history` store (GPTune
//!   HistoryDB-style crowdtuning), plus the multi-session
//!   [`HistoryService`] ask-tell front-end.
//!
//! Every driver self-profiles into [`TuneReport::profile`] (per-stage
//! count/total/mean/p95, cache and retry attribution), and
//! [`Tuner::with_trace`] attaches a `pstack-trace` collector for full span
//! traces of the loop: one `eval` span per real evaluation (worker id,
//! config fingerprint, retry/fault verdicts) plus cache-hit, quarantine,
//! and degradation events on the root span.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod ckpt;
pub mod db;
pub mod faultlog;
pub mod history_service;
pub mod resilient;
pub mod search;
pub mod space;
pub mod tuner;

pub use ckpt::{
    CheckpointOpts, EvalRecord, ResilientSnapshot, SessionMeta, SessionSnapshot,
    SNAPSHOT_FORMAT_VERSION, WAL_FORMAT_VERSION,
};
pub use db::{Observation, PerfDatabase};
pub use faultlog::{FaultCounts, FaultEvent, FaultKind, FaultLog};
pub use history_service::{
    history_key, prior_from_history, record_report, space_shape, HistoryService, SessionSpec,
};
pub use resilient::{EvalError, RetryPolicy, Robustness};
pub use search::{
    shipped_algorithms, AnnealingSearch, ExhaustiveSearch, ForestSearch, HillClimbSearch,
    RandomSearch, SearchAlgorithm, SearchState,
};
pub use space::{Config, Param, ParamSpace, ParamValue};
pub use tuner::{
    config_fingerprint, BatchEvaluator, CacheStats, Evaluation, TuneError, TuneReport, Tuner,
};

// The tracing vocabulary used in this crate's public API, re-exported so
// downstream crates don't need a direct `pstack-trace` dependency to attach
// a collector or render a profile.
pub use pstack_trace::{ProfileSummary, StageStats, TraceCollector};
