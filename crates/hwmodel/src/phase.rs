//! Application phase kinds and the performance-rate model.
//!
//! COUNTDOWN, MERIC and GEOPM all exploit the same physical fact: how much an
//! application phase gains from core frequency depends on what bounds it.
//! [`SpeedModel`] captures this with a roofline-style two-resource model.

use crate::pstate::DutyCycle;
use serde::{Deserialize, Serialize};

/// What bounds a phase of execution (paper Table 1, node-layer methods:
/// "frequency scaling according to application phases (I/O, memory-bound,
/// communication-bound, compute-bound)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Retires instructions at core speed; scales ~linearly with frequency.
    ComputeBound,
    /// Stalled on DRAM bandwidth/latency; mostly uncore/memory sensitive.
    MemoryBound,
    /// Inside MPI communication (wait + copy); insensitive to core frequency.
    CommBound,
    /// Blocked on file/network I/O; insensitive to core frequency.
    IoBound,
}

impl PhaseKind {
    /// All phase kinds.
    pub const ALL: [PhaseKind; 4] = [
        PhaseKind::ComputeBound,
        PhaseKind::MemoryBound,
        PhaseKind::CommBound,
        PhaseKind::IoBound,
    ];

    /// Core activity factor for dynamic power: how hard the core toggles
    /// during this phase. Busy-wait MPI polling keeps cores surprisingly hot —
    /// that is precisely the energy COUNTDOWN recovers.
    pub fn core_activity(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 1.00,
            PhaseKind::MemoryBound => 0.55,
            PhaseKind::CommBound => 0.70, // spin-wait polling
            PhaseKind::IoBound => 0.25,
        }
    }

    /// DRAM traffic intensity (bytes per unit of work, relative scale).
    pub fn mem_intensity(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 0.15,
            PhaseKind::MemoryBound => 1.00,
            PhaseKind::CommBound => 0.10,
            PhaseKind::IoBound => 0.05,
        }
    }

    /// Core-frequency sensitivity weight used by [`SpeedModel`]: the fraction
    /// of the phase's critical path that scales with core frequency.
    pub fn freq_weight(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 0.98,
            PhaseKind::MemoryBound => 0.25,
            PhaseKind::CommBound => 0.03,
            PhaseKind::IoBound => 0.02,
        }
    }

    /// Uncore-frequency sensitivity weight (memory path).
    pub fn uncore_weight(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 0.02,
            PhaseKind::MemoryBound => 0.65,
            PhaseKind::CommBound => 0.07,
            PhaseKind::IoBound => 0.03,
        }
    }

    /// Instructions retired per unit of work (relative scale); drives IPC.
    pub fn instructions_per_work(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 1.0e9,
            PhaseKind::MemoryBound => 0.6e9,
            PhaseKind::CommBound => 0.3e9,
            PhaseKind::IoBound => 0.1e9,
        }
    }

    /// FLOPs per unit of work (relative scale).
    pub fn flops_per_work(self) -> f64 {
        match self {
            PhaseKind::ComputeBound => 0.8e9,
            PhaseKind::MemoryBound => 0.25e9,
            PhaseKind::CommBound => 0.0,
            PhaseKind::IoBound => 0.0,
        }
    }
}

/// A convex mixture of phase kinds, for phases that are not pure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMix {
    weights: [f64; 4],
}

impl PhaseMix {
    /// A pure phase.
    pub fn pure(kind: PhaseKind) -> Self {
        let mut weights = [0.0; 4];
        weights[Self::slot(kind)] = 1.0;
        PhaseMix { weights }
    }

    /// A mixture; weights are normalized to sum to 1.
    ///
    /// # Panics
    /// Panics if all weights are zero or any is negative/non-finite.
    pub fn new(compute: f64, memory: f64, comm: f64, io: f64) -> Self {
        let raw = [compute, memory, comm, io];
        for &w in &raw {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
        }
        let sum: f64 = raw.iter().sum();
        assert!(sum > 0.0, "at least one weight must be positive");
        PhaseMix {
            weights: [raw[0] / sum, raw[1] / sum, raw[2] / sum, raw[3] / sum],
        }
    }

    fn slot(kind: PhaseKind) -> usize {
        match kind {
            PhaseKind::ComputeBound => 0,
            PhaseKind::MemoryBound => 1,
            PhaseKind::CommBound => 2,
            PhaseKind::IoBound => 3,
        }
    }

    /// Weight of `kind` in the mixture.
    pub fn weight(&self, kind: PhaseKind) -> f64 {
        self.weights[Self::slot(kind)]
    }

    /// Weighted average of a per-kind property.
    pub fn blend(&self, f: impl Fn(PhaseKind) -> f64) -> f64 {
        PhaseKind::ALL.iter().map(|&k| self.weight(k) * f(k)).sum()
    }

    /// The dominant phase kind.
    pub fn dominant(&self) -> PhaseKind {
        let mut best = PhaseKind::ComputeBound;
        let mut bw = -1.0;
        for k in PhaseKind::ALL {
            if self.weight(k) > bw {
                bw = self.weight(k);
                best = k;
            }
        }
        best
    }
}

/// Roofline-style speed model.
///
/// The time for one unit of work decomposes into a core-frequency-scaled part,
/// an uncore-scaled part, and a fixed part:
///
/// ```text
/// t(f, u) = w_f·(f_ref/f) + w_u·(u_ref/u) + (1 − w_f − w_u)
/// speed   = duty_effect / t(f, u)           (1.0 at reference config)
/// ```
///
/// Duty-cycle modulation gates the core-scaled and fixed parts (the core only
/// executes during active cycles) but not memory/comm waits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedModel {
    /// Reference core frequency (GHz) at which speed = 1.
    pub f_ref_ghz: f64,
    /// Reference uncore frequency (GHz) at which speed = 1.
    pub u_ref_ghz: f64,
}

impl SpeedModel {
    /// Server default: 2.4 GHz core reference, 2.0 GHz uncore reference
    /// (a common Xeon nominal operating point).
    pub fn server_default() -> Self {
        SpeedModel {
            f_ref_ghz: 2.4,
            u_ref_ghz: 2.0,
        }
    }

    /// Relative execution speed (1.0 at the reference configuration) for a
    /// phase mixture at core frequency `f_ghz`, uncore `u_ghz` and `duty`.
    ///
    /// # Panics
    /// Panics on non-positive frequencies.
    pub fn speed(&self, mix: &PhaseMix, f_ghz: f64, u_ghz: f64, duty: DutyCycle) -> f64 {
        assert!(f_ghz > 0.0 && u_ghz > 0.0, "frequencies must be positive");
        let w_f = mix.blend(PhaseKind::freq_weight);
        let w_u = mix.blend(PhaseKind::uncore_weight);
        // Demand-aware uncore sensitivity: a slower mesh only stretches the
        // critical path to the extent the phase actually consumes bandwidth
        // (low-traffic phases hide uncore latency behind computation — the
        // physical fact the Uncore Power Scavenger exploits).
        let intensity = mix.blend(PhaseKind::mem_intensity);
        let w_u_eff = w_u * (intensity / 0.5).min(1.0);
        let w_fixed = (1.0 - w_f - w_u_eff).max(0.0);
        // Active-cycle gating: the core-scaled part stretches by 1/duty.
        let d = duty.fraction();
        let t = w_f * (self.f_ref_ghz / f_ghz) / d + w_u_eff * (self.u_ref_ghz / u_ghz) + w_fixed;
        1.0 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_mix_weights() {
        let m = PhaseMix::pure(PhaseKind::MemoryBound);
        assert_eq!(m.weight(PhaseKind::MemoryBound), 1.0);
        assert_eq!(m.weight(PhaseKind::ComputeBound), 0.0);
        assert_eq!(m.dominant(), PhaseKind::MemoryBound);
    }

    #[test]
    fn mix_normalizes() {
        let m = PhaseMix::new(2.0, 2.0, 0.0, 0.0);
        assert!((m.weight(PhaseKind::ComputeBound) - 0.5).abs() < 1e-12);
        assert!((m.weight(PhaseKind::MemoryBound) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_mix_panics() {
        PhaseMix::new(0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn speed_is_one_at_reference() {
        let sm = SpeedModel::server_default();
        for kind in PhaseKind::ALL {
            let s = sm.speed(&PhaseMix::pure(kind), 2.4, 2.0, DutyCycle::FULL);
            assert!((s - 1.0).abs() < 1e-9, "{kind:?}: {s}");
        }
    }

    #[test]
    fn compute_scales_with_frequency() {
        let sm = SpeedModel::server_default();
        let m = PhaseMix::pure(PhaseKind::ComputeBound);
        let lo = sm.speed(&m, 1.2, 2.0, DutyCycle::FULL);
        let hi = sm.speed(&m, 3.5, 2.0, DutyCycle::FULL);
        // Nearly proportional: 3.5/1.2 ≈ 2.9×; expect > 2.4× with the 5% fixed part.
        assert!(hi / lo > 2.4, "compute speedup too small: {}", hi / lo);
    }

    #[test]
    fn comm_insensitive_to_frequency() {
        let sm = SpeedModel::server_default();
        let m = PhaseMix::pure(PhaseKind::CommBound);
        let lo = sm.speed(&m, 1.0, 2.0, DutyCycle::FULL);
        let hi = sm.speed(&m, 3.5, 2.0, DutyCycle::FULL);
        assert!(
            hi / lo < 1.08,
            "comm phase should barely speed up: {}",
            hi / lo
        );
    }

    #[test]
    fn memory_prefers_uncore() {
        let sm = SpeedModel::server_default();
        let m = PhaseMix::pure(PhaseKind::MemoryBound);
        let core_boost = sm.speed(&m, 3.5, 2.0, DutyCycle::FULL);
        let uncore_boost = sm.speed(&m, 2.4, 2.8, DutyCycle::FULL);
        assert!(
            uncore_boost > core_boost,
            "uncore should matter more for memory-bound: {uncore_boost} vs {core_boost}"
        );
    }

    #[test]
    fn duty_cycle_slows_compute_not_comm() {
        let sm = SpeedModel::server_default();
        let half = DutyCycle::new(8);
        let comp = PhaseMix::pure(PhaseKind::ComputeBound);
        let comm = PhaseMix::pure(PhaseKind::CommBound);
        let comp_ratio =
            sm.speed(&comp, 2.4, 2.0, half) / sm.speed(&comp, 2.4, 2.0, DutyCycle::FULL);
        let comm_ratio =
            sm.speed(&comm, 2.4, 2.0, half) / sm.speed(&comm, 2.4, 2.0, DutyCycle::FULL);
        assert!(comp_ratio < 0.6, "compute halves with duty: {comp_ratio}");
        assert!(comm_ratio > 0.9, "comm barely affected: {comm_ratio}");
    }

    #[test]
    fn speed_monotone_in_frequency() {
        let sm = SpeedModel::server_default();
        let m = PhaseMix::new(1.0, 1.0, 0.5, 0.1);
        let mut prev = 0.0;
        for i in 0..20 {
            let f = 1.0 + 0.125 * i as f64;
            let s = sm.speed(&m, f, 2.0, DutyCycle::FULL);
            assert!(s > prev, "non-monotone at {f}");
            prev = s;
        }
    }

    #[test]
    fn activity_factors_ordered() {
        // Compute hottest, I/O coolest; comm hot (spin-wait) — COUNTDOWN's prey.
        assert!(PhaseKind::ComputeBound.core_activity() > PhaseKind::CommBound.core_activity());
        assert!(PhaseKind::CommBound.core_activity() > PhaseKind::MemoryBound.core_activity());
        assert!(PhaseKind::MemoryBound.core_activity() > PhaseKind::IoBound.core_activity());
    }
}
