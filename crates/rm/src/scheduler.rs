//! Power-aware batch scheduler (SLURM-like).
//!
//! FCFS with EASY backfill over a fleet of managed nodes, extended with the
//! power-awareness the paper's system layer requires:
//!
//! - a **system power budget**: a job is admitted only when its power
//!   reservation fits next to the running jobs' reservations and the idle
//!   fleet's draw;
//! - **per-job power assignment** ([`crate::policy::PowerAssignment`]): the
//!   budget handed to the job's runtime system (§3.1.1 "how much power to
//!   reassign to a running job"), enforced out-of-band with node power caps
//!   when the job carries no power-aware runtime;
//! - **moldability**: node counts chosen at launch within the job's range
//!   and the application's node-count rule;
//! - job-attached runtime systems ([`crate::spec::AgentKind`]).
//!
//! Allocation moves `NodeManager`s out of the idle pool into the running job
//! and back on completion, which keeps borrow-handling trivial and mirrors
//! real exclusive node allocation.
//!
//! # Two drain engines, one tick
//!
//! The scheduler advances with a single physics tick ([`Scheduler::step`]),
//! but offers two drain loops over it:
//!
//! - the **per-tick oracle** ([`Scheduler::run_until_drained_per_tick`])
//!   re-runs the scheduling pass every quantum, like a naive SLURM loop;
//! - the **event-driven engine** ([`Scheduler::run_until_drained`]) keeps a
//!   time-ordered [`EventHeap`] of arrivals, completions, control ticks and
//!   budget changes, re-plans only when an event could change the schedule
//!   head (a dirty flag), defers idle-node physics until observed, and
//!   fast-forwards through stretches where nothing runs.
//!
//! The two engines produce **byte-identical** [`JobRecord`] streams: every
//! quantity the scheduling pass reads (reservations, idle counts,
//! launch-time completion estimates) is *event-stable* — constant between
//! events — so skipping a re-plan can never skip a launch the oracle would
//! have made. `tests/event_equivalence.rs` proves this over a proptest grid
//! of seeds, quanta and arrival patterns, including the fig1/fig3 workloads.

use crate::events::{EventHeap, EventKind};
use crate::policy::{PowerAssignment, SystemPowerPolicy};
use crate::spec::{JobId, JobSpec};
use pstack_apps::MpiModel;
use pstack_node::{NodeManager, Signal};
use pstack_runtime::geopm::{Endpoint, PolicyUpdate};
use pstack_runtime::{ArbiterMode, GeopmPolicy, JobRunner, RuntimeAgent};
use pstack_sim::{SeedTree, SimDuration, SimTime, TraceRecorder};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};

/// Completed-job accounting record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job identifier.
    pub id: JobId,
    /// Submission time.
    pub submit: SimTime,
    /// Launch time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// Nodes the job ran on.
    pub nodes: usize,
    /// Power budget assigned at launch, if any.
    pub power_budget_w: Option<f64>,
    /// Energy the job's nodes consumed while allocated, joules.
    pub energy_j: f64,
    /// Total application work completed.
    pub work: f64,
}

impl JobRecord {
    /// Queue wait time.
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.submit)
    }

    /// Execution time.
    pub fn runtime(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Which idle nodes the RM hands to a new job (paper §3.1.1 static
/// interaction: "which nodes (or compute resources) to select for job launch
/// for managing inefficiencies in the system such as thermal hot spots, and
/// processor manufacturing variation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSelection {
    /// Whatever happens to be at the end of the idle pool.
    Arbitrary,
    /// Prefer the nodes with the lowest package temperature (thermal-aware).
    CoolestFirst,
    /// Prefer the nodes drawing the least idle power (variation-aware: low
    /// leakage silicon runs cheaper at iso-frequency).
    MostEfficientFirst,
}

/// How the RM sheds load when the system budget drops below what is already
/// committed (paper Table 1, system layer: "canceling running jobs,
/// pausing/restarting jobs" and out-of-band power controls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmergencyResponse {
    /// Suspend the most recently started jobs until the rest fits.
    PauseJobs,
    /// Keep everything running but tighten every job's power cap
    /// proportionally (out-of-band enforcement).
    TightenCaps,
}

/// Aggregate metrics over a scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerMetrics {
    /// Jobs completed.
    pub completed: usize,
    /// Jobs completed per hour of simulated time.
    pub jobs_per_hour: f64,
    /// Mean queue wait, seconds.
    pub mean_wait_s: f64,
    /// Node-seconds allocated / node-seconds available.
    pub utilization: f64,
    /// Total system energy (all nodes, whole horizon), joules.
    pub system_energy_j: f64,
    /// Mean system power over the horizon, watts.
    pub mean_system_power_w: f64,
    /// Total application work completed.
    pub total_work: f64,
}

struct RunningJob {
    spec: JobSpec,
    nodes: Vec<NodeManager>,
    runner: JobRunner,
    agents: Vec<Box<dyn RuntimeAgent>>,
    start: SimTime,
    start_energy_j: f64,
    reservation_w: f64,
    budget_w: Option<f64>,
    /// Paused by a power emergency: execution suspended, nodes idling, the
    /// pre-pause reservation remembered for resume.
    paused: Option<f64>,
    /// GEOPM endpoint for dynamic policy renegotiation, when the job's
    /// runtime provides one.
    endpoint: Option<Endpoint>,
    /// Efficiency tracking for dynamic reassignment: last sampled
    /// (work, energy).
    last_sample: (f64, f64),
    /// Smoothed efficiency, work per joule.
    efficiency_ema: Option<f64>,
    /// Launch-time completion estimate used as the EASY backfill shadow.
    /// Fixed at launch so the estimate is *event-stable*: between events the
    /// backfill relation can only expire, never newly hold, which is what
    /// lets the event-driven engine skip re-planning quiescent ticks.
    predicted_end: SimTime,
}

/// An idle node plus the time its idle physics has been integrated to.
/// The event-driven drain defers idle stepping (nobody reads an idle node
/// mid-stretch); the deferred quanta are replayed verbatim before any
/// observation, so the node state is bit-identical to eager stepping.
struct IdleSlot {
    nm: NodeManager,
    synced_to: SimTime,
}

/// The power-aware scheduler.
///
/// # Example
///
/// ```
/// use pstack_hwmodel::{NodeConfig, VariationModel};
/// use pstack_node::NodeManager;
/// use pstack_rm::{JobSpec, PowerAssignment, Scheduler, SystemPowerPolicy};
/// use pstack_apps::synthetic::{Profile, SyntheticApp};
/// use pstack_sim::{SeedTree, SimDuration, SimTime};
/// use std::sync::Arc;
///
/// let seeds = SeedTree::new(7);
/// let fleet = NodeManager::fleet(
///     4, NodeConfig::server_default(), &VariationModel::typical(), &seeds,
/// );
/// let policy = SystemPowerPolicy::budgeted(4.0 * 320.0, PowerAssignment::FairShare);
/// let mut sched = Scheduler::new(fleet, policy, seeds.subtree("sched"));
/// sched.submit(JobSpec::rigid(
///     1,
///     Arc::new(SyntheticApp::new(Profile::Mixed, 5.0, 5)),
///     2,
///     SimTime::ZERO,
/// ));
/// sched.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(600));
/// assert_eq!(sched.records().len(), 1);
/// ```
pub struct Scheduler {
    now: SimTime,
    idle: Vec<IdleSlot>,
    /// Failed nodes: powered off (no idle physics, no power draw) until a
    /// [`EventKind::NodeRecover`] returns them to the idle pool.
    down: Vec<IdleSlot>,
    total_nodes: usize,
    queue: VecDeque<JobSpec>,
    running: Vec<RunningJob>,
    records: Vec<JobRecord>,
    policy: SystemPowerPolicy,
    mpi: MpiModel,
    seeds: SeedTree,
    trace: TraceRecorder,
    rejected: Vec<JobId>,
    allocated_node_seconds: f64,
    /// Node power floor for viable FairShare admission, watts per node.
    min_viable_node_w: f64,
    backfill: bool,
    selection: NodeSelection,
    /// Dynamic power reassignment: re-divide the system budget across
    /// endpoint-carrying jobs by measured efficiency, at this period.
    reassign_period: Option<SimDuration>,
    next_reassign: SimTime,
    /// Pending arrivals, budget changes, ticks and completions.
    events: EventHeap,
    /// Whether an event since the last scheduling pass could change the
    /// schedule head. The event-driven engine skips `schedule()` when clear.
    sched_dirty: bool,
    /// Quantum of the most recent tick, used to replay deferred idle physics.
    last_quantum: SimDuration,
    /// Queue positions the backfill pass examines per scheduling pass.
    backfill_depth: usize,
    /// Override for the job runners' integration substep ceiling.
    runner_max_substep: Option<SimDuration>,
    /// Memoized `(job id, node count) → total work` for backfill estimates.
    work_cache: HashMap<(u64, usize), f64>,
    /// Memoized power reservation sum, invalidated on any mutation of the
    /// running set, the idle pool or any reservation.
    reserved_memo: Cell<Option<f64>>,
    /// Memoized allocated-node count, same invalidation discipline.
    busy_memo: Cell<Option<usize>>,
    /// Jobs ever submitted (requeues excluded), for conservation checks.
    submitted: usize,
    /// Kill-and-requeue attempts consumed per job id.
    retries: HashMap<u64, u32>,
    /// Requeue budget per job before it is declared permanently failed.
    max_job_retries: u32,
    /// Jobs that exhausted their retry budget.
    failed: Vec<JobId>,
    /// Stuck power-cap actuators: node id → expiry. RM out-of-band cap
    /// writes to these nodes are dropped until the expiry passes.
    stuck_caps: HashMap<usize, SimTime>,
    /// Count of cap writes dropped on stuck actuators.
    stuck_cap_drops: u64,
    /// Telemetry dropout windows fired so far.
    telemetry_dropouts: u64,
    /// Until when the fleet aggregation tree is dropping our samples.
    telemetry_blackout_until: SimTime,
}

impl Scheduler {
    /// Create a scheduler over `nodes` with `policy`.
    pub fn new(nodes: Vec<NodeManager>, policy: SystemPowerPolicy, seeds: SeedTree) -> Self {
        assert!(!nodes.is_empty(), "cluster needs nodes");
        let total_nodes = nodes.len();
        Scheduler {
            now: SimTime::ZERO,
            idle: nodes
                .into_iter()
                .map(|nm| IdleSlot {
                    nm,
                    synced_to: SimTime::ZERO,
                })
                .collect(),
            total_nodes,
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            policy,
            mpi: MpiModel::typical(),
            seeds,
            trace: TraceRecorder::new(),
            rejected: Vec::new(),
            allocated_node_seconds: 0.0,
            min_viable_node_w: 180.0,
            backfill: true,
            selection: NodeSelection::Arbitrary,
            reassign_period: None,
            next_reassign: SimTime::ZERO,
            events: EventHeap::new(),
            sched_dirty: true,
            last_quantum: SimDuration::from_secs(1),
            backfill_depth: 256,
            runner_max_substep: None,
            work_cache: HashMap::new(),
            reserved_memo: Cell::new(None),
            busy_memo: Cell::new(None),
            down: Vec::new(),
            submitted: 0,
            retries: HashMap::new(),
            max_job_retries: 3,
            failed: Vec::new(),
            stuck_caps: HashMap::new(),
            stuck_cap_drops: 0,
            telemetry_dropouts: 0,
            telemetry_blackout_until: SimTime::ZERO,
        }
    }

    /// Enable fully dynamic power reassignment (§3.2.2 mode 3 / §3.1.4): at
    /// each `period`, the RM measures every endpoint-carrying job's power
    /// efficiency (work per joule), re-divides the system budget in
    /// proportion to `nodes × efficiency`, and pushes the new budgets to the
    /// jobs' GEOPM balancers through their endpoints.
    pub fn with_dynamic_power_reassignment(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        self.reassign_period = Some(period);
        self
    }

    /// Choose the node-selection policy for launches.
    pub fn with_node_selection(mut self, selection: NodeSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Disable EASY backfill (pure FCFS), for ablation experiments.
    pub fn without_backfill(mut self) -> Self {
        self.backfill = false;
        self
    }

    /// Override the communication/imbalance model for executed jobs.
    pub fn with_mpi(mut self, mpi: MpiModel) -> Self {
        self.mpi = mpi;
        self
    }

    /// Cap how many queue positions each backfill pass examines. Fleet-scale
    /// queues (tens of thousands of jobs) make a full scan per pass
    /// quadratic; the cap bounds it while leaving small queues exhaustive.
    pub fn with_backfill_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.backfill_depth = depth;
        self
    }

    /// Override the job runners' integration substep ceiling (default
    /// 250 ms). Fleet benchmarks coarsen it to trade integration resolution
    /// for wall-clock speed; both drain engines share the override, so
    /// equivalence is unaffected.
    pub fn with_runner_max_substep(mut self, substep: SimDuration) -> Self {
        assert!(!substep.is_zero(), "substep must be positive");
        self.runner_max_substep = Some(substep);
        self
    }

    /// Cap how many kill-and-requeue attempts a job gets before it is
    /// declared permanently failed (default 3).
    pub fn with_max_job_retries(mut self, retries: u32) -> Self {
        self.max_job_retries = retries;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Nodes in the cluster (idle + allocated).
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently running.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Completed-job records.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Jobs rejected as infeasible under the machine size or power policy.
    pub fn rejected(&self) -> &[JobId] {
        &self.rejected
    }

    /// Jobs ever submitted through [`Scheduler::submit`] (requeues of a
    /// killed job do not count twice). With the drain complete,
    /// `submitted == completed + failed + rejected` — the conservation law
    /// the E11 chaos grid asserts.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Jobs that exhausted their retry budget after fault kills.
    pub fn failed(&self) -> &[JobId] {
        &self.failed
    }

    /// Nodes currently failed (powered off, out of the schedulable pool).
    pub fn down_nodes(&self) -> usize {
        self.down.len()
    }

    /// Nodes currently alive (idle or allocated).
    pub fn alive_nodes(&self) -> usize {
        self.total_nodes - self.down.len()
    }

    /// Hardware ids of every node this scheduler owns (idle, allocated and
    /// down), sorted. Fleet fault plans use this to address nodes.
    pub fn node_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .idle
            .iter()
            .map(|s| s.nm.id().0)
            .chain(self.down.iter().map(|s| s.nm.id().0))
            .chain(
                self.running
                    .iter()
                    .flat_map(|j| j.nodes.iter().map(|nm| nm.id().0)),
            )
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Telemetry dropout windows fired so far.
    pub fn telemetry_dropouts(&self) -> u64 {
        self.telemetry_dropouts
    }

    /// Whether the fleet aggregation tree is currently dropping this
    /// scheduler's samples.
    pub fn telemetry_suppressed(&self) -> bool {
        self.now < self.telemetry_blackout_until
    }

    /// RM out-of-band cap writes dropped on stuck actuators so far.
    pub fn stuck_cap_drops(&self) -> u64 {
        self.stuck_cap_drops
    }

    /// The event trace (job starts/ends, power decisions).
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The pending event heap (diagnostics, checkpointing).
    pub fn events(&self) -> &EventHeap {
        &self.events
    }

    /// Replace the event heap, e.g. when resuming from a
    /// `pstack-ckpt` snapshot taken mid-drain.
    pub fn restore_events(&mut self, events: EventHeap) {
        self.events = events;
        self.sched_dirty = true;
    }

    /// Package temperatures of the currently idle nodes (diagnostics).
    pub fn idle_temperatures(&mut self) -> Vec<f64> {
        self.sync_idle_nodes();
        self.idle
            .iter()
            .map(|s| s.nm.read(Signal::MaxTemperatureC))
            .collect()
    }

    /// Cancel a job (paper Table 1, system layer: "canceling running
    /// jobs"). Queued jobs are dropped; running jobs are terminated and
    /// their nodes returned. Returns whether the job was found.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.queue.iter().position(|j| j.id == id) {
            self.queue.remove(pos);
            self.trace.record(
                self.now,
                "rm",
                "job_cancel",
                id.0 as f64,
                format!("{id} cancelled while queued"),
            );
            self.sched_dirty = true;
            return true;
        }
        if let Some(pos) = self.running.iter().position(|j| j.spec.id == id) {
            let job = self.running.remove(pos);
            self.trace.record(
                self.now,
                "rm",
                "job_cancel",
                id.0 as f64,
                format!("{id} cancelled while running"),
            );
            for mut nm in job.nodes {
                // The runtime never ran its on_job_end: reset everything.
                nm.reset_all_knobs();
                self.idle.push(IdleSlot {
                    nm,
                    synced_to: self.now,
                });
            }
            self.sched_dirty = true;
            self.invalidate_accounting();
            return true;
        }
        false
    }

    /// Submit a job (enqueued in arrival order). Its arrival enters the
    /// event heap so the event-driven drain wakes exactly at submit time.
    pub fn submit(&mut self, spec: JobSpec) {
        self.trace.record(
            self.now.max(spec.submit),
            "rm",
            "job_submit",
            spec.id.0 as f64,
            format!("{} min={} max={}", spec.id, spec.min_nodes, spec.max_nodes),
        );
        self.events.push(spec.submit, EventKind::Arrival(spec.id));
        self.sched_dirty = true;
        self.submitted += 1;
        self.queue.push_back(spec);
    }

    /// Schedule a system-budget change to apply at `at` (demand-response /
    /// corridor events known in advance). Both drain engines apply it at the
    /// first tick boundary at or after `at`.
    pub fn schedule_budget_change(
        &mut self,
        at: SimTime,
        budget_w: Option<f64>,
        response: EmergencyResponse,
    ) {
        self.events
            .push(at, EventKind::BudgetChange { budget_w, response });
    }

    /// Schedule a node crash at `at`. An idle node powers off; a node
    /// inside a running job kills it (requeued under the retry budget).
    pub fn schedule_node_fail(&mut self, at: SimTime, node: usize) {
        self.events.push(at, EventKind::NodeFail { node });
    }

    /// Schedule a failed node's reboot at `at`: knobs reset, back to the
    /// idle pool. A no-op if the node is not down when the event fires.
    pub fn schedule_node_recover(&mut self, at: SimTime, node: usize) {
        self.events.push(at, EventKind::NodeRecover { node });
    }

    /// Schedule a software abort of `id` at `at` (a no-op unless the job is
    /// running when the event fires).
    pub fn schedule_job_fail(&mut self, at: SimTime, id: JobId) {
        self.events.push(at, EventKind::JobFail(id));
    }

    /// Schedule a stuck power-cap actuator on `node` from `at` to `until`:
    /// RM out-of-band cap writes to the node are dropped in that window.
    pub fn schedule_cap_stick(&mut self, at: SimTime, node: usize, until: SimTime) {
        self.events.push(at, EventKind::CapStick { node, until });
    }

    /// Schedule a telemetry dropout window from `at` to `until` in the
    /// fleet aggregation tree (observability only; never changes scheduling).
    pub fn schedule_telemetry_dropout(&mut self, at: SimTime, until: SimTime) {
        self.events.push(at, EventKind::TelemetryDropout { until });
    }

    /// Instantaneous system power: running nodes + idle nodes, watts.
    pub fn system_power_w(&mut self) -> f64 {
        self.sync_idle_nodes();
        let running: f64 = self
            .running
            .iter()
            .flat_map(|j| j.nodes.iter())
            .map(|n| n.read(Signal::NodePowerWatts))
            .sum();
        let idle: f64 = self
            .idle
            .iter()
            .map(|s| s.nm.read(Signal::NodePowerWatts))
            .sum();
        running + idle
    }

    /// Total energy consumed by every node so far, joules. Down nodes are
    /// powered off (no draw while down) but keep the energy they consumed
    /// before failing.
    pub fn system_energy_j(&mut self) -> f64 {
        self.sync_idle_nodes();
        self.running
            .iter()
            .flat_map(|j| j.nodes.iter())
            .map(|n| n.read(Signal::NodeEnergyJoules))
            .sum::<f64>()
            + self
                .idle
                .iter()
                .map(|s| s.nm.read(Signal::NodeEnergyJoules))
                .sum::<f64>()
            + self
                .down
                .iter()
                .map(|s| s.nm.read(Signal::NodeEnergyJoules))
                .sum::<f64>()
    }

    /// Replay deferred idle-node physics up to the current time. The replay
    /// uses the same per-quantum `step_idle` calls the eager oracle makes,
    /// so the node state after catch-up is bit-identical.
    fn sync_idle_nodes(&mut self) {
        let (now, quantum) = (self.now, self.last_quantum);
        for slot in &mut self.idle {
            Self::catch_up_idle(slot, now, quantum);
        }
    }

    fn catch_up_idle(slot: &mut IdleSlot, target: SimTime, quantum: SimDuration) {
        while slot.synced_to < target {
            let dt = quantum.min(target.since(slot.synced_to));
            if dt.is_zero() {
                break;
            }
            slot.nm.step_idle(slot.synced_to, dt);
            slot.synced_to += dt;
        }
    }

    fn invalidate_accounting(&self) {
        self.reserved_memo.set(None);
        self.busy_memo.set(None);
    }

    /// Power currently reserved (running jobs + idle estimate), watts.
    /// Paused jobs reserve only their nodes' idle draw. Memoized: the fresh
    /// sum is cached until the next mutation, so admission probes are O(1).
    fn reserved_w(&self) -> f64 {
        if let Some(v) = self.reserved_memo.get() {
            return v;
        }
        let jobs: f64 = self
            .running
            .iter()
            .map(|j| {
                if j.paused.is_some() {
                    self.policy.node_idle_estimate_w * j.nodes.len() as f64
                } else {
                    j.reservation_w
                }
            })
            .sum();
        let v = jobs + self.policy.node_idle_estimate_w * self.idle.len() as f64;
        self.reserved_memo.set(Some(v));
        v
    }

    /// Allocated-node count over all running jobs (paused included),
    /// memoized like [`Scheduler::reserved_w`].
    fn busy_nodes(&self) -> usize {
        if let Some(v) = self.busy_memo.get() {
            return v;
        }
        let v = self.running.iter().map(|j| j.nodes.len()).sum();
        self.busy_memo.set(Some(v));
        v
    }

    /// Change the system power budget at runtime (demand-response events,
    /// corridor renegotiation). If the new budget no longer covers committed
    /// reservations, `response` decides how load is shed; a later call with
    /// a looser budget resumes paused jobs and relaxes caps.
    pub fn set_system_budget(&mut self, budget_w: Option<f64>, response: EmergencyResponse) {
        self.policy.system_budget_w = budget_w;
        self.sched_dirty = true;
        self.invalidate_accounting();
        self.trace.record(
            self.now,
            "rm",
            "budget_change",
            budget_w.unwrap_or(f64::NAN),
            format!("{response:?}"),
        );
        let Some(budget) = budget_w else {
            self.resume_paused();
            return;
        };
        match response {
            EmergencyResponse::PauseJobs => {
                // Suspend newest-first until the commitment fits.
                while self.reserved_w() > budget {
                    let Some(victim) = self
                        .running
                        .iter_mut()
                        .filter(|j| j.paused.is_none())
                        .max_by_key(|j| j.start)
                    else {
                        break;
                    };
                    victim.paused = Some(victim.reservation_w);
                    let id = victim.spec.id;
                    self.invalidate_accounting();
                    self.trace.record(
                        self.now,
                        "rm",
                        "job_pause",
                        id.0 as f64,
                        format!("{id} paused by power emergency"),
                    );
                }
                self.resume_paused();
            }
            EmergencyResponse::TightenCaps => {
                let idle_w = self.policy.node_idle_estimate_w
                    * (self.idle.len()
                        + self
                            .running
                            .iter()
                            .filter(|j| j.paused.is_some())
                            .map(|j| j.nodes.len())
                            .sum::<usize>()) as f64;
                let busy_nodes: usize = self
                    .running
                    .iter()
                    .filter(|j| j.paused.is_none())
                    .map(|j| j.nodes.len())
                    .sum();
                if busy_nodes == 0 {
                    return;
                }
                let per_node = ((budget - idle_w) / busy_nodes as f64)
                    .max(self.policy.node_idle_estimate_w + 20.0);
                let now = self.now;
                for job in self.running.iter_mut().filter(|j| j.paused.is_none()) {
                    job.reservation_w = per_node * job.nodes.len() as f64;
                    job.budget_w = Some(job.reservation_w);
                    // Degraded-mode clamp propagation: a stuck actuator keeps
                    // its old (looser) cap, so the job's responsive nodes
                    // absorb the difference — the job stays inside its
                    // tightened reservation, and the site inside the
                    // emergency budget, for as long as the stick lasts.
                    let stuck: Vec<bool> = job
                        .nodes
                        .iter()
                        .map(|nm| matches!(self.stuck_caps.get(&nm.id().0), Some(&u) if now < u))
                        .collect();
                    let stuck_w: f64 = job
                        .nodes
                        .iter()
                        .zip(&stuck)
                        .filter(|&(_, &s)| s)
                        .map(|(nm, _)| {
                            let cap = nm.read(Signal::PowerCapWatts);
                            if cap.is_finite() {
                                cap
                            } else {
                                self.policy.node_peak_estimate_w
                            }
                        })
                        .sum();
                    let responsive = stuck.iter().filter(|&&s| !s).count();
                    let comp_w = if responsive > 0 {
                        ((job.reservation_w - stuck_w) / responsive as f64)
                            .max(self.policy.node_idle_estimate_w + 20.0)
                    } else {
                        per_node
                    };
                    for (nm, &is_stuck) in job.nodes.iter_mut().zip(&stuck) {
                        if is_stuck {
                            self.stuck_cap_drops += 1;
                            continue;
                        }
                        nm.set_power_limit(now, comp_w, SimDuration::from_millis(10));
                    }
                    // A budget-consuming runtime would reassert its old caps
                    // at its next control tick; renegotiate through the
                    // endpoint so the tightened budget sticks.
                    if let Some(ep) = &job.endpoint {
                        ep.send(PolicyUpdate {
                            policy: GeopmPolicy::PowerBalancer {
                                job_budget_w: job.reservation_w,
                            },
                        });
                    }
                }
                self.invalidate_accounting();
            }
        }
    }

    /// Resume paused jobs (oldest first) while the budget allows.
    fn resume_paused(&mut self) {
        loop {
            let budget = self.policy.system_budget_w;
            // Find the oldest paused job whose reservation now fits.
            let reserved = self.reserved_w();
            let candidate = self
                .running
                .iter_mut()
                .filter(|j| j.paused.is_some())
                .min_by_key(|j| j.start);
            let Some(job) = candidate else { break };
            let resume_res = job.paused.expect("paused");
            let idle_equiv = self.policy.node_idle_estimate_w * job.nodes.len() as f64;
            let fits = match budget {
                None => true,
                Some(b) => reserved - idle_equiv + resume_res <= b,
            };
            if !fits {
                break;
            }
            job.reservation_w = resume_res;
            job.paused = None;
            let id = job.spec.id;
            self.invalidate_accounting();
            self.trace.record(
                self.now,
                "rm",
                "job_resume",
                id.0 as f64,
                format!("{id} resumed"),
            );
        }
    }

    /// Try to admit `spec` right now. Returns `(nodes, reservation, budget)`.
    ///
    /// Power-aware moldable sizing: when the preferred (largest) node count
    /// fails power admission, smaller legal counts are tried — the RM trades
    /// width for watts rather than leaving the job queued (§3.1.1: "how many
    /// nodes ... which nodes" are power decisions, not just placement).
    fn try_admit(&mut self, spec: &JobSpec) -> Option<(usize, f64, Option<f64>)> {
        let largest = spec.fit_nodes(self.idle.len())?;
        let rule = spec.app.node_rule();
        let candidates = (spec.min_nodes..=largest).rev().filter(|&n| rule.allows(n));
        for n in candidates {
            if let Some(rb) = self.admit_power_check(n) {
                return Some((n, rb.0, rb.1));
            }
        }
        None
    }

    /// Power admission for a prospective `n`-node launch.
    fn admit_power_check(&self, n: usize) -> Option<(f64, Option<f64>)> {
        // Power admission: nodes move from idle draw to job reservation.
        let headroom = match self.policy.system_budget_w {
            None => f64::INFINITY,
            Some(budget) => {
                budget - self.reserved_w() + self.policy.node_idle_estimate_w * n as f64
            }
        };
        let peak = self.policy.node_peak_estimate_w * n as f64;
        match self.policy.assignment {
            PowerAssignment::Unconstrained => {
                if peak > headroom {
                    return None;
                }
                Some((peak, None))
            }
            PowerAssignment::PerNodeCap(w) => {
                let r = w * n as f64;
                if r > headroom {
                    return None;
                }
                Some((r, Some(r)))
            }
            PowerAssignment::FairShare => {
                // Equal watts per allocated node across the whole system; the
                // admission triggers a re-division over running jobs (§3.1.1
                // dynamic interaction: "how much power to reassign to a
                // running job").
                let budget = self
                    .policy
                    .system_budget_w
                    .expect("FairShare requires a system budget");
                let busy = self.busy_nodes();
                let idle_after = self.idle.len() - n;
                let available = budget - self.policy.node_idle_estimate_w * idle_after as f64;
                let per_node =
                    (available / (busy + n) as f64).min(self.policy.node_peak_estimate_w);
                if per_node < self.min_viable_node_w {
                    return None;
                }
                let r = per_node * n as f64;
                Some((r, Some(r)))
            }
        }
    }

    /// Re-divide the system budget equally per allocated node and push the
    /// new budgets to running jobs (out-of-band caps for agentless jobs).
    fn rebalance_fair_share(&mut self) {
        let Some(budget) = self.policy.system_budget_w else {
            return;
        };
        let busy = self.busy_nodes();
        if busy == 0 {
            return;
        }
        let available = budget - self.policy.node_idle_estimate_w * self.idle.len() as f64;
        let per_node = (available / busy as f64)
            .min(self.policy.node_peak_estimate_w)
            .max(self.min_viable_node_w);
        let now = self.now;
        for job in &mut self.running {
            let n = job.nodes.len();
            job.reservation_w = per_node * n as f64;
            job.budget_w = Some(job.reservation_w);
            if matches!(job.spec.agent, crate::spec::AgentKind::None) {
                for nm in job.nodes.iter_mut() {
                    if matches!(self.stuck_caps.get(&nm.id().0), Some(&u) if now < u) {
                        self.stuck_cap_drops += 1;
                        continue;
                    }
                    nm.set_power_limit(now, per_node, SimDuration::from_millis(10));
                }
            }
        }
        self.invalidate_accounting();
    }

    /// Total work of `spec`'s workload at `n` nodes, memoized — backfill
    /// estimates rebuild identical workloads thousands of times otherwise.
    fn cached_total_work(&mut self, spec: &JobSpec, n: usize) -> f64 {
        let key = (spec.id.0, n);
        if let Some(&w) = self.work_cache.get(&key) {
            return w;
        }
        let w = spec.app.workload(n).total_work();
        self.work_cache.insert(key, w);
        w
    }

    fn launch(&mut self, spec: JobSpec, n: usize, reservation_w: f64, budget_w: Option<f64>) {
        // Node selection: order the idle pool so the preferred nodes sit at
        // the tail (which `split_off` hands to the job). Sorting reads node
        // state, so deferred idle physics must be replayed first; arbitrary
        // selection only needs the selected tail current.
        match self.selection {
            NodeSelection::Arbitrary => {
                let (now, quantum) = (self.now, self.last_quantum);
                let split_at = self.idle.len() - n;
                for slot in &mut self.idle[split_at..] {
                    Self::catch_up_idle(slot, now, quantum);
                }
            }
            NodeSelection::CoolestFirst => {
                self.sync_idle_nodes();
                self.idle.sort_by(|a, b| {
                    let ta = a.nm.read(Signal::MaxTemperatureC);
                    let tb = b.nm.read(Signal::MaxTemperatureC);
                    tb.partial_cmp(&ta).expect("finite temperatures")
                });
            }
            NodeSelection::MostEfficientFirst => {
                self.sync_idle_nodes();
                self.idle.sort_by(|a, b| {
                    let pa = a.nm.read(Signal::NodePowerWatts);
                    let pb = b.nm.read(Signal::NodePowerWatts);
                    pb.partial_cmp(&pa).expect("finite power")
                });
            }
        }
        let split_at = self.idle.len() - n;
        let mut nodes: Vec<NodeManager> = self
            .idle
            .split_off(split_at)
            .into_iter()
            .map(|s| s.nm)
            .collect();
        let workload = spec.app.workload(n);
        let total_work = workload.total_work();
        let job_seeds = self.seeds.subtree(&format!("job-{}", spec.id.0));
        let mut runner = JobRunner::new(&workload, n, &self.mpi, &job_seeds, ArbiterMode::Gated);
        if let Some(substep) = self.runner_max_substep {
            runner.set_max_substep(substep);
        }
        // Out-of-band enforcement when the job has no power-aware runtime:
        // the RM caps the nodes directly (paper Table 1, system layer:
        // "Out-of-band power and/or energy controls").
        if let (Some(w), crate::spec::AgentKind::None) = (budget_w, &spec.agent) {
            let per_node = w / n as f64;
            let now = self.now;
            for nm in nodes.iter_mut() {
                if matches!(self.stuck_caps.get(&nm.id().0), Some(&u) if now < u) {
                    self.stuck_cap_drops += 1;
                    continue;
                }
                nm.set_power_limit(now, per_node, SimDuration::from_millis(10));
            }
        }
        let (agents, endpoint) = spec.agent.make_agents_with_endpoint(budget_w, n);
        let start_energy_j: f64 = nodes
            .iter()
            .map(|nm| nm.read(Signal::NodeEnergyJoules))
            .sum();
        self.trace.record(
            self.now,
            "rm",
            "job_start",
            spec.id.0 as f64,
            format!(
                "{} on {} nodes, reservation {:.0} W, budget {:?}",
                spec.id, n, reservation_w, budget_w
            ),
        );
        // Same conservative estimate the backfill pass uses for unstarted
        // jobs: workload at reference speed with 50% margin.
        let predicted_end = self.now + SimDuration::from_secs_f64(total_work * 1.5);
        self.running.push(RunningJob {
            spec,
            nodes,
            runner,
            agents,
            start: self.now,
            start_energy_j,
            reservation_w,
            budget_w,
            paused: None,
            endpoint,
            last_sample: (0.0, start_energy_j),
            efficiency_ema: None,
            predicted_end,
        });
        self.invalidate_accounting();
        if matches!(self.policy.assignment, PowerAssignment::FairShare) {
            self.rebalance_fair_share();
        }
    }

    /// Whether `spec` could ever be admitted, even on a fully idle system
    /// (any legal node count within the mold range counts).
    fn feasible(&self, spec: &JobSpec) -> bool {
        let Some(largest) = spec.fit_nodes(self.total_nodes) else {
            return false;
        };
        let Some(budget) = self.policy.system_budget_w else {
            return true;
        };
        let rule = spec.app.node_rule();
        (spec.min_nodes..=largest)
            .filter(|&n| rule.allows(n))
            .any(|n| {
                let idle_rest = self.policy.node_idle_estimate_w * (self.total_nodes - n) as f64;
                let headroom = budget - idle_rest;
                match self.policy.assignment {
                    PowerAssignment::Unconstrained => {
                        self.policy.node_peak_estimate_w * n as f64 <= headroom
                    }
                    PowerAssignment::PerNodeCap(w) => w * n as f64 <= headroom,
                    PowerAssignment::FairShare => self.min_viable_node_w * n as f64 <= headroom,
                }
            })
    }

    /// Run the scheduling pass: resume paused jobs, FCFS head, then EASY
    /// backfill. Clears the dirty flag: every input the pass reads is
    /// event-stable, so until the next event a re-run cannot launch anything
    /// this run did not.
    fn schedule(&mut self) {
        self.resume_paused();
        // Launch from the head while it fits; reject jobs that can never run
        // (too wide for the machine or power-infeasible under the policy).
        while let Some(head) = self.queue.front() {
            if head.submit > self.now {
                break;
            }
            let head = head.clone();
            if !self.feasible(&head) {
                self.queue.pop_front();
                self.rejected.push(head.id);
                self.trace.record(
                    self.now,
                    "rm",
                    "job_reject",
                    head.id.0 as f64,
                    format!("{} infeasible under policy", head.id),
                );
                continue;
            }
            match self.try_admit(&head) {
                Some((n, r, b)) => {
                    self.queue.pop_front();
                    self.launch(head, n, r, b);
                }
                None => break,
            }
        }
        self.sched_dirty = false;
        if !self.backfill || self.queue.is_empty() {
            return;
        }
        // EASY backfill: jobs behind the head may start now if they are
        // projected to finish before the head's earliest possible start.
        let head_ready = self
            .queue
            .front()
            .map(|h| h.submit <= self.now)
            .unwrap_or(false);
        if !head_ready {
            return;
        }
        // Head's earliest start ≈ when enough running jobs have finished,
        // by their launch-time completion estimates.
        let head = self.queue.front().expect("nonempty").clone();
        let mut avail = self.idle.len();
        let mut shadow = SimTime::MAX;
        for job in &self.running {
            if head.fit_nodes(avail).is_some() {
                break;
            }
            avail += job.nodes.len();
            shadow = job.predicted_end;
        }
        if head.fit_nodes(self.idle.len()).is_some() {
            return; // head only blocked on power; skip backfill this pass
        }
        let mut i = 1; // skip the head
        let mut examined = 0usize;
        while i < self.queue.len() && examined < self.backfill_depth {
            let cand = self.queue[i].clone();
            examined += 1;
            if cand.submit > self.now {
                i += 1;
                continue;
            }
            // Conservative completion estimate for an unstarted job: derive
            // from its workload at reference speed with 50% margin.
            let est = {
                let n = cand.fit_nodes(self.idle.len());
                match n {
                    Some(n) => {
                        let w = self.cached_total_work(&cand, n);
                        self.now + SimDuration::from_secs_f64(w * 1.5)
                    }
                    None => SimTime::MAX,
                }
            };
            if est <= shadow {
                if let Some((n, r, b)) = self.try_admit(&cand) {
                    self.queue.remove(i);
                    self.trace.record(
                        self.now,
                        "rm",
                        "backfill",
                        cand.id.0 as f64,
                        format!("{}", cand.id),
                    );
                    self.launch(cand, n, r, b);
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Measure per-job efficiency and push renegotiated budgets through the
    /// GEOPM endpoints (the §3.1.4 downward translation, live).
    fn dynamic_reassign(&mut self) {
        let Some(budget) = self.policy.system_budget_w else {
            return;
        };
        // Update efficiency EMAs from (work, energy) deltas.
        for job in self.running.iter_mut().filter(|j| j.paused.is_none()) {
            let work = job.runner.work_done_total();
            let energy: f64 = job
                .nodes
                .iter()
                .map(|nm| nm.read(Signal::NodeEnergyJoules))
                .sum();
            let (w0, e0) = job.last_sample;
            job.last_sample = (work, energy);
            let (dw, de) = (work - w0, energy - e0);
            if de > 1e-6 && dw >= 0.0 {
                let eff = dw / de;
                job.efficiency_ema = Some(match job.efficiency_ema {
                    Some(prev) => 0.6 * prev + 0.4 * eff,
                    None => eff,
                });
            }
        }
        // Re-divide over endpoint-carrying jobs with known efficiency.
        let idle_w = self.policy.node_idle_estimate_w * self.idle.len() as f64;
        let fixed: f64 = self
            .running
            .iter()
            .map(|j| match (&j.endpoint, j.efficiency_ema, j.paused) {
                (Some(_), Some(_), None) => 0.0,
                _ if j.paused.is_some() => self.policy.node_idle_estimate_w * j.nodes.len() as f64,
                _ => j.reservation_w,
            })
            .sum();
        let divisible = budget - idle_w - fixed;
        let weights: Vec<(usize, f64)> = self
            .running
            .iter()
            .enumerate()
            .filter_map(|(i, j)| match (&j.endpoint, j.efficiency_ema, j.paused) {
                (Some(_), Some(eff), None) => Some((i, j.nodes.len() as f64 * eff.max(1e-12))),
                _ => None,
            })
            .collect();
        let total_weight: f64 = weights.iter().map(|(_, w)| w).sum();
        if weights.is_empty() || total_weight <= 0.0 || divisible <= 0.0 {
            return;
        }
        let now = self.now;
        for (i, w) in weights {
            let job = &mut self.running[i];
            let share = (divisible * w / total_weight).max(balancer_floor_w(job.nodes.len()));
            job.reservation_w = share;
            job.budget_w = Some(share);
            let ep = job.endpoint.as_ref().expect("endpoint-carrying");
            ep.send(PolicyUpdate {
                policy: GeopmPolicy::PowerBalancer {
                    job_budget_w: share,
                },
            });
            self.trace.record(
                now,
                "rm",
                "power_reassign",
                share,
                format!("{} budget -> {share:.0} W", job.spec.id),
            );
        }
        // New reservations change admission headroom: re-plan at this tick.
        self.sched_dirty = true;
        self.invalidate_accounting();
    }

    /// Pop and apply every event due at or before the current time, in
    /// (time, kind, insertion) order.
    fn fire_due_events(&mut self) {
        while let Some(ev) = self.events.pop_due(self.now) {
            // The per-tick oracle gives every already-submitted job its
            // launch decision in the *previous* tick's end-of-tick
            // scheduling pass — before an unfired budget change or fault
            // due at or before this instant applies at tick top. The lean
            // engine may have skipped that pass (the arrival had not fired,
            // so the dirty flag was clear), so replay it before applying
            // any state-mutating event or the decision would see the new
            // budget / degraded capacity instead of the old state.
            if matches!(
                ev.kind,
                EventKind::BudgetChange { .. }
                    | EventKind::NodeFail { .. }
                    | EventKind::NodeRecover { .. }
                    | EventKind::JobFail(_)
                    | EventKind::CapStick { .. }
            ) && self.queue.iter().any(|j| j.submit <= self.now)
            {
                self.schedule();
            }
            match ev.kind {
                EventKind::BudgetChange { budget_w, response } => {
                    self.set_system_budget(budget_w, response);
                }
                EventKind::NodeFail { node } => self.fail_node(node),
                EventKind::NodeRecover { node } => self.recover_node(node),
                EventKind::JobFail(id) => self.fail_job(id),
                EventKind::CapStick { node, until } => {
                    self.stuck_caps.insert(node, until);
                    self.trace.record(
                        self.now,
                        "rm",
                        "cap_stick",
                        node as f64,
                        format!("node{node} cap actuator stuck until {until:?}"),
                    );
                }
                EventKind::TelemetryDropout { until } => {
                    self.telemetry_dropouts += 1;
                    self.telemetry_blackout_until = self.telemetry_blackout_until.max(until);
                    self.trace.record(
                        self.now,
                        "rm",
                        "telemetry_dropout",
                        self.telemetry_dropouts as f64,
                        format!("aggregation tree dropping samples until {until:?}"),
                    );
                }
                EventKind::Arrival(_) => {
                    self.sched_dirty = true;
                }
                // Bookkeeping markers: their pop advances the heap cursor.
                EventKind::Tick | EventKind::Completion(_) => {}
            }
        }
    }

    /// Apply a node crash: an idle node powers off into the down pool; a
    /// node inside a running job kills the job (requeue under the retry
    /// budget). Unknown or already-down node ids are no-ops, so fault plans
    /// can over-schedule safely.
    fn fail_node(&mut self, node: usize) {
        if self.down.iter().any(|s| s.nm.id().0 == node) {
            return;
        }
        let (now, quantum) = (self.now, self.last_quantum);
        if let Some(pos) = self.idle.iter().position(|s| s.nm.id().0 == node) {
            let mut slot = self.idle.remove(pos);
            // Bring the deferred idle physics current before the power-off:
            // the energy consumed up to the crash instant is real.
            Self::catch_up_idle(&mut slot, now, quantum);
            self.trace.record(
                now,
                "rm",
                "node_fail",
                node as f64,
                format!("node{node} failed while idle"),
            );
            self.down.push(slot);
            self.sched_dirty = true;
            self.invalidate_accounting();
            return;
        }
        let Some(pos) = self
            .running
            .iter()
            .position(|j| j.nodes.iter().any(|nm| nm.id().0 == node))
        else {
            return;
        };
        let job = self.running.remove(pos);
        self.trace.record(
            now,
            "rm",
            "node_fail",
            node as f64,
            format!("node{node} failed under {}", job.spec.id),
        );
        self.kill_running(job, Some(node));
    }

    /// Reboot a failed node: knobs reset, idle physics restarts at the
    /// current instant (the node drew nothing while down).
    fn recover_node(&mut self, node: usize) {
        let Some(pos) = self.down.iter().position(|s| s.nm.id().0 == node) else {
            return;
        };
        let mut slot = self.down.remove(pos);
        slot.nm.reset_all_knobs();
        slot.synced_to = self.now;
        self.trace.record(
            self.now,
            "rm",
            "node_recover",
            node as f64,
            format!("node{node} rebooted into the idle pool"),
        );
        self.idle.push(slot);
        self.sched_dirty = true;
        self.invalidate_accounting();
    }

    /// Apply a software abort of a running job (no-op if it is not running).
    fn fail_job(&mut self, id: JobId) {
        let Some(pos) = self.running.iter().position(|j| j.spec.id == id) else {
            return;
        };
        let job = self.running.remove(pos);
        self.kill_running(job, None);
    }

    /// Tear down a killed job: surviving nodes return to the idle pool with
    /// knobs reset, a crashed node (if any) powers off into the down pool,
    /// and the spec is requeued or permanently failed by its retry budget.
    fn kill_running(&mut self, job: RunningJob, crashed: Option<usize>) {
        let id = job.spec.id;
        self.trace.record(
            self.now,
            "rm",
            "job_kill",
            id.0 as f64,
            format!("{id} killed ({} nodes, work lost)", job.nodes.len()),
        );
        for mut nm in job.nodes {
            if Some(nm.id().0) == crashed {
                // Knobs reset at reboot, not here: the node is dead.
                self.down.push(IdleSlot {
                    nm,
                    synced_to: self.now,
                });
            } else {
                // The runtime never ran its on_job_end: reset everything.
                nm.reset_all_knobs();
                self.idle.push(IdleSlot {
                    nm,
                    synced_to: self.now,
                });
            }
        }
        self.sched_dirty = true;
        self.invalidate_accounting();
        self.requeue_or_fail(job.spec);
    }

    /// Requeue a killed job if its retry budget allows, else record it as
    /// permanently failed. Requeues re-enter through the event heap (an
    /// arrival at the current instant) so both drain engines see them
    /// identically.
    fn requeue_or_fail(&mut self, spec: JobSpec) {
        let attempts = self.retries.get(&spec.id.0).copied().unwrap_or(0);
        let id = spec.id;
        if attempts < self.max_job_retries {
            self.retries.insert(id.0, attempts + 1);
            self.trace.record(
                self.now,
                "rm",
                "job_requeue",
                id.0 as f64,
                format!(
                    "{id} requeued, attempt {}/{}",
                    attempts + 1,
                    self.max_job_retries
                ),
            );
            self.events.push(self.now, EventKind::Arrival(id));
            self.queue.push_back(spec);
        } else {
            self.failed.push(id);
            self.trace.record(
                self.now,
                "rm",
                "job_fail",
                id.0 as f64,
                format!(
                    "{id} failed permanently: retry budget {} exhausted",
                    self.max_job_retries
                ),
            );
        }
    }

    /// Advance the whole system by `quantum` (the per-tick oracle step).
    pub fn step(&mut self, quantum: SimDuration) {
        self.step_impl(quantum, false);
    }

    /// One physics tick shared by both drain engines. `lean` is the
    /// event-driven mode: the scheduling pass runs only when the dirty flag
    /// is set, idle-node physics is deferred, and a tick marker enters the
    /// event heap. Everything that touches node or job state is identical.
    fn step_impl(&mut self, quantum: SimDuration, lean: bool) {
        self.last_quantum = quantum;
        self.fire_due_events();
        if !lean || self.sched_dirty {
            self.schedule();
        }
        if let Some(period) = self.reassign_period {
            if self.now >= self.next_reassign {
                self.dynamic_reassign();
                self.next_reassign = self.now + period;
            }
        }
        let end = self.now + quantum;
        // Advance running jobs (paused jobs idle their nodes instead).
        for job in &mut self.running {
            if job.paused.is_some() {
                for nm in job.nodes.iter_mut() {
                    nm.step_idle(self.now, quantum);
                }
                continue;
            }
            let mut agent_refs: Vec<&mut dyn RuntimeAgent> = job
                .agents
                .iter_mut()
                .map(|b| b.as_mut() as &mut dyn RuntimeAgent)
                .collect();
            let reached = job
                .runner
                .advance(self.now, end, &mut job.nodes, &mut agent_refs);
            // Nodes idle out the remainder of the quantum after completion.
            if job.runner.is_complete() && reached < end {
                let mut t = reached;
                for nm in job.nodes.iter_mut() {
                    nm.step_idle(t, end.since(t));
                }
                t = end;
                let _ = t;
            }
            self.allocated_node_seconds += job.nodes.len() as f64 * quantum.as_secs_f64();
        }
        if lean {
            // Idle physics deferred until observed; mark the executed tick.
            self.events.push(end, EventKind::Tick);
        } else {
            for slot in &mut self.idle {
                Self::catch_up_idle(slot, self.now, quantum);
                slot.nm.step_idle(self.now, quantum);
                slot.synced_to = end;
            }
        }
        self.now = end;
        self.collect_completions();
        // Post-completion scheduling so freed nodes are reused promptly.
        if !lean || self.sched_dirty {
            self.schedule();
        }
    }

    /// Move completed jobs from the running set to the records, returning
    /// their nodes to the idle pool.
    fn collect_completions(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].runner.is_complete() {
                let job = self.running.remove(i);
                let energy_now: f64 = job
                    .nodes
                    .iter()
                    .map(|nm| nm.read(Signal::NodeEnergyJoules))
                    .sum();
                let end_time = job.runner.completed_at().expect("complete");
                self.trace.record(
                    end_time,
                    "rm",
                    "job_end",
                    job.spec.id.0 as f64,
                    format!("{}", job.spec.id),
                );
                self.events
                    .push(self.now, EventKind::Completion(job.spec.id));
                self.records.push(JobRecord {
                    id: job.spec.id,
                    submit: job.spec.submit,
                    start: job.start,
                    end: end_time,
                    nodes: job.nodes.len(),
                    power_budget_w: job.budget_w,
                    energy_j: energy_now - job.start_energy_j,
                    work: job
                        .runner
                        .result(&job.nodes)
                        .map(|r| r.total_work)
                        .unwrap_or(0.0),
                });
                // Return nodes with all knobs at defaults (agents restored
                // their own, but RM-applied caps and any leftovers must go).
                for mut nm in job.nodes {
                    nm.reset_all_knobs();
                    self.idle.push(IdleSlot {
                        nm,
                        synced_to: self.now,
                    });
                }
                self.sched_dirty = true;
                self.invalidate_accounting();
            } else {
                i += 1;
            }
        }
    }

    /// First tick-grid point at or after `t`, anchored at the current time
    /// (which always sits on the drain's grid).
    fn grid_ceil(&self, t: SimTime, quantum: SimDuration) -> SimTime {
        if t <= self.now {
            return self.now;
        }
        let delta = t.since(self.now).as_micros();
        let q = quantum.as_micros();
        SimTime::from_micros(self.now.as_micros() + delta.div_ceil(q) * q)
    }

    /// Jump the clock to `target` (a grid point) without physics: nothing is
    /// running, idle nodes catch up lazily, and the per-tick reassignment
    /// bookkeeping is replayed arithmetically (a reassignment pass with no
    /// running jobs is a no-op, so only `next_reassign` needs updating).
    fn fast_forward(&mut self, target: SimTime, quantum: SimDuration) {
        debug_assert!(self.running.is_empty());
        if let Some(period) = self.reassign_period {
            loop {
                let due = self.next_reassign.max(self.now);
                let fire = self.grid_ceil(due, quantum);
                if fire >= target {
                    break;
                }
                self.next_reassign = fire + period;
            }
        }
        self.now = target;
    }

    /// Event-driven drain to `horizon` (no horizon grace pass): process
    /// events in time order, tick only while jobs run or a pass is pending,
    /// and leap over empty stretches. Stops once the queue and running set
    /// drain or the clock reaches `horizon`.
    pub fn run_until(&mut self, quantum: SimDuration, horizon: SimTime) {
        assert!(!quantum.is_zero(), "quantum must be positive");
        self.last_quantum = quantum;
        loop {
            if self.queue.is_empty() && self.running.is_empty() {
                break;
            }
            if self.now >= horizon {
                break;
            }
            self.fire_due_events();
            if self.sched_dirty && self.running.is_empty() {
                // The oracle's end-of-tick scheduling pass: decide freshly
                // due arrivals at this instant before committing to a
                // physics tick. When the pass drains the queue without
                // launching (a permanent rejection), the oracle's loop exits
                // here without another tick — so must this one.
                self.schedule();
                if self.queue.is_empty() && self.running.is_empty() {
                    break;
                }
            }
            if self.sched_dirty || !self.running.is_empty() {
                self.step_impl(quantum, true);
                continue;
            }
            // Nothing running and nothing re-plannable: leap to the next
            // event's tick (or tick out the horizon for a stuck head, as the
            // oracle would spin).
            let target = match self.events.peek_time() {
                Some(t) => self
                    .grid_ceil(t, quantum)
                    .min(self.grid_ceil(horizon, quantum)),
                None => self.grid_ceil(horizon, quantum),
            };
            if target <= self.now {
                self.step_impl(quantum, true);
                continue;
            }
            self.fast_forward(target, quantum);
        }
    }

    /// Run until all submitted jobs complete or `horizon` passes
    /// (event-driven; a thin shim over [`Scheduler::run_until`] plus the
    /// horizon grace pass).
    pub fn run_until_drained(&mut self, quantum: SimDuration, horizon: SimTime) {
        self.run_until(quantum, horizon);
        self.horizon_grace();
    }

    /// Replay the pending event schedule of an *idle* scheduler up to (but
    /// excluding) `horizon`.
    ///
    /// The drain loops stop as soon as the last job completes, which can
    /// strand already-scheduled operator events — node reboots, budget
    /// restores, telemetry-dropout expiries — in the heap. A real site
    /// keeps operating after its queue empties; this replays exactly that
    /// tail, jumping the clock event-to-event with no physics in between
    /// (nothing is running, so there is nothing to integrate). The E11
    /// chaos experiment calls this before checking its recovery SLO so a
    /// reboot scheduled after the final completion still lands.
    pub fn flush_events_until(&mut self, horizon: SimTime) {
        debug_assert!(
            self.running.is_empty(),
            "flush_events_until is for drained schedulers"
        );
        while let Some(t) = self.events.peek_time() {
            if t >= horizon {
                break;
            }
            if t > self.now {
                self.now = t;
            }
            self.fire_due_events();
        }
    }

    /// Reference per-tick drain: the naive loop the event-driven engine must
    /// match byte-for-byte. Kept as the equivalence oracle for tests and as
    /// documentation of the baseline cost model.
    pub fn run_until_drained_per_tick(&mut self, quantum: SimDuration, horizon: SimTime) {
        while (!self.queue.is_empty() || !self.running.is_empty()) && self.now < horizon {
            self.step_impl(quantum, false);
        }
        self.horizon_grace();
    }

    /// Record jobs whose physics finishes exactly at the drain horizon.
    ///
    /// The drain loops stop at `now >= horizon`, so a job whose remaining
    /// work rounds to the horizon boundary (the integrator quantizes
    /// substeps to whole microseconds, rounding up) would sit complete-but-
    /// uncollected and its record would be dropped. One microsecond of extra
    /// physics collects exactly that class; jobs genuinely unfinished at the
    /// horizon stay unrecorded, and a drain that finished early is a no-op.
    fn horizon_grace(&mut self) {
        if self.running.is_empty() || self.running.iter().all(|j| j.paused.is_some()) {
            return;
        }
        let eps = SimDuration::from_micros(1);
        let end = self.now + eps;
        for job in &mut self.running {
            if job.paused.is_some() {
                continue;
            }
            let mut agent_refs: Vec<&mut dyn RuntimeAgent> = job
                .agents
                .iter_mut()
                .map(|b| b.as_mut() as &mut dyn RuntimeAgent)
                .collect();
            job.runner
                .advance(self.now, end, &mut job.nodes, &mut agent_refs);
            self.allocated_node_seconds += job.nodes.len() as f64 * eps.as_secs_f64();
        }
        self.now = end;
        self.collect_completions();
    }

    /// Aggregate metrics at the current time.
    pub fn metrics(&mut self) -> SchedulerMetrics {
        let hours = self.now.as_secs_f64() / 3600.0;
        let completed = self.records.len();
        let mean_wait_s = if completed == 0 {
            0.0
        } else {
            self.records
                .iter()
                .map(|r| r.wait().as_secs_f64())
                .sum::<f64>()
                / completed as f64
        };
        let capacity = self.total_nodes as f64 * self.now.as_secs_f64();
        let system_energy_j = self.system_energy_j();
        SchedulerMetrics {
            completed,
            jobs_per_hour: if hours > 0.0 {
                completed as f64 / hours
            } else {
                0.0
            },
            mean_wait_s,
            utilization: if capacity > 0.0 {
                self.allocated_node_seconds / capacity
            } else {
                0.0
            },
            system_energy_j,
            mean_system_power_w: if self.now.as_secs_f64() > 0.0 {
                system_energy_j / self.now.as_secs_f64()
            } else {
                0.0
            },
            total_work: self.records.iter().map(|r| r.work).sum(),
        }
    }
}

/// Per-job power floor for balancer budgets (`Geopm::MIN_NODE_CAP_W` per node).
fn balancer_floor_w(n_nodes: usize) -> f64 {
    pstack_runtime::Geopm::MIN_NODE_CAP_W * n_nodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    use pstack_apps::synthetic::{Profile, SyntheticApp};
    use pstack_hwmodel::{NodeConfig, VariationModel};
    use std::sync::Arc;

    fn sched(n_nodes: usize, policy: SystemPowerPolicy) -> Scheduler {
        let seeds = SeedTree::new(42);
        let nodes = NodeManager::fleet(
            n_nodes,
            NodeConfig::server_default(),
            &VariationModel::none(),
            &seeds,
        );
        Scheduler::new(nodes, policy, seeds.subtree("sched"))
    }

    fn small_job(id: u64, nodes: usize, submit_s: u64) -> JobSpec {
        JobSpec::rigid(
            id,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 20.0, 10)),
            nodes,
            SimTime::from_secs(submit_s),
        )
    }

    #[test]
    fn runs_single_job_to_completion() {
        let mut s = sched(4, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 2, 0));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(600));
        assert_eq!(s.records().len(), 1);
        let r = &s.records()[0];
        assert_eq!(r.nodes, 2);
        assert!(r.runtime().as_secs_f64() > 5.0);
        assert!(r.energy_j > 0.0);
        assert_eq!(s.running(), 0);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn fcfs_order_without_contention() {
        let mut s = sched(8, SystemPowerPolicy::unlimited());
        for id in 1..=4 {
            s.submit(small_job(id, 2, 0));
        }
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 4);
        // All fit simultaneously: starts within the first quantum.
        for r in s.records() {
            assert!(r.wait().as_secs_f64() <= 1.0, "{:?}", r);
        }
    }

    #[test]
    fn node_contention_queues_jobs() {
        let mut s = sched(2, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 2, 0));
        s.submit(small_job(2, 2, 0));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 2);
        let r2 = s.records().iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            r2.wait().as_secs_f64() > 5.0,
            "second job must wait: {:?}",
            r2
        );
    }

    #[test]
    fn power_budget_limits_concurrency() {
        // 8 nodes available, but power for only ~2 at peak (450 W each):
        // 2×450 + 6×130 idle = 1680.
        let policy = SystemPowerPolicy::budgeted(1700.0, PowerAssignment::Unconstrained);
        let mut s = sched(8, policy);
        for id in 1..=4 {
            s.submit(small_job(id, 1, 0));
        }
        s.step(SimDuration::from_secs(1));
        assert!(
            s.running() <= 2,
            "power admission must throttle: {} running",
            s.running()
        );
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 4);
    }

    #[test]
    fn fair_share_admits_more_jobs_at_lower_power() {
        // Same tight budget, but FairShare capping lets more jobs in.
        let tight = 8.0 * 250.0;
        let uncon = {
            let mut s = sched(
                8,
                SystemPowerPolicy::budgeted(tight, PowerAssignment::Unconstrained),
            );
            for id in 1..=8 {
                s.submit(small_job(id, 1, 0));
            }
            s.step(SimDuration::from_secs(1));
            s.running()
        };
        let fair = {
            let mut s = sched(
                8,
                SystemPowerPolicy::budgeted(tight, PowerAssignment::FairShare),
            );
            for id in 1..=8 {
                s.submit(small_job(id, 1, 0));
            }
            s.step(SimDuration::from_secs(1));
            s.running()
        };
        assert!(fair > uncon, "fair-share admits more: {fair} vs {uncon}");
    }

    #[test]
    fn per_node_cap_is_enforced_out_of_band() {
        let policy = SystemPowerPolicy::budgeted(10_000.0, PowerAssignment::PerNodeCap(280.0));
        let mut s = sched(2, policy);
        s.submit(small_job(1, 2, 0));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        let r = &s.records()[0];
        let mean_node_w = r.energy_j / r.runtime().as_secs_f64() / r.nodes as f64;
        assert!(
            mean_node_w < 280.0 * 1.10,
            "node caps must bind: {mean_node_w} W/node"
        );
    }

    #[test]
    fn backfill_improves_short_job_wait() {
        // Head job needs 4 nodes (never available until the long job ends);
        // a 1-node short job behind it should backfill.
        let long = JobSpec::rigid(
            1,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 120.0, 10)),
            3,
            SimTime::ZERO,
        );
        let wide = JobSpec::rigid(
            2,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 20.0, 10)),
            4,
            SimTime::ZERO,
        );
        let short = JobSpec::rigid(
            3,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 5.0, 5)),
            1,
            SimTime::ZERO,
        );
        let run = |backfill: bool| {
            let mut s = sched(4, SystemPowerPolicy::unlimited());
            if !backfill {
                s = s.without_backfill();
            }
            s.submit(long.clone());
            s.submit(wide.clone());
            s.submit(short.clone());
            s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
            s.records()
                .iter()
                .find(|r| r.id == JobId(3))
                .unwrap()
                .wait()
                .as_secs_f64()
        };
        let with_bf = run(true);
        let without_bf = run(false);
        assert!(
            with_bf < without_bf,
            "backfill should cut the short job's wait: {with_bf} vs {without_bf}"
        );
    }

    #[test]
    fn moldable_job_takes_what_is_free() {
        let mut s = sched(6, SystemPowerPolicy::unlimited());
        let j = JobSpec::moldable(
            1,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 20.0, 10)),
            2,
            16,
            SimTime::ZERO,
        );
        s.submit(j);
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records()[0].nodes, 6);
    }

    #[test]
    fn metrics_accounting() {
        let mut s = sched(4, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 2, 0));
        s.submit(small_job(2, 2, 0));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        let m = s.metrics();
        assert_eq!(m.completed, 2);
        assert!(m.jobs_per_hour > 0.0);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert!(m.system_energy_j > 0.0);
        assert!(m.total_work > 0.0);
        // Trace has matching start/end events.
        assert_eq!(s.trace().of_kind("job_start").count(), 2);
        assert_eq!(s.trace().of_kind("job_end").count(), 2);
    }

    #[test]
    fn budget_drop_pauses_and_restores_resumes() {
        // Two 1-node jobs under a loose budget; the budget then collapses so
        // only one job's reservation fits.
        let policy = SystemPowerPolicy::budgeted(2000.0, PowerAssignment::Unconstrained);
        let mut s = sched(2, policy);
        s.submit(small_job(1, 1, 0));
        s.submit(small_job(2, 1, 0));
        s.step(SimDuration::from_secs(1));
        assert_eq!(s.running(), 2);
        // Emergency: 700 W covers one peak job (450) + nothing else at peak.
        s.set_system_budget(Some(700.0), EmergencyResponse::PauseJobs);
        assert_eq!(s.trace().of_kind("job_pause").count(), 1);
        // Paused jobs make no progress: run a while, only one job finishes.
        for _ in 0..120 {
            s.step(SimDuration::from_secs(1));
            if s.records().len() == 1 {
                break;
            }
        }
        assert_eq!(
            s.records().len(),
            1,
            "exactly one job proceeds while paused"
        );
        // Restore the budget: the paused job resumes and completes.
        s.set_system_budget(Some(2000.0), EmergencyResponse::PauseJobs);
        assert!(s.trace().of_kind("job_resume").count() >= 1);
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 2);
    }

    #[test]
    fn budget_drop_with_cap_tightening_keeps_all_running() {
        let policy = SystemPowerPolicy::budgeted(2000.0, PowerAssignment::Unconstrained);
        let mut s = sched(2, policy);
        s.submit(small_job(1, 1, 0));
        s.submit(small_job(2, 1, 0));
        s.step(SimDuration::from_secs(1));
        assert_eq!(s.running(), 2);
        s.set_system_budget(Some(700.0), EmergencyResponse::TightenCaps);
        assert_eq!(s.trace().of_kind("job_pause").count(), 0);
        // Both jobs keep running (slower) and the system respects the budget.
        let e0 = s.system_energy_j();
        let t0 = s.now();
        for _ in 0..30 {
            s.step(SimDuration::from_secs(1));
        }
        let avg = (s.system_energy_j() - e0) / s.now().since(t0).as_secs_f64();
        assert!(avg <= 700.0 * 1.10, "tightened system draws {avg} W");
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(7200));
        assert_eq!(s.records().len(), 2);
    }

    #[test]
    fn coolest_first_selection_picks_cool_nodes() {
        use pstack_hwmodel::VariationModel;
        let seeds = SeedTree::new(31);
        // Gradient 22..40 °C across 6 nodes; a 2-node job should land on the
        // coolest pair (node ids 0 and 1).
        let nodes = NodeManager::fleet_with_thermal_gradient(
            6,
            NodeConfig::server_default(),
            &VariationModel::none(),
            &seeds,
            22.0,
            40.0,
        );
        let mut s = Scheduler::new(nodes, SystemPowerPolicy::unlimited(), seeds.subtree("s"))
            .with_node_selection(NodeSelection::CoolestFirst);
        s.submit(small_job(1, 2, 0));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 1);
        // The remaining idle pool must hold the four hottest nodes.
        let mut idle_temps: Vec<f64> = s.idle_temperatures().into_iter().collect();
        idle_temps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            idle_temps[0] > 24.0,
            "coolest nodes (22.0, 25.6 °C ambient) went to the job: {idle_temps:?}"
        );
    }

    #[test]
    fn dynamic_reassignment_steers_watts_to_efficient_jobs() {
        use crate::spec::AgentKind;
        use pstack_runtime::GeopmPolicy;
        // Two 2-node balancer jobs under a tight budget: one compute-bound
        // (converts watts to work), one memory-bound (saturates).
        let budget = 4.0 * 300.0 + 0.0;
        let policy = SystemPowerPolicy::budgeted(budget, PowerAssignment::FairShare);
        let mut s = sched(4, policy).with_dynamic_power_reassignment(SimDuration::from_secs(5));
        let balancer = AgentKind::Geopm(GeopmPolicy::PowerBalancer { job_budget_w: 1.0 });
        s.submit(
            JobSpec::rigid(
                1,
                Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 60.0, 20)),
                2,
                SimTime::ZERO,
            )
            .with_agent(balancer.clone()),
        );
        s.submit(
            JobSpec::rigid(
                2,
                Arc::new(SyntheticApp::new(Profile::MemoryHeavy, 60.0, 20)),
                2,
                SimTime::ZERO,
            )
            .with_agent(balancer),
        );
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 2);
        // Reassignments happened and eventually favored the compute job.
        let reassigns: Vec<_> = s.trace().of_kind("power_reassign").collect();
        assert!(
            reassigns.len() >= 2,
            "reassignment events: {}",
            reassigns.len()
        );
        let last_job1 = reassigns
            .iter()
            .rev()
            .find(|e| e.detail.starts_with("job1"))
            .expect("job1 reassigned");
        let last_job2 = reassigns
            .iter()
            .rev()
            .find(|e| e.detail.starts_with("job2"))
            .expect("job2 reassigned");
        assert!(
            last_job1.value > last_job2.value,
            "compute job should end with the larger budget: {} vs {}",
            last_job1.value,
            last_job2.value
        );
    }

    #[test]
    fn cancellation_frees_resources() {
        let mut s = sched(2, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 2, 0));
        s.submit(small_job(2, 2, 0));
        s.step(SimDuration::from_secs(1));
        assert_eq!(s.running(), 1);
        assert_eq!(s.queued(), 1);
        // Cancel the running job: the queued one takes its place.
        assert!(s.cancel(JobId(1)));
        s.step(SimDuration::from_secs(1));
        assert_eq!(s.running(), 1);
        assert_eq!(s.queued(), 0);
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 1, "only job 2 completes");
        assert_eq!(s.records()[0].id, JobId(2));
        // Cancelling an unknown job reports false.
        assert!(!s.cancel(JobId(99)));
        // Cancelling a queued job drops it silently.
        let mut s2 = sched(2, SystemPowerPolicy::unlimited());
        s2.submit(small_job(1, 2, 0));
        s2.submit(small_job(2, 2, 0));
        s2.step(SimDuration::from_secs(1));
        assert!(s2.cancel(JobId(2)));
        s2.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s2.records().len(), 1);
    }

    #[test]
    fn cancelled_job_leaves_no_knob_residue() {
        use crate::spec::AgentKind;
        use pstack_runtime::CountdownMode;
        // A COUNTDOWN job lowers frequency via the MPI override; cancelling
        // mid-run must not leak that state to the next tenant of the nodes.
        let mut s = sched(2, SystemPowerPolicy::unlimited());
        s.submit(
            JobSpec::rigid(
                1,
                Arc::new(SyntheticApp::new(Profile::CommHeavy, 60.0, 30)),
                2,
                SimTime::ZERO,
            )
            .with_agent(AgentKind::Countdown(CountdownMode::WaitAndCopy)),
        );
        for _ in 0..5 {
            s.step(SimDuration::from_secs(1));
        }
        assert!(s.cancel(JobId(1)));
        // Returned nodes: no cap, no freq limit, no override, top uncore,
        // full duty (observable via the signal surface + a probe step).
        s.submit(small_job(2, 2, 0));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        let r = s.records().iter().find(|r| r.id == JobId(2)).unwrap();
        // A residue-free compute job at full tilt draws well above 350 W/node.
        let mean_node_w = r.energy_j / r.runtime().as_secs_f64() / r.nodes as f64;
        assert!(
            mean_node_w > 350.0,
            "knob residue suppressed the next job: {mean_node_w} W/node"
        );
    }

    #[test]
    fn future_submissions_wait_for_their_time() {
        let mut s = sched(4, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 1, 100));
        s.step(SimDuration::from_secs(1));
        assert_eq!(s.running(), 0, "job must not start before submit time");
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert!(s.records()[0].start >= SimTime::from_secs(100));
    }

    #[test]
    fn horizon_boundary_completion_is_recorded() {
        // Find the exact completion time, then re-run with the horizon cut
        // to that boundary: the record must survive in both engines across
        // quanta (the off-by-one class this locks in).
        let full = {
            let mut s = sched(2, SystemPowerPolicy::unlimited());
            s.submit(small_job(1, 2, 0));
            s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
            s.records()[0].end
        };
        for quantum_ms in [250u64, 1000, 3000] {
            let q = SimDuration::from_millis(quantum_ms);
            let mut ev = sched(2, SystemPowerPolicy::unlimited());
            ev.submit(small_job(1, 2, 0));
            ev.run_until_drained(q, full);
            assert_eq!(
                ev.records().len(),
                1,
                "event engine drops a horizon-boundary completion at q={quantum_ms}ms"
            );
            assert!(ev.records()[0].end <= full + SimDuration::from_micros(1));
            let mut pt = sched(2, SystemPowerPolicy::unlimited());
            pt.submit(small_job(1, 2, 0));
            pt.run_until_drained_per_tick(q, full);
            assert_eq!(
                pt.records().len(),
                1,
                "per-tick engine drops a horizon-boundary completion at q={quantum_ms}ms"
            );
        }
    }

    #[test]
    fn scheduled_budget_change_matches_manual_call() {
        // A budget cut scheduled through the event heap must land at the
        // same tick as a manual set_system_budget between steps.
        let policy = || SystemPowerPolicy::budgeted(2000.0, PowerAssignment::Unconstrained);
        let mut manual = sched(2, policy());
        manual.submit(small_job(1, 1, 0));
        manual.submit(small_job(2, 1, 0));
        for _ in 0..5 {
            manual.step(SimDuration::from_secs(1));
        }
        manual.set_system_budget(Some(700.0), EmergencyResponse::PauseJobs);
        manual.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));

        let mut scheduled = sched(2, policy());
        scheduled.submit(small_job(1, 1, 0));
        scheduled.submit(small_job(2, 1, 0));
        scheduled.schedule_budget_change(
            SimTime::from_secs(5),
            Some(700.0),
            EmergencyResponse::PauseJobs,
        );
        scheduled.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));

        assert_eq!(manual.records().len(), scheduled.records().len());
        for (a, b) in manual.records().iter().zip(scheduled.records()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.end, b.end);
            assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        }
        assert_eq!(
            scheduled.trace().of_kind("job_pause").count(),
            1,
            "scheduled cut must pause exactly as the manual one"
        );
    }

    #[test]
    fn idle_node_fail_and_recover_cycle_capacity() {
        let mut s = sched(4, SystemPowerPolicy::unlimited());
        // Fail two idle nodes before the wide job arrives: it must wait.
        s.schedule_node_fail(SimTime::from_secs(1), 0);
        s.schedule_node_fail(SimTime::from_secs(1), 1);
        s.schedule_node_recover(SimTime::from_secs(120), 0);
        s.schedule_node_recover(SimTime::from_secs(120), 1);
        s.submit(small_job(1, 4, 5));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 1, "job runs once capacity recovers");
        let r = &s.records()[0];
        assert!(
            r.start >= SimTime::from_secs(120),
            "start {:?} must wait for the recovery",
            r.start
        );
        assert_eq!(s.down_nodes(), 0);
        assert_eq!(s.alive_nodes(), 4);
        assert!(s.failed().is_empty());
    }

    #[test]
    fn node_fail_under_job_requeues_within_retry_budget() {
        let mut s = sched(2, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 2, 0));
        // Crash a node mid-run, recover it shortly after.
        s.schedule_node_fail(SimTime::from_secs(3), 0);
        s.schedule_node_recover(SimTime::from_secs(10), 0);
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 1, "killed job must requeue and finish");
        assert!(s.failed().is_empty());
        assert_eq!(s.trace().of_kind("job_kill").count(), 1);
        assert_eq!(s.trace().of_kind("job_requeue").count(), 1);
        let r = &s.records()[0];
        assert_eq!(r.submit, SimTime::ZERO, "requeue keeps the original submit");
        assert!(
            r.start >= SimTime::from_secs(10),
            "restarted after recovery"
        );
        // Conservation: submitted == completed + failed + rejected.
        assert_eq!(
            s.submitted(),
            s.records().len() + s.failed().len() + s.rejected().len()
        );
    }

    #[test]
    fn retry_budget_exhaustion_fails_job_permanently() {
        let mut s = sched(2, SystemPowerPolicy::unlimited()).with_max_job_retries(1);
        s.submit(small_job(1, 2, 0));
        // Two kills against a budget of one retry: the second kill fails it.
        s.schedule_node_fail(SimTime::from_secs(2), 0);
        s.schedule_node_recover(SimTime::from_secs(4), 0);
        s.schedule_node_fail(SimTime::from_secs(8), 1);
        s.schedule_node_recover(SimTime::from_secs(12), 1);
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 0);
        assert_eq!(s.failed(), &[JobId(1)]);
        assert_eq!(s.trace().of_kind("job_fail").count(), 1);
        assert_eq!(
            s.submitted(),
            s.records().len() + s.failed().len() + s.rejected().len()
        );
    }

    #[test]
    fn job_fail_event_aborts_and_requeues() {
        let mut s = sched(2, SystemPowerPolicy::unlimited());
        s.submit(small_job(1, 2, 0));
        s.schedule_job_fail(SimTime::from_secs(3), JobId(1));
        // Failing a job that is not running is a no-op.
        s.schedule_job_fail(SimTime::from_secs(3), JobId(99));
        s.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(s.records().len(), 1);
        assert_eq!(s.trace().of_kind("job_kill").count(), 1);
        assert!(s.failed().is_empty());
    }

    #[test]
    fn stuck_cap_actuator_drops_rm_writes_until_expiry() {
        // Agentless job under a per-node cap: launch writes out-of-band
        // caps. With every node's actuator stuck through the launch window,
        // the writes are dropped and counted.
        let policy = SystemPowerPolicy::budgeted(2.0 * 450.0, PowerAssignment::PerNodeCap(250.0));
        let mut stuck = sched(2, policy);
        stuck.schedule_cap_stick(SimTime::from_secs(0), 0, SimTime::from_secs(3600));
        stuck.schedule_cap_stick(SimTime::from_secs(0), 1, SimTime::from_secs(3600));
        stuck.submit(small_job(1, 2, 1));
        stuck.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert!(stuck.stuck_cap_drops() >= 2, "both launch writes dropped");

        let mut live = sched(2, policy);
        live.submit(small_job(1, 2, 1));
        live.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(live.stuck_cap_drops(), 0);
        // The uncapped (stuck) run must draw at least as much energy.
        assert!(
            stuck.records()[0].energy_j >= live.records()[0].energy_j,
            "stuck actuator must not enforce the cap: {} vs {}",
            stuck.records()[0].energy_j,
            live.records()[0].energy_j
        );
    }

    #[test]
    fn emergency_clamp_compensates_around_stuck_actuator() {
        // Agentless 2-node job launched under a 250 W per-node cap. Node 0's
        // actuator sticks after launch; an emergency then tightens the
        // budget to 440 W. The stuck node keeps its 250 W cap, so the
        // responsive node must absorb the difference (190 W) — total caps
        // stay exactly at the emergency budget, and measured power stays
        // under it for the whole emergency window.
        let policy = SystemPowerPolicy::budgeted(2.0 * 450.0, PowerAssignment::PerNodeCap(250.0));
        let mut s = sched(2, policy);
        s.submit(JobSpec::rigid(
            1,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 400.0, 10)),
            2,
            SimTime::from_secs(0),
        ));
        s.schedule_cap_stick(SimTime::from_secs(5), 0, SimTime::from_secs(600));
        s.schedule_budget_change(
            SimTime::from_secs(10),
            Some(440.0),
            EmergencyResponse::TightenCaps,
        );
        let q = SimDuration::from_secs(1);
        s.run_until(q, SimTime::from_secs(12));
        assert!(s.stuck_cap_drops() >= 1, "the stuck write was dropped");
        for t in (12..60).step_by(4) {
            s.run_until(q, SimTime::from_secs(t));
            let p = s.system_power_w();
            // 2% slack: RAPL-style caps enforce over an averaging window,
            // not instantaneously. Without compensation the caps would sum
            // to 470 W (6.8% over) and the draw would sit near that.
            assert!(
                p <= 440.0 * 1.02,
                "compensated caps must hold the emergency budget: {p:.1} W at t={t}"
            );
        }
        s.run_until_drained(q, SimTime::from_secs(7200));
        assert_eq!(s.records().len(), 1, "the job still completes");
    }

    #[test]
    fn telemetry_dropout_counts_without_changing_schedule() {
        let mut faulty = sched(2, SystemPowerPolicy::unlimited());
        let mut clean = sched(2, SystemPowerPolicy::unlimited());
        for s in [&mut faulty, &mut clean] {
            s.submit(small_job(1, 2, 0));
        }
        faulty.schedule_telemetry_dropout(SimTime::from_secs(2), SimTime::from_secs(30));
        faulty.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        clean.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        assert_eq!(faulty.telemetry_dropouts(), 1);
        assert_eq!(clean.telemetry_dropouts(), 0);
        assert_eq!(faulty.records().len(), clean.records().len());
        let (a, b) = (&faulty.records()[0], &clean.records()[0]);
        assert_eq!(a.end, b.end, "observability fault must not alter physics");
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    }

    #[test]
    fn node_ids_cover_idle_running_and_down() {
        let mut s = sched(4, SystemPowerPolicy::unlimited());
        assert_eq!(s.node_ids(), vec![0, 1, 2, 3]);
        s.submit(small_job(1, 2, 0));
        s.schedule_node_fail(SimTime::from_secs(5), 3);
        for _ in 0..6 {
            s.step(SimDuration::from_secs(1));
        }
        assert_eq!(s.down_nodes(), 1);
        assert_eq!(s.node_ids(), vec![0, 1, 2, 3], "ids stable across pools");
    }
}
