//! Chaos-recovery SLO gate: the E11 grid must stay green.
//!
//! Runs the shipped chaos grid ({none, node MTBF, mixed} ×
//! {NodeOnly, EndToEnd}) and exits nonzero if any recovery SLO regresses:
//! conservation (`submitted == completed + failed + rejected`), ≥95%
//! completion of non-failed jobs, no sustained power overshoot, byte-
//! identical replay at 1/2/4/8 drain workers, and every MTBF-failed node
//! back up at drain end. Writes `results/bench_fleetfaults.{json,txt}`;
//! the CI `chaosfleet` stage runs this binary and `perfgate` diffs its
//! JSON against the committed baseline (deterministic counters exactly,
//! wall-clock rates as ratios).
//!
//! `POWERSTACK_CHAOSFLEET_SMOKE=1` shrinks every cell for plumbing checks.
//! `POWERSTACK_FLEETFAULTS_INJECT_REGRESSION=1` synthetically breaks one
//! cell's conservation verdict — CI uses it to prove the gate actually
//! trips (a gate nobody has seen fail is a gate nobody can trust).

use powerstack_core::experiments::fleetfaults::{self, ChaosResult, ChaosScenario};
use powerstack_core::framework::TuningLevel;
use pstack_faults::FleetFaultPlan;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ChaosArm {
    /// Wall-clock seconds for the cell's full SLO battery.
    wall_s: f64,
    /// Simulated hours advanced per wall second (perfgate MinRatio).
    sim_hours_per_wall_s: f64,
    /// The cell verdicts (deterministic; perfgate compares counters
    /// exactly).
    result: ChaosResult,
}

#[derive(Serialize)]
struct ChaosGate {
    smoke: bool,
    injected_regression: bool,
    arms: Vec<ChaosArm>,
    violations: Vec<String>,
}

fn main() {
    pstack_analyze::startup_gate();
    let smoke = std::env::var("POWERSTACK_CHAOSFLEET_SMOKE").is_ok();
    let injected_regression = std::env::var("POWERSTACK_FLEETFAULTS_INJECT_REGRESSION").is_ok();

    let plans = [
        FleetFaultPlan::none(),
        FleetFaultPlan::node_mtbf_only(),
        FleetFaultPlan::mixed(),
    ];
    let tunings = [TuningLevel::NodeOnly, TuningLevel::EndToEnd];

    let mut arms: Vec<ChaosArm> = pstack_bench::traced("bench_fleetfaults", |tc| {
        plans
            .iter()
            .flat_map(|plan| tunings.iter().map(move |&t| (plan.clone(), t)))
            .map(|(plan, tuning)| {
                let mut span = tc.span("chaos_gate_cell");
                span.attr("plan", plan.name.clone());
                span.attr("tuning", format!("{tuning:?}"));
                let mut sc = ChaosScenario::small(tuning, plan);
                if smoke {
                    sc.fleet.n_jobs = 10;
                    sc.fleet.horizon_hours = 6;
                    if sc.plan.nodes.mtbf_hours > 0.0 {
                        sc.plan.nodes.mtbf_hours = 2.0;
                        sc.plan.nodes.mttr_minutes = 10.0;
                    }
                    for o in &mut sc.plan.outages {
                        o.at_s = 3600.0;
                        o.duration_s = 900.0;
                    }
                }
                let start = Instant::now();
                let result =
                    pstack_bench::timed(&format!("gate {} {tuning:?}", sc.plan.name), || sc.run());
                let wall_s = start.elapsed().as_secs_f64().max(1e-9);
                ChaosArm {
                    wall_s,
                    sim_hours_per_wall_s: sc.fleet.horizon_hours as f64 / wall_s,
                    result,
                }
            })
            .collect()
    });

    if injected_regression {
        // Break one verdict on purpose so CI can watch the gate trip.
        arms[0].result.conservation_ok = false;
    }

    let violations: Vec<String> = arms
        .iter()
        .flat_map(|a| {
            a.result
                .violations()
                .into_iter()
                .map(move |v| format!("[{} {:?}] {v}", a.result.plan, a.result.tuning))
        })
        .collect();

    let gate = ChaosGate {
        smoke,
        injected_regression,
        arms,
        violations,
    };

    let results: Vec<ChaosResult> = gate.arms.iter().map(|a| a.result.clone()).collect();
    let mut rendered = fleetfaults::render(&results);
    rendered.push_str("\nplan           | tuning    | wall_s  | sim_h/wall_s\n");
    for a in &gate.arms {
        rendered.push_str(&format!(
            "{:<14} | {:<9} | {:>7.1} | {:>12.1}\n",
            a.result.plan,
            format!("{:?}", a.result.tuning),
            a.wall_s,
            a.sim_hours_per_wall_s,
        ));
    }
    for v in &gate.violations {
        rendered.push_str(&format!("VIOLATION {v}\n"));
    }
    pstack_bench::emit("bench_fleetfaults", &rendered, &gate);

    if !gate.violations.is_empty() {
        for v in &gate.violations {
            eprintln!("SLO violation: {v}");
        }
        eprintln!(
            "error: bench_fleetfaults: {} recovery SLO violation(s); see results/bench_fleetfaults.txt",
            gate.violations.len()
        );
        std::process::exit(1);
    }
}
