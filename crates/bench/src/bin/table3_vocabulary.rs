//! Regenerate Table 3: the PowerStack vocabulary.
fn main() {
    pstack_analyze::startup_gate();
    let vocab = pstack_bench::traced("table3_vocabulary", |_tc| powerstack_core::vocabulary());
    pstack_bench::emit(
        "table3_vocabulary",
        &powerstack_core::vocab::render_table3(),
        &vocab,
    );
}
