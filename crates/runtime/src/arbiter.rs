//! Knob-ownership arbitration between co-resident runtimes (§3.2.7).
//!
//! The paper's COUNTDOWN+MERIC use case requires "a communication layer ...
//! which guarantees that both tools keep the system's knowledge of which tool
//! is in charge and what the current and future hardware settings are,
//! without creating a conflict". The [`Arbiter`] is that layer: each hardware
//! knob kind has at most one owner; writes from non-owners are rejected.
//! The `Naive` mode disables the guarantee so experiments can quantify what
//! conflicts cost (the use case's motivating failure mode).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::agent::KnobKind;

/// Agent identifier within one job (index into the agent list).
pub type AgentId = usize;

/// Arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbiterMode {
    /// First claim wins; non-owners' writes are rejected.
    Gated,
    /// No arbitration: every write goes through (conflict study mode).
    Naive,
}

/// The knob-ownership ledger.
#[derive(Debug, Clone)]
pub struct Arbiter {
    mode: ArbiterMode,
    owners: HashMap<KnobKind, AgentId>,
}

impl Arbiter {
    /// Create an arbiter in the given mode.
    pub fn new(mode: ArbiterMode) -> Self {
        Arbiter {
            mode,
            owners: HashMap::new(),
        }
    }

    /// The arbitration mode.
    pub fn mode(&self) -> ArbiterMode {
        self.mode
    }

    /// Claim `knob` for `agent`. Returns `true` if the claim holds afterwards
    /// (fresh claim or already owned by the same agent).
    pub fn claim(&mut self, agent: AgentId, knob: KnobKind) -> bool {
        match self.owners.get(&knob) {
            Some(&owner) => owner == agent,
            None => {
                self.owners.insert(knob, agent);
                true
            }
        }
    }

    /// Whether `agent` may write `knob` right now.
    pub fn allows(&self, agent: AgentId, knob: KnobKind) -> bool {
        match self.mode {
            ArbiterMode::Naive => true,
            ArbiterMode::Gated => match self.owners.get(&knob) {
                Some(&owner) => owner == agent,
                // Unclaimed knobs are writable (implicitly claimed on write
                // by JobRunner registration, which claims up front).
                None => true,
            },
        }
    }

    /// The current owner of `knob`, if claimed.
    pub fn owner(&self, knob: KnobKind) -> Option<AgentId> {
        self.owners.get(&knob).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_wins() {
        let mut a = Arbiter::new(ArbiterMode::Gated);
        assert!(a.claim(0, KnobKind::CoreFreq));
        assert!(!a.claim(1, KnobKind::CoreFreq));
        assert!(a.claim(0, KnobKind::CoreFreq), "re-claim by owner ok");
        assert_eq!(a.owner(KnobKind::CoreFreq), Some(0));
    }

    #[test]
    fn gated_blocks_non_owner() {
        let mut a = Arbiter::new(ArbiterMode::Gated);
        a.claim(0, KnobKind::CoreFreq);
        assert!(a.allows(0, KnobKind::CoreFreq));
        assert!(!a.allows(1, KnobKind::CoreFreq));
        // Unclaimed knobs writable by anyone.
        assert!(a.allows(1, KnobKind::Uncore));
    }

    #[test]
    fn naive_allows_everything() {
        let mut a = Arbiter::new(ArbiterMode::Naive);
        a.claim(0, KnobKind::CoreFreq);
        assert!(a.allows(1, KnobKind::CoreFreq));
    }

    #[test]
    fn distinct_knobs_distinct_owners() {
        let mut a = Arbiter::new(ArbiterMode::Gated);
        assert!(a.claim(0, KnobKind::CoreFreq));
        assert!(a.claim(1, KnobKind::Uncore));
        assert!(a.allows(0, KnobKind::CoreFreq));
        assert!(a.allows(1, KnobKind::Uncore));
        assert!(!a.allows(1, KnobKind::CoreFreq));
        assert!(!a.allows(0, KnobKind::Uncore));
    }
}
