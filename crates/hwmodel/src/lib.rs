//! # pstack-hwmodel — simulated node hardware
//!
//! First-order models of the hardware controls and telemetry the PowerStack
//! actuates (paper Table 1, node layer). This crate is the substitute for the
//! real RAPL/MSR/NVML substrate (see DESIGN.md substitution table):
//!
//! - [`pstate`]: core P-state (DVFS) and uncore frequency ladders with a V-f
//!   curve, plus clock (duty-cycle) modulation levels.
//! - [`phase`]: application phase kinds (compute-, memory-, comm-, I/O-bound)
//!   and the roofline-style performance-rate model `rate = f(freq, uncore, phase)`.
//! - [`power`]: the CMOS power model `P = P_idle + Σ c·V²·f·activity` plus DRAM
//!   and uncore terms.
//! - [`thermal`]: lumped-RC package thermal model with Tj_max throttling.
//! - [`variation`]: per-package manufacturing variation (power at iso-frequency
//!   varies chip to chip — why variation-aware allocation matters, §3.1.1).
//! - [`cap`]: RAPL-style windowed power-cap controller that clips the P-state
//!   to honour a watts budget over a time window.
//! - [`package`] / [`node`]: composition into sockets and nodes, with exact
//!   energy integration and performance-counter updates per simulation step.
//! - [`batch`]: batched structure-of-arrays stepping of many nodes — the
//!   evaluation fast path, bit-identical to the scalar node at nominal knobs.
//!
//! All models are deliberately first-order but preserve the monotone trade-offs
//! every surveyed tuner exploits: higher frequency → more power, superlinearly;
//! memory-bound phases gain little from core frequency; communication slack
//! gains nothing; capping power costs performance only once it binds.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod batch;
pub mod cap;
pub mod invariants;
pub mod node;
pub mod package;
pub mod phase;
pub mod power;
pub mod pstate;
pub mod thermal;
pub mod variation;

pub use batch::{Bitset, NodeBatch, PackageBatch};
pub use cap::{PowerCap, RaplWindow};
pub use invariants::{invariants, power_envelope, PowerEnvelope};
pub use node::{Node, NodeConfig, NodeId, StepOutput};
pub use package::{Package, PackageConfig};
pub use phase::{PhaseKind, PhaseMix, SpeedModel};
pub use power::PowerModel;
pub use pstate::{DutyCycle, FreqLadder, PStateTable};
pub use thermal::ThermalModel;
pub use variation::VariationModel;
