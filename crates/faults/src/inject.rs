//! The injectors: telemetry corruption, knob gating, crashing agents.
//!
//! [`FaultInjector`] sits on the read path (power samples) and the write
//! path (knob actuations) of a scenario; [`CrashyAgent`] wraps any
//! [`RuntimeAgent`] with deterministic crash/restart behaviour. All
//! decisions come from the stateless [`FaultDice`], keyed by monotone
//! sample/write/tick counters, so a seeded scenario replays the identical
//! fault sequence every run.

use crate::dice::FaultDice;
use crate::plan::{FaultPlan, KnobFaults, TelemetryFaults};
use pstack_autotune::{FaultKind, FaultLog};
use pstack_hwmodel::{PhaseMix, PowerEnvelope};
use pstack_runtime::{ArbitratedNodes, JobTelemetry, KnobKind, RuntimeAgent};
use pstack_sim::SimTime;
use pstack_trace::{AttrValue, TraceCollector};
use std::sync::Arc;

/// Fate of one knob write under injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobWrite {
    /// The write applies immediately.
    Applied,
    /// The write silently fails (stuck actuator).
    Stuck,
    /// The write applies after this many injector ticks.
    Lagged(usize),
}

/// Telemetry- and knob-path fault injector for one scenario.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    telemetry: TelemetryFaults,
    knobs: KnobFaults,
    dice: FaultDice,
    sample_idx: u64,
    write_idx: u64,
    trace: Option<Arc<TraceCollector>>,
    /// Everything injected so far.
    pub log: FaultLog,
}

impl FaultInjector {
    /// Build an injector for `plan` seeded at `seed`.
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        FaultInjector {
            telemetry: plan.telemetry,
            knobs: plan.knobs,
            dice: FaultDice::new(seed),
            sample_idx: 0,
            write_idx: 0,
            trace: None,
            log: FaultLog::new(),
        }
    }

    /// Mirror every injection decision into `collector` as a zero-duration
    /// `fault` span (kind + decision index attrs). The dice are untouched:
    /// a traced injector replays the identical fault sequence.
    pub fn with_trace(mut self, collector: Arc<TraceCollector>) -> Self {
        self.trace = Some(collector);
        self
    }

    fn trace_fault(&self, kind: FaultKind, path: &str, idx: u64) {
        if let Some(t) = self.trace.as_deref() {
            t.instant(
                None,
                "fault",
                vec![
                    ("kind".to_string(), AttrValue::from(kind.name())),
                    ("path".to_string(), AttrValue::from(path)),
                    ("idx".to_string(), AttrValue::from(idx)),
                ],
            );
        }
    }

    /// Pass one power sample through the telemetry fault path.
    ///
    /// Returns `None` when the sample is dropped; otherwise the (possibly
    /// noisy or spiking) reading, **clamped into the node's physical power
    /// envelope** `[0, peak_w]` — injected noise must corrupt measurements,
    /// not fabricate physically impossible ones (the INV-* proptest target).
    pub fn observe_power(&mut self, raw_w: f64, envelope: &PowerEnvelope) -> Option<f64> {
        let i = self.sample_idx;
        self.sample_idx += 1;
        if self.dice.chance(self.telemetry.drop_prob, "drop", i, 0) {
            self.log.note(FaultKind::DroppedSample);
            self.trace_fault(FaultKind::DroppedSample, "telemetry", i);
            return None;
        }
        let mut w = raw_w;
        if self.telemetry.spike_prob > 0.0
            && self.dice.chance(self.telemetry.spike_prob, "spike", i, 0)
        {
            w *= self.telemetry.spike_factor;
            self.log.note(FaultKind::TelemetryNoise);
            self.trace_fault(FaultKind::TelemetryNoise, "telemetry", i);
        } else if self.telemetry.noise_frac > 0.0 {
            w += self
                .dice
                .jitter(self.telemetry.noise_frac * raw_w, "noise", i, 0);
            self.log.note(FaultKind::TelemetryNoise);
            // Per-sample gaussian noise is not traced: it fires on ~every
            // sample and would evict real spans from the ring buffer.
        }
        Some(w.clamp(0.0, envelope.peak_w))
    }

    /// Decide the fate of one knob write.
    pub fn gate_write(&mut self, what: &str) -> KnobWrite {
        let i = self.write_idx;
        self.write_idx += 1;
        if self.dice.chance(self.knobs.stick_prob, "stick", i, 0) {
            self.log
                .record(FaultKind::StuckKnob, format!("write {i}"), what.to_string());
            self.trace_fault(FaultKind::StuckKnob, "knob", i);
            return KnobWrite::Stuck;
        }
        if self.dice.chance(self.knobs.lag_prob, "lag", i, 0) {
            let steps = self.knobs.lag_steps.max(1);
            self.log.record(
                FaultKind::LaggedKnob,
                format!("write {i}"),
                format!("{what} delayed {steps} ticks"),
            );
            self.trace_fault(FaultKind::LaggedKnob, "knob", i);
            return KnobWrite::Lagged(steps);
        }
        KnobWrite::Applied
    }

    /// Samples observed so far (the telemetry decision counter).
    pub fn samples_taken(&self) -> u64 {
        self.sample_idx
    }
}

/// A [`RuntimeAgent`] wrapper that crashes and restarts deterministically.
///
/// While crashed, the agent misses its control ticks and region hooks (its
/// knob settings stay wherever the crash left them — exactly the hazard a
/// robust stack must tolerate). After `restart_after_controls` missed ticks
/// a supervisor restarts it and control resumes. Job start/end hooks always
/// forward, so claimed knobs are restored at job end even for a crashy run.
///
/// The plan's knob faults gate the agent's control-tick actuations as well:
/// a stuck tick's writes never land, a lagging tick's writes land too late
/// to matter (the agent recomputes next period anyway), so both are modelled
/// as the inner agent missing that control tick — with distinct log kinds.
pub struct CrashyAgent {
    inner: Box<dyn RuntimeAgent>,
    label: String,
    dice: FaultDice,
    crash_prob: f64,
    restart_after: usize,
    knobs: KnobFaults,
    crashed: bool,
    missed: usize,
    tick: u64,
    /// Crash/restart events observed so far.
    pub log: FaultLog,
}

impl CrashyAgent {
    /// Wrap `inner` with the crash behaviour of `plan`, seeded at `seed`.
    pub fn new(inner: Box<dyn RuntimeAgent>, plan: &FaultPlan, seed: u64) -> Self {
        let label = format!("crashy:{}", inner.name());
        CrashyAgent {
            inner,
            label,
            dice: FaultDice::new(seed),
            crash_prob: plan.agent.crash_prob,
            restart_after: plan.agent.restart_after_controls.max(1),
            knobs: plan.knobs,
            crashed: false,
            missed: 0,
            tick: 0,
            log: FaultLog::new(),
        }
    }

    /// Whether the agent is currently down.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }
}

impl RuntimeAgent for CrashyAgent {
    fn name(&self) -> &str {
        &self.label
    }

    fn knobs(&self) -> Vec<KnobKind> {
        self.inner.knobs()
    }

    fn control_period(&self) -> pstack_sim::SimDuration {
        self.inner.control_period()
    }

    fn on_job_start(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        self.inner.on_job_start(ctl);
    }

    fn on_region_enter(
        &mut self,
        now: SimTime,
        node: usize,
        region: &str,
        mix: &PhaseMix,
        ctl: &mut ArbitratedNodes<'_>,
    ) {
        if !self.crashed {
            self.inner.on_region_enter(now, node, region, mix, ctl);
        }
    }

    fn on_control(
        &mut self,
        now: SimTime,
        telemetry: &JobTelemetry,
        ctl: &mut ArbitratedNodes<'_>,
    ) {
        self.tick += 1;
        if self.crashed {
            self.missed += 1;
            if self.missed >= self.restart_after {
                self.crashed = false;
                self.missed = 0;
                self.log.record(
                    FaultKind::AgentRestart,
                    format!("t={:.0}s", now.as_secs_f64()),
                    format!(
                        "{} restarted after {} missed ticks",
                        self.label, self.restart_after
                    ),
                );
                self.inner.on_control(now, telemetry, ctl);
            }
            return;
        }
        if self.dice.chance(self.crash_prob, "crash", self.tick, 0) {
            self.crashed = true;
            self.missed = 0;
            self.log.record(
                FaultKind::AgentCrash,
                format!("t={:.0}s", now.as_secs_f64()),
                format!("{} crashed mid-job", self.label),
            );
            return;
        }
        // Knob faults on the actuation path: a stuck or lagging tick means
        // this period's writes never take (timely) effect.
        if self
            .dice
            .chance(self.knobs.stick_prob, "agent_stick", self.tick, 0)
        {
            self.log.record(
                FaultKind::StuckKnob,
                format!("t={:.0}s", now.as_secs_f64()),
                format!("{} control actuation lost (stuck knob)", self.label),
            );
            return;
        }
        if self
            .dice
            .chance(self.knobs.lag_prob, "agent_lag", self.tick, 0)
        {
            self.log.record(
                FaultKind::LaggedKnob,
                format!("t={:.0}s", now.as_secs_f64()),
                format!("{} control actuation landed a period late", self.label),
            );
            return;
        }
        self.inner.on_control(now, telemetry, ctl);
    }

    fn on_job_end(&mut self, ctl: &mut ArbitratedNodes<'_>) {
        // Always forward: the supervisor restores knobs even if the agent
        // died, matching RM-side cleanup of a crashed runtime.
        self.inner.on_job_end(ctl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_hwmodel::NodeConfig;

    fn envelope() -> PowerEnvelope {
        pstack_hwmodel::invariants::power_envelope(&NodeConfig::server_default())
    }

    #[test]
    fn clean_plan_passes_samples_through() {
        let mut inj = FaultInjector::new(&FaultPlan::none(), 1);
        let env = envelope();
        for w in [0.0, 100.0, 250.0, env.peak_w] {
            assert_eq!(inj.observe_power(w, &env), Some(w));
        }
        assert!(inj.log.is_clean());
    }

    #[test]
    fn noisy_samples_stay_inside_the_envelope() {
        let mut inj = FaultInjector::new(&FaultPlan::telemetry_only(), 7);
        let env = envelope();
        let mut dropped = 0;
        let mut perturbed = 0;
        for i in 0..2000 {
            let raw = 150.0 + (i % 100) as f64;
            match inj.observe_power(raw, &env) {
                None => dropped += 1,
                Some(w) => {
                    assert!(
                        (0.0..=env.peak_w).contains(&w),
                        "sample {w} escaped envelope"
                    );
                    if (w - raw).abs() > 1e-12 {
                        perturbed += 1;
                    }
                }
            }
        }
        assert!(dropped > 0, "drop_prob 0.05 over 2000 samples");
        assert!(perturbed > 0, "noise_frac 0.10 over 2000 samples");
        assert_eq!(inj.log.counts.dropped_samples, dropped);
    }

    #[test]
    fn injection_is_deterministic() {
        let env = envelope();
        let run = || {
            let mut inj = FaultInjector::new(&FaultPlan::default_rates(), 11);
            (0..500)
                .map(|i| inj.observe_power(200.0 + i as f64, &env))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn knob_gate_mixes_fates() {
        let mut inj = FaultInjector::new(&FaultPlan::knobs_only(), 3);
        let mut stuck = 0;
        let mut lagged = 0;
        let mut applied = 0;
        for _ in 0..1000 {
            match inj.gate_write("cap") {
                KnobWrite::Stuck => stuck += 1,
                KnobWrite::Lagged(steps) => {
                    assert_eq!(steps, 3);
                    lagged += 1;
                }
                KnobWrite::Applied => applied += 1,
            }
        }
        assert!(stuck > 0 && lagged > 0 && applied > 0);
        assert_eq!(inj.log.counts.stuck_knobs, stuck);
        assert_eq!(inj.log.counts.lagged_knobs, lagged);
    }

    #[test]
    fn traced_injector_mirrors_decisions_without_changing_them() {
        let env = envelope();
        let run = |trace: Option<Arc<TraceCollector>>| {
            let mut inj = FaultInjector::new(&FaultPlan::default_rates(), 11);
            if let Some(t) = trace {
                inj = inj.with_trace(t);
            }
            let samples: Vec<_> = (0..500)
                .map(|i| inj.observe_power(200.0 + i as f64, &env))
                .collect();
            let writes: Vec<_> = (0..200).map(|_| inj.gate_write("cap")).collect();
            (samples, writes, inj.log.clone())
        };
        let collector = Arc::new(TraceCollector::new());
        let plain = run(None);
        let traced = run(Some(Arc::clone(&collector)));
        assert_eq!(plain, traced, "tracing must not perturb the dice");
        let trace = collector.snapshot();
        let faults: Vec<_> = trace.by_name("fault").collect();
        let expected = traced.2.counts.dropped_samples
            + traced.2.counts.stuck_knobs
            + traced.2.counts.lagged_knobs;
        // Spike events are also traced but default_rates has no spikes;
        // per-sample noise is deliberately untraced.
        assert!(
            faults.len() >= expected,
            "{} fault spans vs {} logged discrete faults",
            faults.len(),
            expected
        );
        assert!(faults
            .iter()
            .all(|s| s.attr("kind").is_some() && s.attr("path").is_some()));
    }

    #[test]
    fn clean_gate_always_applies() {
        let mut inj = FaultInjector::new(&FaultPlan::none(), 3);
        for _ in 0..100 {
            assert_eq!(inj.gate_write("cap"), KnobWrite::Applied);
        }
    }
}
