//! Extension experiment E2 — thermal-aware node selection.
//!
//! §3.1.1's static interactions include "which nodes (or compute resources)
//! to select for job launch for managing inefficiencies in the system such
//! as thermal hot spots". On a fleet with a rack-position inlet-temperature
//! gradient, leakage power rises with temperature, so hot-aisle nodes burn
//! more watts for the same work — and, under a node cap, run slower.
//!
//! The experiment launches a part-fleet job mix on such a gradient with
//! arbitrary vs coolest-first selection and measures energy and makespan.

use pstack_apps::synthetic::{Profile, SyntheticApp};
use pstack_hwmodel::{NodeConfig, VariationModel};
use pstack_node::NodeManager;
use pstack_rm::{JobSpec, NodeSelection, PowerAssignment, Scheduler, SystemPowerPolicy};
use pstack_sim::{SeedTree, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One selection policy's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalRow {
    /// Selection policy label.
    pub selection: String,
    /// Time until all jobs completed, seconds.
    pub makespan_s: f64,
    /// Energy consumed by the jobs' allocated nodes, joules (the quantity
    /// the placement decision controls; idle hot-aisle leakage is a facility
    /// constant either way).
    pub job_energy_j: f64,
    /// Hottest package temperature observed at completion, °C.
    pub peak_temp_c: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalResult {
    /// Fleet inlet gradient `(cool_c, hot_c)`.
    pub gradient_c: (f64, f64),
    /// One row per policy.
    pub rows: Vec<ThermalRow>,
}

#[allow(clippy::too_many_arguments)] // internal experiment plumbing
fn run_policy(
    selection: NodeSelection,
    label: &str,
    n_nodes: usize,
    n_jobs: usize,
    nodes_per_job: usize,
    work: f64,
    gradient: (f64, f64),
    seed: u64,
) -> ThermalRow {
    let seeds = SeedTree::new(seed);
    let fleet = NodeManager::fleet_with_thermal_gradient(
        n_nodes,
        NodeConfig::server_default(),
        &VariationModel::none(),
        &seeds,
        gradient.0,
        gradient.1,
    );
    // A per-node cap makes the thermal difference performance-relevant:
    // hot nodes lose more frequency to the same cap (leakage eats budget).
    let policy =
        SystemPowerPolicy::budgeted(n_nodes as f64 * 450.0, PowerAssignment::PerNodeCap(280.0));
    let mut sched =
        Scheduler::new(fleet, policy, seeds.subtree("sched")).with_node_selection(selection);
    for i in 0..n_jobs {
        sched.submit(JobSpec::rigid(
            i as u64,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, work, 20)),
            nodes_per_job,
            SimTime::ZERO,
        ));
    }
    sched.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(4 * 3600));
    let peak_temp = sched
        .idle_temperatures()
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
    ThermalRow {
        selection: label.to_string(),
        makespan_s: sched.now().as_secs_f64(),
        job_energy_j: sched.records().iter().map(|r| r.energy_j).sum(),
        peak_temp_c: peak_temp,
    }
}

/// Run the placement comparison: the job mix needs only half the fleet, so
/// selection has room to matter.
pub fn run(n_nodes: usize, work: f64, seed: u64) -> ThermalResult {
    let gradient = (20.0, 42.0);
    let n_jobs = n_nodes / 4;
    let rows = vec![
        run_policy(
            NodeSelection::Arbitrary,
            "arbitrary",
            n_nodes,
            n_jobs,
            2,
            work,
            gradient,
            seed,
        ),
        run_policy(
            NodeSelection::CoolestFirst,
            "coolest-first",
            n_nodes,
            n_jobs,
            2,
            work,
            gradient,
            seed,
        ),
    ];
    ThermalResult {
        gradient_c: gradient,
        rows,
    }
}

/// Default full-scale run.
pub fn run_default() -> ThermalResult {
    run(16, 120.0, 20200914)
}

/// Render the comparison.
pub fn render(r: &ThermalResult) -> String {
    let mut out = format!(
        "EXTENSION E2 / THERMAL-AWARE PLACEMENT: inlet gradient {:.0}-{:.0} degC\n\
         selection      | makespan_s | job_energy_MJ | peak_idle_temp_C\n",
        r.gradient_c.0, r.gradient_c.1
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:<14} | {:>10.0} | {:>9.3} | {:>8.1}\n",
            row.selection,
            row.makespan_s,
            row.job_energy_j / 1e6,
            row.peak_temp_c,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coolest_first_saves_energy() {
        let r = run(8, 30.0, 5);
        let arb = r.rows.iter().find(|x| x.selection == "arbitrary").unwrap();
        let cool = r
            .rows
            .iter()
            .find(|x| x.selection == "coolest-first")
            .unwrap();
        assert!(
            cool.job_energy_j < arb.job_energy_j,
            "cool placement {} J vs arbitrary {} J",
            cool.job_energy_j,
            arb.job_energy_j
        );
        assert!(cool.makespan_s <= arb.makespan_s * 1.01);
    }
}
