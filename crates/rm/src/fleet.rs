//! Multi-enclave sites: per-enclave power-budget sharding with hierarchical
//! aggregation mirroring the GEOPM tree.
//!
//! A fleet-scale site is not one scheduler over 4k nodes — real sites split
//! into *enclaves* (rows, halls, partitions) that schedule independently
//! under a shard of the site power budget, with telemetry aggregated up a
//! tree-structured hierarchy exactly like GEOPM's tree-of-agents (paper
//! §3.1.4). [`EnclaveSet`] composes independent [`Scheduler`]s that way:
//!
//! - **budget sharding** ([`shard_budgets`]): a site budget divides across
//!   enclaves in proportion to node capacity, with the last shard absorbing
//!   the floating-point residue so the shards sum to the site budget exactly
//!   (PSA020 checks this invariant);
//! - **event-driven drains**: each enclave drains with its own event heap,
//!   so an idle enclave costs *nothing* per event — its drain returns
//!   without a single tick;
//! - **hierarchical aggregation**: site metrics fold leaf-to-root with a
//!   bounded fanout; the fold is associative, so the tree result equals the
//!   flat sum bit-for-bit regardless of fanout.
//!
//! Demand-response events (E1 at fleet scale) enter as *scheduled* budget
//! changes: [`EnclaveSet::schedule_site_budget_change`] pre-shards the new
//! site budget and pushes one `BudgetChange` event into each enclave's heap,
//! which fires at the first tick boundary at or after the scheduled time.

use crate::scheduler::{EmergencyResponse, JobRecord, Scheduler};
use pstack_sim::{SimDuration, SimTime};
use pstack_sync::{sites, SyncAtomicU64, SyncMutex};
use std::sync::atomic::Ordering;

/// One independently-scheduled partition of the site.
pub struct Enclave {
    name: String,
    nodes: usize,
    sched: Scheduler,
}

impl Enclave {
    /// The enclave's name (diagnostics, result labelling).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node capacity of this enclave.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The enclave's scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Mutable access, e.g. to submit the enclave's share of a workload.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.sched
    }

    /// This enclave's completed-job records.
    pub fn records(&self) -> &[JobRecord] {
        self.sched.records()
    }
}

/// Capacity-proportional shards of `site_budget_w` over enclave node
/// counts. The last *nonzero-capacity* shard absorbs the floating-point
/// residue, so the shards sum to the site budget *exactly*
/// (`sum == site_budget_w` bit-for-bit) — the invariant PSA020 lints. A
/// zero-capacity enclave (e.g. one in outage during a fleet fault plan)
/// gets an explicit zero share and never absorbs the residue.
pub fn shard_budgets(site_budget_w: f64, capacities: &[usize]) -> Vec<f64> {
    assert!(!capacities.is_empty(), "need at least one enclave");
    assert!(
        site_budget_w.is_finite() && site_budget_w >= 0.0,
        "budget must be finite and nonnegative"
    );
    let total: usize = capacities.iter().sum();
    assert!(total > 0, "site has no nodes");
    let mut shards: Vec<f64> = capacities
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                site_budget_w * c as f64 / total as f64
            }
        })
        .collect();
    let last = capacities.iter().rposition(|&c| c > 0).expect("total > 0");
    let head: f64 = shards
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != last)
        .map(|(_, &s)| s)
        .sum();
    shards[last] = site_budget_w - head;
    shards
}

/// Site-level metrics, aggregated leaf-to-root over the enclave tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteMetrics {
    /// Enclaves aggregated.
    pub enclaves: usize,
    /// Total site node capacity.
    pub nodes: usize,
    /// Jobs completed across the site.
    pub completed: usize,
    /// Mean queue wait across all completed jobs, seconds.
    pub mean_wait_s: f64,
    /// Jobs completed per hour of simulated time (site makespan).
    pub jobs_per_hour: f64,
    /// Allocated node-seconds / available node-seconds.
    pub utilization: f64,
    /// Total energy over every enclave, joules.
    pub system_energy_j: f64,
    /// Total application work completed.
    pub total_work: f64,
    /// Longest enclave clock, seconds (the site makespan).
    pub makespan_s: f64,
    /// Scheduler events processed across every enclave drain.
    pub events_processed: u64,
    /// Jobs submitted across the site (requeues not double-counted).
    pub submitted: usize,
    /// Jobs permanently failed (retry budget exhausted) across the site.
    pub failed: usize,
    /// Jobs rejected as infeasible across the site.
    pub rejected: usize,
    /// Nodes currently down across the site.
    pub down_nodes: usize,
    /// Telemetry dropout windows fired across the site.
    pub telemetry_dropouts: u64,
}

/// One aggregation-tree node: the associative partial sums the GEOPM-style
/// fold carries from the leaves to the root.
#[derive(Debug, Clone, Copy, Default)]
struct AggNode {
    completed: usize,
    wait_sum_s: f64,
    energy_j: f64,
    total_work: f64,
    allocated_node_seconds: f64,
    capacity_node_seconds: f64,
    nodes: usize,
    max_now_s: f64,
    submitted: usize,
    failed: usize,
    rejected: usize,
    down_nodes: usize,
    telemetry_dropouts: u64,
}

impl AggNode {
    fn combine(a: AggNode, b: AggNode) -> AggNode {
        AggNode {
            completed: a.completed + b.completed,
            wait_sum_s: a.wait_sum_s + b.wait_sum_s,
            energy_j: a.energy_j + b.energy_j,
            total_work: a.total_work + b.total_work,
            allocated_node_seconds: a.allocated_node_seconds + b.allocated_node_seconds,
            capacity_node_seconds: a.capacity_node_seconds + b.capacity_node_seconds,
            nodes: a.nodes + b.nodes,
            max_now_s: a.max_now_s.max(b.max_now_s),
            submitted: a.submitted + b.submitted,
            failed: a.failed + b.failed,
            rejected: a.rejected + b.rejected,
            down_nodes: a.down_nodes + b.down_nodes,
            telemetry_dropouts: a.telemetry_dropouts + b.telemetry_dropouts,
        }
    }
}

/// A site of independently-scheduled enclaves under one power budget.
pub struct EnclaveSet {
    enclaves: Vec<Enclave>,
    fanout: usize,
    /// Diagnostics: scheduler events processed across drains. See the
    /// `rm.events` entry in `pstack_sync::sites` for the ordering rationale.
    events_processed: SyncAtomicU64,
    /// Scratch level buffer for the aggregation fold, protected as the
    /// `rm.site_tree` site.
    tree: SyncMutex<Vec<AggNode>>,
}

impl EnclaveSet {
    /// Compose named schedulers into a site aggregated with `fanout`
    /// children per tree node.
    pub fn new(enclaves: Vec<(String, Scheduler)>, fanout: usize) -> Self {
        assert!(!enclaves.is_empty(), "site needs enclaves");
        assert!(fanout >= 2, "aggregation fanout must be at least 2");
        EnclaveSet {
            enclaves: enclaves
                .into_iter()
                .map(|(name, sched)| Enclave {
                    name,
                    nodes: sched.total_nodes(),
                    sched,
                })
                .collect(),
            fanout,
            events_processed: SyncAtomicU64::new(sites::RM_EVENTS, 0),
            tree: SyncMutex::new(sites::RM_SITE_TREE, Vec::new()),
        }
    }

    /// The enclaves, in construction order.
    pub fn enclaves(&self) -> &[Enclave] {
        &self.enclaves
    }

    /// Mutable enclave access (workload submission, per-enclave knobs).
    pub fn enclaves_mut(&mut self) -> &mut [Enclave] {
        &mut self.enclaves
    }

    /// Total site node capacity.
    pub fn total_nodes(&self) -> usize {
        self.enclaves.iter().map(|e| e.nodes).sum()
    }

    /// Capacity-proportional budget shards for this site.
    pub fn budget_shards(&self, site_budget_w: f64) -> Vec<f64> {
        let caps: Vec<usize> = self.enclaves.iter().map(|e| e.nodes).collect();
        shard_budgets(site_budget_w, &caps)
    }

    /// Schedule a site-budget change at `at`: the budget is sharded
    /// capacity-proportionally and one `BudgetChange` event enters each
    /// enclave's heap (`None` lifts every enclave's budget).
    pub fn schedule_site_budget_change(
        &mut self,
        at: SimTime,
        site_budget_w: Option<f64>,
        response: EmergencyResponse,
    ) {
        let shards = site_budget_w.map(|b| self.budget_shards(b));
        for (i, enc) in self.enclaves.iter_mut().enumerate() {
            let budget = shards.as_ref().map(|s| s[i]);
            enc.sched.schedule_budget_change(at, budget, response);
        }
    }

    /// Schedule a whole-enclave outage: every node of `enclave` crashes at
    /// `at` (killing its jobs into their retry budgets) and reboots at
    /// `at + duration`. With a site budget, the budget is re-sharded
    /// bit-exactly around the outage: the survivors divide the site budget
    /// over their capacity ([`shard_budgets`] with the dead enclave at zero
    /// capacity) for the outage window, and everyone returns to the nominal
    /// shards at rejoin — the restore fires *before* the reboots at the
    /// same instant (budget changes rank ahead of node recoveries), so site
    /// power can never overshoot at the rejoin boundary. The dead enclave
    /// keeps its nominal shard during the outage: its nodes are down (zero
    /// draw), and a zero budget would permanently reject the jobs the
    /// crash requeued.
    pub fn schedule_enclave_outage(
        &mut self,
        enclave: usize,
        at: SimTime,
        duration: SimDuration,
        site_budget_w: Option<f64>,
        response: EmergencyResponse,
    ) {
        assert!(enclave < self.enclaves.len(), "enclave index out of range");
        assert!(!duration.is_zero(), "outage needs a positive duration");
        let rejoin = at + duration;
        for id in self.enclaves[enclave].sched.node_ids() {
            self.enclaves[enclave].sched.schedule_node_fail(at, id);
            self.enclaves[enclave]
                .sched
                .schedule_node_recover(rejoin, id);
        }
        if let Some(site) = site_budget_w {
            let nominal = self.budget_shards(site);
            let mut caps: Vec<usize> = self.enclaves.iter().map(|e| e.nodes).collect();
            caps[enclave] = 0;
            let degraded = shard_budgets(site, &caps);
            for (i, enc) in self.enclaves.iter_mut().enumerate() {
                let during = if i == enclave {
                    nominal[i]
                } else {
                    degraded[i]
                };
                enc.sched.schedule_budget_change(at, Some(during), response);
                enc.sched
                    .schedule_budget_change(rejoin, Some(nominal[i]), response);
            }
        }
    }

    /// Drain every enclave event-driven to `horizon`. Enclaves are
    /// independent, so each drains end-to-end; an enclave with nothing
    /// submitted returns immediately without a tick.
    pub fn run_until_drained(&mut self, quantum: SimDuration, horizon: SimTime) {
        for enc in &mut self.enclaves {
            let before = enc.sched.events().popped();
            enc.sched.run_until_drained(quantum, horizon);
            self.events_processed
                .fetch_add(enc.sched.events().popped() - before, Ordering::Relaxed);
        }
    }

    /// Replay every drained enclave's stranded post-completion events
    /// (reboots, budget restores, dropout expiries) up to `horizon` — see
    /// [`Scheduler::flush_events_until`]. Serial per enclave regardless of
    /// how the preceding drain was parallelised, so the result is
    /// worker-count independent by construction.
    pub fn flush_events_until(&mut self, horizon: SimTime) {
        for enc in &mut self.enclaves {
            let before = enc.sched.events().popped();
            enc.sched.flush_events_until(horizon);
            self.events_processed
                .fetch_add(enc.sched.events().popped() - before, Ordering::Relaxed);
        }
    }

    /// Drain every enclave event-driven to `horizon` *without* the horizon
    /// grace pass — the windowed variant: callers (e.g. the E11 chaos
    /// experiment) advance the site in slices and sample power between
    /// them, finishing with one [`EnclaveSet::run_until_drained`].
    pub fn run_until(&mut self, quantum: SimDuration, horizon: SimTime) {
        for enc in &mut self.enclaves {
            let before = enc.sched.events().popped();
            enc.sched.run_until(quantum, horizon);
            self.events_processed
                .fetch_add(enc.sched.events().popped() - before, Ordering::Relaxed);
        }
    }

    /// Drain every enclave event-driven to `horizon` across `workers`
    /// scoped threads. Enclaves are fully independent (separate schedulers,
    /// separate heaps), so partitioning them over threads cannot change any
    /// result byte: the E11 chaos experiment asserts drains at 1/2/4/8
    /// workers produce identical fingerprints.
    pub fn run_until_drained_parallel(
        &mut self,
        quantum: SimDuration,
        horizon: SimTime,
        workers: usize,
    ) {
        let workers = workers.clamp(1, self.enclaves.len().max(1));
        let before: Vec<u64> = self
            .enclaves
            .iter()
            .map(|e| e.sched.events().popped())
            .collect();
        let chunk = self.enclaves.len().div_ceil(workers);
        std::thread::scope(|s| {
            for group in self.enclaves.chunks_mut(chunk) {
                s.spawn(move || {
                    for enc in group {
                        enc.sched.run_until_drained(quantum, horizon);
                    }
                });
            }
        });
        for (enc, before) in self.enclaves.iter().zip(before) {
            self.events_processed
                .fetch_add(enc.sched.events().popped() - before, Ordering::Relaxed);
        }
    }

    /// Scheduler events processed across every drain so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed.load(Ordering::Relaxed)
    }

    /// Fold per-enclave metrics up the aggregation tree to the root. The
    /// combine is associative, so the result is independent of fanout (a
    /// property the unit tests pin against the flat sum).
    pub fn site_metrics(&mut self) -> SiteMetrics {
        let leaves: Vec<AggNode> = self
            .enclaves
            .iter_mut()
            .map(|e| {
                let m = e.sched.metrics();
                let now_s = e.sched.now().as_secs_f64();
                let capacity = e.nodes as f64 * now_s;
                AggNode {
                    completed: m.completed,
                    wait_sum_s: m.mean_wait_s * m.completed as f64,
                    energy_j: m.system_energy_j,
                    total_work: m.total_work,
                    allocated_node_seconds: m.utilization * capacity,
                    capacity_node_seconds: capacity,
                    nodes: e.nodes,
                    max_now_s: now_s,
                    submitted: e.sched.submitted(),
                    failed: e.sched.failed().len(),
                    rejected: e.sched.rejected().len(),
                    down_nodes: e.sched.down_nodes(),
                    telemetry_dropouts: e.sched.telemetry_dropouts(),
                }
            })
            .collect();
        let mut level = self.tree.lock();
        *level = leaves;
        while level.len() > 1 {
            let next: Vec<AggNode> = level
                .chunks(self.fanout)
                .map(|group| {
                    group
                        .iter()
                        .copied()
                        .reduce(AggNode::combine)
                        .expect("nonempty chunk")
                })
                .collect();
            *level = next;
        }
        let root = level[0];
        drop(level);
        let hours = root.max_now_s / 3600.0;
        SiteMetrics {
            enclaves: self.enclaves.len(),
            nodes: root.nodes,
            completed: root.completed,
            mean_wait_s: if root.completed == 0 {
                0.0
            } else {
                root.wait_sum_s / root.completed as f64
            },
            jobs_per_hour: if hours > 0.0 {
                root.completed as f64 / hours
            } else {
                0.0
            },
            utilization: if root.capacity_node_seconds > 0.0 {
                root.allocated_node_seconds / root.capacity_node_seconds
            } else {
                0.0
            },
            system_energy_j: root.energy_j,
            total_work: root.total_work,
            makespan_s: root.max_now_s,
            events_processed: self.events_processed(),
            submitted: root.submitted,
            failed: root.failed,
            rejected: root.rejected,
            down_nodes: root.down_nodes,
            telemetry_dropouts: root.telemetry_dropouts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PowerAssignment, SystemPowerPolicy};
    use crate::spec::JobSpec;
    use pstack_apps::synthetic::{Profile, SyntheticApp};
    use pstack_hwmodel::{NodeConfig, VariationModel};
    use pstack_node::NodeManager;
    use pstack_sim::SeedTree;
    use std::sync::Arc;

    fn sched(n_nodes: usize, seed: u64, policy: SystemPowerPolicy) -> Scheduler {
        let seeds = SeedTree::new(seed);
        let nodes = NodeManager::fleet(
            n_nodes,
            NodeConfig::server_default(),
            &VariationModel::none(),
            &seeds,
        );
        Scheduler::new(nodes, policy, seeds.subtree("sched"))
    }

    fn job(id: u64, nodes: usize, submit_s: u64) -> JobSpec {
        JobSpec::rigid(
            id,
            Arc::new(SyntheticApp::new(Profile::ComputeHeavy, 20.0, 10)),
            nodes,
            SimTime::from_secs(submit_s),
        )
    }

    #[test]
    fn shards_are_proportional_and_sum_exactly() {
        let budget = 123_456.789;
        let caps = [4096usize, 2048, 1024, 17];
        let shards = shard_budgets(budget, &caps);
        assert_eq!(shards.len(), caps.len());
        let sum: f64 = shards.iter().sum();
        assert_eq!(sum.to_bits(), budget.to_bits(), "exact site-budget sum");
        // Proportionality within FP tolerance on all but the residue shard.
        let total: usize = caps.iter().sum();
        for (i, &c) in caps.iter().enumerate().take(caps.len() - 1) {
            let expect = budget * c as f64 / total as f64;
            assert!((shards[i] - expect).abs() < 1e-9 * budget);
        }
    }

    #[test]
    fn zero_capacity_enclave_gets_explicit_zero_share() {
        let budget = 98_765.432_1;
        // Zero-capacity enclaves anywhere in the list — including last,
        // which used to absorb the residue unconditionally and hand a dead
        // enclave a nonzero budget.
        for caps in [
            vec![0usize, 4096, 2048],
            vec![4096usize, 0, 2048],
            vec![4096usize, 2048, 0],
            vec![0usize, 4096, 0, 2048, 0],
        ] {
            let shards = shard_budgets(budget, &caps);
            let sum: f64 = shards.iter().sum();
            assert_eq!(sum.to_bits(), budget.to_bits(), "exact sum for {caps:?}");
            for (i, (&c, &s)) in caps.iter().zip(&shards).enumerate() {
                if c == 0 {
                    assert_eq!(s.to_bits(), 0.0f64.to_bits(), "shard {i} of {caps:?}");
                } else {
                    assert!(s > 0.0, "live shard {i} of {caps:?} must be positive");
                }
            }
        }
    }

    #[test]
    fn enclave_outage_kills_requeues_and_resharding_is_exact() {
        let site_budget = 8.0 * 450.0;
        let policy = || SystemPowerPolicy::budgeted(4.0 * 450.0, PowerAssignment::Unconstrained);
        let mut site = EnclaveSet::new(
            vec![
                ("a".into(), sched(4, 1, policy())),
                ("b".into(), sched(4, 2, policy())),
            ],
            2,
        );
        for (i, enc) in site.enclaves_mut().iter_mut().enumerate() {
            for j in 0..2u64 {
                enc.scheduler_mut().submit(job(i as u64 * 10 + j, 2, 0));
            }
        }
        site.schedule_enclave_outage(
            0,
            SimTime::from_secs(3),
            SimDuration::from_secs(60),
            Some(site_budget),
            EmergencyResponse::TightenCaps,
        );
        site.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(7200));
        let m = site.site_metrics();
        assert_eq!(m.submitted, 4);
        assert_eq!(
            m.completed + m.failed + m.rejected,
            4,
            "conservation across the outage"
        );
        assert_eq!(m.down_nodes, 0, "every node rejoined");
        let enc0 = &site.enclaves()[0];
        assert!(
            enc0.scheduler().trace().of_kind("node_fail").count() == 4
                && enc0.scheduler().trace().of_kind("node_recover").count() == 4,
            "all four enclave-a nodes cycled"
        );
        assert!(
            enc0.scheduler().trace().of_kind("job_kill").count() >= 1,
            "running work was killed by the outage"
        );
    }

    #[test]
    fn parallel_drain_is_byte_identical_to_serial() {
        let build = || {
            let mut site = EnclaveSet::new(
                vec![
                    ("a".into(), sched(4, 1, SystemPowerPolicy::unlimited())),
                    ("b".into(), sched(4, 2, SystemPowerPolicy::unlimited())),
                    ("c".into(), sched(4, 3, SystemPowerPolicy::unlimited())),
                    ("d".into(), sched(4, 4, SystemPowerPolicy::unlimited())),
                ],
                2,
            );
            for (i, enc) in site.enclaves_mut().iter_mut().enumerate() {
                for j in 0..3u64 {
                    enc.scheduler_mut().submit(job(i as u64 * 10 + j, 2, 7 * j));
                }
                enc.scheduler_mut()
                    .schedule_node_fail(SimTime::from_secs(10), i);
                enc.scheduler_mut()
                    .schedule_node_recover(SimTime::from_secs(300), i);
            }
            site
        };
        let digest = |site: &mut EnclaveSet| -> Vec<(u64, u64, u64)> {
            site.enclaves_mut()
                .iter_mut()
                .flat_map(|e| {
                    e.scheduler()
                        .records()
                        .iter()
                        .map(|r| (r.id.0, r.end.as_micros(), r.energy_j.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let mut serial = build();
        serial.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        let want = digest(&mut serial);
        for workers in [1usize, 2, 4, 8] {
            let mut site = build();
            site.run_until_drained_parallel(
                SimDuration::from_secs(1),
                SimTime::from_secs(3600),
                workers,
            );
            assert_eq!(
                digest(&mut site),
                want,
                "{workers}-worker drain must match serial bytes"
            );
            assert_eq!(site.events_processed(), serial.events_processed());
        }
    }

    #[test]
    fn idle_enclaves_cost_nothing() {
        let mut site = EnclaveSet::new(
            vec![
                ("busy".into(), sched(4, 1, SystemPowerPolicy::unlimited())),
                ("idle".into(), sched(4, 2, SystemPowerPolicy::unlimited())),
            ],
            2,
        );
        site.enclaves_mut()[0].scheduler_mut().submit(job(1, 2, 0));
        site.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
        let encs = site.enclaves();
        assert_eq!(encs[0].records().len(), 1);
        assert_eq!(
            encs[1].scheduler().now(),
            SimTime::ZERO,
            "an idle enclave must not advance at all"
        );
        assert_eq!(encs[1].scheduler().events().popped(), 0);
        assert!(site.events_processed() > 0);
    }

    #[test]
    fn tree_aggregation_matches_flat_sums() {
        let mk = || {
            let mut site = EnclaveSet::new(
                vec![
                    ("a".into(), sched(4, 1, SystemPowerPolicy::unlimited())),
                    ("b".into(), sched(2, 2, SystemPowerPolicy::unlimited())),
                    ("c".into(), sched(2, 3, SystemPowerPolicy::unlimited())),
                    ("d".into(), sched(2, 4, SystemPowerPolicy::unlimited())),
                    ("e".into(), sched(2, 5, SystemPowerPolicy::unlimited())),
                ],
                2,
            );
            for (i, enc) in site.enclaves_mut().iter_mut().enumerate() {
                enc.scheduler_mut()
                    .submit(job(i as u64 + 1, 2, 5 * i as u64));
            }
            site.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
            site
        };
        // fanout captured at construction; rebuild identically and compare
        // per-enclave sums computed flat against the tree fold.
        let mut site = mk();
        let m = site.site_metrics();
        let mut completed = 0usize;
        let mut energy = 0.0f64;
        let mut work = 0.0f64;
        for enc in site.enclaves_mut() {
            let em = enc.sched.metrics();
            completed += em.completed;
            energy += em.system_energy_j;
            work += em.total_work;
        }
        assert_eq!(m.enclaves, 5);
        assert_eq!(m.nodes, 12);
        assert_eq!(m.completed, completed);
        assert!((m.system_energy_j - energy).abs() < 1e-6 * energy.max(1.0));
        assert!((m.total_work - work).abs() < 1e-9 * work.max(1.0));
        assert!(m.makespan_s > 0.0);
        assert!(m.jobs_per_hour > 0.0);
    }

    #[test]
    fn site_budget_change_shards_into_every_enclave() {
        let policy = || SystemPowerPolicy::budgeted(8.0 * 450.0, PowerAssignment::Unconstrained);
        let mut site = EnclaveSet::new(
            vec![
                ("a".into(), sched(4, 1, policy())),
                ("b".into(), sched(4, 2, policy())),
            ],
            2,
        );
        site.schedule_site_budget_change(
            SimTime::from_secs(10),
            Some(2.0 * 450.0 + 6.0 * 130.0),
            EmergencyResponse::PauseJobs,
        );
        for enc in site.enclaves() {
            assert_eq!(
                enc.scheduler().events().len(),
                1,
                "each enclave gets its shard event"
            );
        }
        for (i, enc) in site.enclaves_mut().iter_mut().enumerate() {
            for j in 0..2u64 {
                enc.scheduler_mut().submit(job(i as u64 * 10 + j, 1, 0));
            }
        }
        site.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(7200));
        let m = site.site_metrics();
        assert_eq!(m.completed, 4, "all jobs complete under the sharded cut");
        // The cut actually fired in each enclave (trace carries the event).
        for enc in site.enclaves() {
            assert_eq!(enc.scheduler().trace().of_kind("budget_change").count(), 1);
        }
    }
}
