//! Regenerate the §4 ablation studies: malleability granularity (A1),
//! static build variants under power caps (A2), and hardware
//! overprovisioning (A3).

use powerstack_core::experiments::ablations;
use serde::Serialize;

#[derive(Serialize)]
struct All {
    a1: Vec<ablations::MalleabilityRow>,
    a2: Vec<ablations::VariantRow>,
    a3: Vec<ablations::OverprovisionRow>,
}

fn main() {
    pstack_analyze::startup_gate();
    let (a1, a2, a3) = pstack_bench::traced("ablations", |_tc| {
        let a1 = pstack_bench::timed("A1 malleability", || {
            ablations::malleability(&[2, 5, 10, 20, 40], 16, 600.0, 20200910)
        });
        let a2 = pstack_bench::timed("A2 static variants", || {
            ablations::static_variants(&[0.0, 320.0, 260.0, 220.0], 20200911)
        });
        let a3 = pstack_bench::timed("A3 overprovisioning", || {
            ablations::overprovisioning(&[4, 6, 8, 10, 12, 16], 4.0 * 450.0, 8, 80.0, 20200912)
        });
        (a1, a2, a3)
    });
    let rendered = ablations::render(&a1, &a2, &a3);
    pstack_bench::emit("ablations", &rendered, &All { a1, a2, a3 });
}
