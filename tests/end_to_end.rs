//! Integration tests: the full stack wired together, exercised through the
//! facade crate's public API.

// Integration tests are exempt from the workspace unwrap policy.
#![allow(clippy::disallowed_methods)]

use powerstack::core::experiments::{fig1, fig3, fig6, uc6, uc7};
use powerstack::core::framework::{Scenario, TuningLevel};
use powerstack::prelude::*;
use std::sync::Arc;

/// The headline claim: under a tight budget, end-to-end tuning improves
/// system efficiency over no tuning, and never loses jobs.
#[test]
fn opportunity_analysis_shape() {
    let budget = 8.0 * 330.0;
    let r = fig1::run(&[Some(budget)], 8, 8, 0.5, 1001);
    let get = |t: TuningLevel| r.rows.iter().find(|x| x.tuning == t).unwrap();
    let none = get(TuningLevel::None);
    let e2e = get(TuningLevel::EndToEnd);
    assert_eq!(none.completed, 8);
    assert_eq!(e2e.completed, 8);
    assert!(e2e.work_per_kj > none.work_per_kj);
    assert!(e2e.mean_power_w <= budget * 1.10);
}

/// Figure 3: every GEOPM policy mode respects the budget; the dynamic mode
/// is competitive with the static one.
#[test]
fn geopm_policy_modes_respect_budget() {
    let r = fig3::run(&[6.0 * 320.0], 6, 5, 0.4, 1002);
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        assert_eq!(row.completed, 5, "{:?}", row.mode);
        assert!(row.mean_power_w <= row.budget_w * 1.10);
    }
}

/// Figure 6: the corridor experiment completes and redistribution helps.
#[test]
fn corridor_enforcement_shape() {
    let r = fig6::run(8, 150.0, 1003);
    let base = r.rows.iter().find(|x| x.strategy == "None").unwrap();
    let redis = r
        .rows
        .iter()
        .find(|x| x.strategy == "NodeRedistribution")
        .unwrap();
    assert!(
        redis.upper_violations < base.upper_violations
            || redis.in_corridor_fraction > base.in_corridor_fraction,
        "redistribution must improve corridor adherence: {redis:?} vs {base:?}"
    );
    assert!(redis.redistributions > 0);
    assert!(!redis.power_series.is_empty());
}

/// §3.2.6: COUNTDOWN stays performance-neutral while saving energy.
#[test]
fn countdown_performance_neutrality() {
    let r = uc6::run(&[8], 10.0, 1004);
    for row in &r.rows {
        assert!(
            row.slowdown_pct < 5.0,
            "{}: {}%",
            row.mode,
            row.slowdown_pct
        );
    }
    let wc = r.rows.iter().find(|x| x.mode == "wait+copy").unwrap();
    assert!(wc.energy_saving_pct > 3.0);
}

/// §3.2.7: the communication layer composes both runtimes' savings.
#[test]
fn two_runtimes_coordination() {
    let r = uc7::run(2, 40, 0.6, 1005);
    let get = |name: &str| r.rows.iter().find(|x| x.variant == name).unwrap();
    let coord = get("both-coordinated").energy_saving_pct;
    let best_single = get("countdown-only")
        .energy_saving_pct
        .max(get("meric-only").energy_saving_pct);
    assert!(coord >= best_single - 1.0);
}

/// The whole cluster simulation is bit-deterministic from the master seed.
#[test]
fn full_stack_determinism() {
    let scenario = Scenario {
        n_nodes: 6,
        system_budget_w: Some(6.0 * 350.0),
        tuning: TuningLevel::EndToEnd,
        n_jobs: 5,
        seed: 12345,
        job_scale: 0.4,
    };
    let a = scenario.run();
    let b = scenario.run();
    assert_eq!(a, b);
}

/// Moldable jobs, the app node-count rule, and power admission interact
/// correctly: a LULESH job on a 30-node fleet takes a cube.
#[test]
fn moldability_respects_cubic_rule_in_full_scheduler() {
    let seeds = SeedTree::new(77);
    let fleet = NodeManager::fleet(
        30,
        NodeConfig::server_default(),
        &VariationModel::none(),
        &seeds,
    );
    let mut sched = Scheduler::new(
        fleet,
        SystemPowerPolicy::unlimited(),
        seeds.subtree("sched"),
    );
    sched.submit(JobSpec::moldable(
        1,
        Arc::new(Lulesh::new(100.0, 20)),
        1,
        30,
        SimTime::ZERO,
    ));
    sched.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
    assert_eq!(sched.records().len(), 1);
    assert_eq!(sched.records()[0].nodes, 27, "largest cube ≤ 30");
}

/// The RM→GEOPM endpoint: a mid-run policy change reaches the hardware.
#[test]
fn endpoint_policy_update_through_full_stack() {
    let seeds = SeedTree::new(88);
    let mut nodes = NodeManager::fleet(
        2,
        NodeConfig::server_default(),
        &VariationModel::none(),
        &seeds,
    );
    let app = SyntheticApp::new(Profile::ComputeHeavy, 60.0, 30);
    let mut runner = JobRunner::new(
        &app.workload(2),
        2,
        &MpiModel::typical(),
        &seeds,
        ArbiterMode::Gated,
    );
    let mut geopm = Geopm::new(GeopmPolicy::Monitor);
    let endpoint = geopm.endpoint();
    let mut agents: Vec<&mut dyn RuntimeAgent> = vec![&mut geopm];
    let t = runner.advance(
        SimTime::ZERO,
        SimTime::from_secs(5),
        &mut nodes,
        &mut agents,
    );
    // The "site" tightens power mid-run.
    endpoint.send(powerstack::runtime::geopm::PolicyUpdate {
        policy: GeopmPolicy::PowerGovernor { node_cap_w: 260.0 },
    });
    runner.advance(t, t + SimDuration::from_secs(2), &mut nodes, &mut agents);
    drop(agents);
    for nm in &nodes {
        assert_eq!(nm.read(Signal::PowerCapWatts), 260.0);
    }
}

/// Energy accounting is consistent across layers: the sum of per-job
/// energies plus idle energy equals total system energy.
#[test]
fn energy_accounting_consistency() {
    let seeds = SeedTree::new(99);
    let fleet = NodeManager::fleet(
        4,
        NodeConfig::server_default(),
        &VariationModel::none(),
        &seeds,
    );
    let mut sched = Scheduler::new(
        fleet,
        SystemPowerPolicy::unlimited(),
        seeds.subtree("sched"),
    );
    for i in 0..3 {
        sched.submit(JobSpec::rigid(
            i,
            Arc::new(SyntheticApp::new(Profile::Mixed, 10.0, 5)),
            1,
            SimTime::ZERO,
        ));
    }
    sched.run_until_drained(SimDuration::from_secs(1), SimTime::from_secs(3600));
    let job_energy: f64 = sched.records().iter().map(|r| r.energy_j).sum();
    let total = sched.metrics().system_energy_j;
    assert!(
        job_energy < total,
        "job energy {job_energy} must be below system total {total} (idle draw exists)"
    );
    assert!(
        job_energy > 0.3 * total,
        "jobs dominate: {job_energy} vs {total}"
    );
}
