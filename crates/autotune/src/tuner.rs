//! The autotuning loop (Figure 4).
//!
//! `Tuner` wires a [`SearchAlgorithm`] to an evaluator closure (the paper's
//! `plopper`: "compiles the code and executes it to get the execution time")
//! and repeats suggest → evaluate → record until the evaluation budget
//! (`--max-evals`, default 100 in ytopt) is spent.
//!
//! Two drivers share the loop logic: [`Tuner::run`] evaluates serially, and
//! [`Tuner::run_parallel`] asks the algorithm for whole batches
//! ([`SearchAlgorithm::suggest_batch`]) and fans evaluations out over a
//! scoped thread pool. Batch composition depends only on the seed and batch
//! size — never on the worker count — and results are recorded in suggestion
//! order, so a seeded run reproduces the identical [`TuneReport`] whether it
//! used one worker or eight. An evaluation cache memoizes `(objective, aux)`
//! per configuration so duplicate suggestions (common in warm-started runs)
//! never re-simulate.

use crate::ckpt::{
    checkpoint_tick, ActiveSession, CheckpointOpts, EvalRecord, InterruptFn, RestoredState,
};
use crate::db::PerfDatabase;
use crate::faultlog::FaultLog;
use crate::resilient::EvalError;
use crate::search::SearchAlgorithm;
use crate::space::{Config, ParamSpace};
use pstack_sync::{sites, Ordering, SyncAtomicUsize, SyncMutex};
use pstack_trace::{AttrValue, ProfileBuilder, ProfileSummary, SpanId, TraceCollector};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Stable 16-hex-digit fingerprint of a configuration, used as the `config`
/// attribute on trace spans (FNV-1a over the index vector).
pub fn config_fingerprint(cfg: &Config) -> String {
    let mut bytes = Vec::with_capacity(cfg.len() * 8);
    for &v in cfg {
        bytes.extend_from_slice(&(v as u64).to_le_bytes());
    }
    format!("{:016x}", pstack_trace::hash64(&bytes))
}

/// The outcome of evaluating one configuration: the objective being
/// minimized plus named auxiliary metrics (e.g. power, energy).
pub type Evaluation = (f64, HashMap<String, f64>);

/// A stateful batch evaluator — the tuner-side surface of an amortized
/// evaluation fast path.
///
/// Closure evaluators rebuild their scenario state on every call; a
/// `BatchEvaluator` owns reusable state (an arena, pre-sized buffers, a
/// warm simulator) that is *reset in place* between evaluations. The
/// `*_with` drivers ([`Tuner::run_with`], [`Tuner::run_parallel_with`],
/// [`Tuner::run_resilient_with`](crate::resilient),
/// [`Tuner::run_parallel_resilient_with`](crate::resilient)) feed whole
/// `suggest_batch` proposals through one evaluator per round. Reports stay
/// byte-identical to the closure drivers: suggestion order, cache
/// accounting, fault verdicts and WAL records are unchanged — only the
/// per-evaluation setup cost is amortized.
pub trait BatchEvaluator {
    /// Evaluate one configuration, returning `(objective, aux)`.
    fn evaluate(&mut self, space: &ParamSpace, cfg: &Config) -> Evaluation;

    /// Fallible form used by the resilient drivers; `attempt` counts from
    /// zero per configuration. The default delegates to the infallible
    /// [`evaluate`](Self::evaluate).
    ///
    /// # Errors
    /// Implementations return [`EvalError`] for attempts that should enter
    /// the retry/quarantine machinery; the default never fails.
    fn evaluate_attempt(
        &mut self,
        space: &ParamSpace,
        cfg: &Config,
        attempt: usize,
    ) -> Result<Evaluation, EvalError> {
        let _ = attempt;
        Ok(self.evaluate(space, cfg))
    }

    /// Monotone counter of internal state-reuse hits (e.g. arena resets
    /// that recycled allocations), reported as the `reuse_hits` attribute
    /// on each `evaluate_many` span. Defaults to zero for evaluators
    /// without reusable state.
    fn reuse_hits(&self) -> usize {
        0
    }
}

/// `fn`-pointer stand-in for the pool closure type parameter when a driver
/// dispatches through a [`BatchEvaluator`] instead.
pub(crate) type EvalFn = fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>);

/// How a batched round's fresh configurations get evaluated: fanned out
/// over a pool of scoped worker threads sharing a `Sync` closure, or fed
/// serially through one stateful [`BatchEvaluator`] (the amortized fast
/// path — no per-evaluation state rebuild, no thread handoff).
pub(crate) enum EvalDispatch<'a, F> {
    Pool {
        workers: usize,
        evaluate: F,
    },
    Batched {
        evaluator: &'a mut dyn BatchEvaluator,
    },
}

/// Fan `fresh` out over up to `workers` scoped threads (serially for a
/// single worker or item), appending one result per configuration to
/// `outputs` *in suggestion order*. `slots` is reusable scratch owned by
/// the caller: both buffers keep their allocations across rounds, so the
/// steady-state loop allocates nothing per proposal.
pub(crate) fn fan_out<T: Send>(
    fresh: &[Config],
    workers: usize,
    slots: &mut Vec<SyncMutex<Option<T>>>,
    outputs: &mut Vec<T>,
    run_one: impl Fn(&Config, usize) -> T + Sync,
) {
    if workers == 1 || fresh.len() <= 1 {
        outputs.extend(fresh.iter().map(|cfg| run_one(cfg, 0)));
        return;
    }
    slots.clear();
    slots.resize_with(fresh.len(), || SyncMutex::new(sites::POOL_SLOT, None));
    // Relaxed: a pure index dispenser — each index is claimed exactly once
    // by atomicity alone; slot contents are published by the scope join.
    let next = SyncAtomicUsize::new(sites::POOL_CURSOR, 0);
    std::thread::scope(|scope| {
        for worker in 0..workers.min(fresh.len()) {
            let next = &next;
            let slots = &*slots;
            let run_one = &run_one;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = fresh.get(i) else { break };
                let out = run_one(cfg, worker);
                // Poison-tolerant: a panicked sibling must not turn into a
                // cascading poison panic here — the slot value is plain data.
                *slots[i].lock() = Some(out);
            });
        }
    });
    outputs.extend(slots.iter_mut().map(|slot| {
        slot.get_mut()
            .take()
            .expect("every slot was claimed and filled")
    }));
}

/// Hit/miss counters for the evaluation cache.
///
/// A *hit* is a suggested configuration whose result was already known (from
/// an earlier evaluation or a warm-start prior) and therefore cost nothing; a
/// *miss* triggered a real evaluation. `hits + misses` equals the number of
/// suggestions the tuner accepted from the algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Suggestions answered from the cache (no evaluator call).
    pub hits: usize,
    /// Suggestions that ran the evaluator.
    pub misses: usize,
}

/// Why a tuning run could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The algorithm proposed nothing and no warm-start prior exists, so
    /// there is no best configuration to report (e.g. an exhaustive sweep
    /// over a space whose constraints reject every point).
    NoEvaluations {
        /// Name of the algorithm that produced nothing.
        algorithm: String,
    },
    /// Static analysis of the run's inputs failed: the warm-start prior
    /// contains configurations outside the space, or the algorithm
    /// suggested an invalid configuration. Carries one rendered diagnostic
    /// per finding so lint failures propagate through `run`/`run_parallel`
    /// as errors instead of panics.
    Diagnostic {
        /// What was being checked, e.g. `"warm-start prior"`.
        context: String,
        /// One human-readable line per finding.
        diagnostics: Vec<String>,
    },
    /// A crash-injection hook ([`Tuner::interrupt_when`]) aborted the run
    /// after the given ordinal's WAL append. The checkpoint on disk is
    /// consistent; the matching `resume_*` driver continues the session.
    Interrupted {
        /// Ordinal of the last record made durable before the abort.
        at_ordinal: usize,
    },
    /// Checkpoint storage or schema problem: unreadable snapshot, session
    /// metadata that does not match the resume arguments, or a resumed
    /// search that diverged from its write-ahead log.
    Checkpoint {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoEvaluations { algorithm } => write!(
                f,
                "tuning with {algorithm} produced no evaluations and no warm-start prior exists"
            ),
            TuneError::Diagnostic {
                context,
                diagnostics,
            } => write!(
                f,
                "tuning rejected by static checks ({context}): {}",
                diagnostics.join("; ")
            ),
            TuneError::Interrupted { at_ordinal } => write!(
                f,
                "tuning session interrupted after ordinal {at_ordinal}; the checkpoint is \
                 consistent and the session can be resumed"
            ),
            TuneError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Result of a tuning run.
///
/// Serializes deterministically (the vendored serde sorts map keys), so two
/// identically-seeded runs render byte-identical JSON — the replayability
/// contract the chaos suite asserts.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Algorithm name (the *active* algorithm: the fallback's name when a
    /// resilient run degraded).
    pub algorithm: String,
    /// The full performance database.
    pub db: PerfDatabase,
    /// Best configuration found.
    pub best_config: Config,
    /// Best objective found.
    pub best_objective: f64,
    /// Number of evaluations actually performed.
    pub evals: usize,
    /// Evaluation-cache counters (hits are suggestions that never
    /// re-simulated).
    pub cache: CacheStats,
    /// What was injected and survived. Empty for the fault-free drivers;
    /// populated by [`Tuner::run_resilient`] /
    /// [`Tuner::run_parallel_resilient`].
    pub faults: FaultLog,
    /// Where the run spent its time: per-stage count/total/mean/p95 plus
    /// cache and retry attribution. Populated by every driver.
    ///
    /// **Not serialized**: timing is a wall-clock measurement, so including
    /// it would break the byte-identical-replay contract (and the golden
    /// artifacts' tolerance). Render it via
    /// [`ProfileSummary::render`]/[`ProfileSummary::to_json`]; a
    /// deserialized report carries an empty summary.
    pub profile: ProfileSummary,
}

// Manual serde impls: exactly the seven canonical fields, in declaration
// order, matching what the derive produced before `profile` existed. The
// vendored serde has no `#[serde(skip)]`, and `profile` must stay out of
// the canonical JSON (see its doc comment).
impl Serialize for TuneReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("db".to_string(), self.db.to_value()),
            ("best_config".to_string(), self.best_config.to_value()),
            ("best_objective".to_string(), self.best_objective.to_value()),
            ("evals".to_string(), self.evals.to_value()),
            ("cache".to_string(), self.cache.to_value()),
            ("faults".to_string(), self.faults.to_value()),
        ])
    }
}

impl Deserialize for TuneReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| serde::Error::msg(format!("TuneReport missing field `{k}`")))
        };
        Ok(TuneReport {
            algorithm: String::from_value(field("algorithm")?)?,
            db: PerfDatabase::from_value(field("db")?)?,
            best_config: Config::from_value(field("best_config")?)?,
            best_objective: f64::from_value(field("best_objective")?)?,
            evals: usize::from_value(field("evals")?)?,
            cache: CacheStats::from_value(field("cache")?)?,
            faults: FaultLog::from_value(field("faults")?)?,
            profile: ProfileSummary::default(),
        })
    }
}

/// The tuning loop driver.
///
/// # Example
///
/// ```
/// use pstack_autotune::{ForestSearch, Param, ParamSpace, Tuner};
///
/// let space = ParamSpace::new()
///     .with(Param::ints("tile", [8, 16, 32, 64]))
///     .with(Param::ints("unroll", [1, 2, 4]));
/// let report = Tuner::new(space)
///     .max_evals(20)
///     .seed(42)
///     .run(&mut ForestSearch::new(), |space, cfg| {
///         // "plopper": evaluate the candidate (here: an analytic stand-in).
///         let tile = space.value(cfg, "tile").as_int() as f64;
///         let unroll = space.value(cfg, "unroll").as_int() as f64;
///         ((tile - 32.0).abs() + unroll, Default::default())
///     })
///     .expect("space is non-empty");
/// // The 12-point space is exhausted before the budget runs out.
/// assert_eq!(report.evals, 12);
/// assert_eq!(report.best_objective, 1.0); // tile=32, unroll=1
/// ```
#[derive(Clone)]
pub struct Tuner {
    pub(crate) space: ParamSpace,
    pub(crate) max_evals: usize,
    pub(crate) seed: u64,
    pub(crate) warm_start: Option<PerfDatabase>,
    pub(crate) max_consecutive_duplicates: usize,
    pub(crate) batch_size: usize,
    pub(crate) trace: Option<Arc<TraceCollector>>,
    pub(crate) checkpoint: Option<CheckpointOpts>,
    pub(crate) interrupt: Option<Arc<InterruptFn>>,
}

impl Tuner {
    /// ytopt-like default budget of 100 evaluations.
    pub const DEFAULT_MAX_EVALS: usize = 100;

    /// Consecutive duplicate suggestions tolerated before a run is declared
    /// exhausted for its strategy. Applies identically to the serial and
    /// batch loops (a batch contributes its duplicates in suggestion order).
    pub const DEFAULT_MAX_CONSECUTIVE_DUPLICATES: usize = 16;

    /// Default number of suggestions asked for per batch in
    /// [`run_parallel`](Self::run_parallel). Deliberately independent of the
    /// worker count so that changing workers never changes the search
    /// trajectory.
    pub const DEFAULT_BATCH_SIZE: usize = 8;

    /// Create a tuner over `space`.
    pub fn new(space: ParamSpace) -> Self {
        Tuner {
            space,
            max_evals: Self::DEFAULT_MAX_EVALS,
            seed: 0,
            warm_start: None,
            max_consecutive_duplicates: Self::DEFAULT_MAX_CONSECUTIVE_DUPLICATES,
            batch_size: Self::DEFAULT_BATCH_SIZE,
            trace: None,
            checkpoint: None,
            interrupt: None,
        }
    }

    /// Attach a trace collector: every driver then records a root span, one
    /// `eval` span per real evaluation (worker id, config fingerprint,
    /// objective, retry/fault attribution), and cache-hit events. Tracing
    /// never changes the search trajectory — an untraced run is merely
    /// unobserved. The [`TuneReport::profile`] summary is populated with or
    /// without a collector.
    pub fn with_trace(mut self, collector: Arc<TraceCollector>) -> Self {
        self.trace = Some(collector);
        self
    }

    /// Seed the run with a prior performance database (transfer from earlier
    /// runs of the same space — the site "historic profile information"
    /// pattern of the paper's §3.2.2 mode 2, and the warm-start used by
    /// transfer-learning tuners). Prior observations inform the surrogate
    /// and are never re-evaluated, but do not count against the budget.
    ///
    /// Prior configurations are validated against the space when the run
    /// starts; invalid ones surface as [`TuneError::Diagnostic`] from
    /// [`Tuner::run`] / [`Tuner::run_parallel`].
    pub fn warm_start(mut self, prior: PerfDatabase) -> Self {
        self.warm_start = Some(prior);
        self
    }

    /// Set the evaluation budget (`--max-evals`).
    ///
    /// # Panics
    /// Panics on a zero budget.
    pub fn max_evals(mut self, n: usize) -> Self {
        assert!(n > 0, "budget must be positive");
        self.max_evals = n;
        self
    }

    /// Set the RNG seed for reproducible runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Tolerance for consecutive duplicate suggestions before the run ends
    /// early (default [`Self::DEFAULT_MAX_CONSECUTIVE_DUPLICATES`]).
    ///
    /// # Panics
    /// Panics on zero (the run could never accept a single duplicate).
    pub fn max_consecutive_duplicates(mut self, n: usize) -> Self {
        assert!(n > 0, "duplicate tolerance must be positive");
        self.max_consecutive_duplicates = n;
        self
    }

    /// Suggestions requested per ask-tell round in
    /// [`run_parallel`](Self::run_parallel) (default
    /// [`Self::DEFAULT_BATCH_SIZE`]). Larger batches expose more parallelism
    /// but give model-based algorithms staler feedback between fits.
    ///
    /// # Panics
    /// Panics on a zero batch size.
    pub fn batch_size(mut self, k: usize) -> Self {
        assert!(k > 0, "batch size must be positive");
        self.batch_size = k;
        self
    }

    /// Checkpoint this run into `dir`: a write-ahead log of evaluation
    /// outcomes (appended before the search observes each result) plus
    /// periodic full-state snapshots, so a killed run resumes via
    /// [`resume`](Self::resume) / [`resume_parallel`](Self::resume_parallel)
    /// (and the resilient siblings) and reproduces the uninterrupted run's
    /// report byte-for-byte. Starting a `run_*` driver with a checkpoint
    /// directory truncates any previous session in it.
    pub fn checkpoint(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint = Some(CheckpointOpts::new(dir));
        self
    }

    /// Snapshot cadence in records (default
    /// [`CheckpointOpts::DEFAULT_SNAPSHOT_EVERY`]). Parallel drivers
    /// snapshot at the first round boundary at or past the cadence.
    ///
    /// # Panics
    /// Panics on zero, or when called before [`checkpoint`](Self::checkpoint).
    pub fn snapshot_every(mut self, n: usize) -> Self {
        assert!(n > 0, "snapshot cadence must be positive");
        self.checkpoint
            .as_mut()
            .expect("call checkpoint(dir) before snapshot_every")
            .snapshot_every = n;
        self
    }

    /// `fsync` the WAL every `n` appends (default 1: every record durable
    /// before the search sees it). Larger values trade a bounded window of
    /// re-evaluable work for throughput.
    ///
    /// # Panics
    /// Panics on zero, or when called before [`checkpoint`](Self::checkpoint).
    pub fn fsync_every(mut self, n: usize) -> Self {
        assert!(n > 0, "fsync cadence must be positive");
        self.checkpoint
            .as_mut()
            .expect("call checkpoint(dir) before fsync_every")
            .fsync_every = n;
        self
    }

    /// Install a crash-injection hook: `f` is called with each ordinal just
    /// after its WAL append, and returning `true` aborts the run with
    /// [`TuneError::Interrupted`] — simulating the process dying right
    /// after the write hit disk. Only consulted when a checkpoint directory
    /// is configured, and never for replayed records (a resumed run cannot
    /// be re-killed at an ordinal it already survived).
    pub fn interrupt_when(mut self, f: impl Fn(usize) -> bool + Send + Sync + 'static) -> Self {
        self.interrupt = Some(Arc::new(f));
        self
    }

    /// The space being tuned.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Open the driver's root span on the attached collector, if any, with
    /// the attributes every driver shares.
    pub(crate) fn open_root(
        &self,
        driver: &str,
        algorithm: &str,
    ) -> Option<pstack_trace::SpanGuard<'_>> {
        self.trace.as_deref().map(|t| {
            let mut s = t.span(driver);
            s.attr("algorithm", algorithm);
            s.attr("seed", self.seed);
            s.attr("max_evals", self.max_evals);
            s
        })
    }

    /// Run the loop serially. `evaluate` maps a configuration to
    /// `(objective, aux)`; the objective is minimized.
    ///
    /// Configurations the algorithm re-suggests are answered from the
    /// evaluation cache (a hit in [`TuneReport::cache`]) without consuming
    /// budget, but after [`max_consecutive_duplicates`]
    /// (`Self::max_consecutive_duplicates`) consecutive duplicates the run
    /// ends early — the space is exhausted for this strategy.
    ///
    /// # Errors
    /// [`TuneError::NoEvaluations`] when the algorithm proposes nothing and
    /// there is no warm-start prior to fall back on.
    pub fn run(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        evaluate: impl FnMut(&ParamSpace, &Config) -> (f64, HashMap<String, f64>),
    ) -> Result<TuneReport, TuneError> {
        let session = self.open_session("run", algorithm, None, None)?;
        self.run_impl(algorithm, evaluate, session, None)
    }

    /// Resume a killed [`run`](Self::run) session from the checkpoint
    /// directory configured with [`checkpoint`](Self::checkpoint).
    ///
    /// The snapshot restores the database, cache, RNG and algorithm state;
    /// the WAL tail then *replays* into the re-driven search, answering
    /// each logged configuration without calling `evaluate`. Session
    /// metadata overrides this tuner's seed/budget settings, so the
    /// resumed run finishes exactly as the uninterrupted one would have —
    /// byte-identical report for any kill point.
    ///
    /// # Errors
    /// [`TuneError::Checkpoint`] when no checkpoint directory is
    /// configured, the session is unreadable, or its metadata (driver,
    /// space fingerprint, algorithm name/schema) does not match; otherwise
    /// as [`run`](Self::run).
    pub fn resume(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        evaluate: impl FnMut(&ParamSpace, &Config) -> (f64, HashMap<String, f64>),
    ) -> Result<TuneReport, TuneError> {
        let (tuner, session, restored) = self.load_session("run", algorithm, None)?;
        tuner.run_impl(algorithm, evaluate, Some(session), Some(restored))
    }

    /// [`run`](Self::run) through a stateful [`BatchEvaluator`] instead of
    /// a closure: the evaluator's reusable state (e.g. an arena) survives
    /// across evaluations, amortizing all per-evaluation setup.
    ///
    /// The report is byte-identical to [`run`](Self::run) with an
    /// equivalent closure — the loop, cache accounting, spans and WAL
    /// records are shared. A session checkpointed here resumes via
    /// [`resume`](Self::resume) (with a closure) or by calling this again
    /// after [`checkpoint`](Self::checkpoint) — the WAL does not record how
    /// evaluations were dispatched.
    ///
    /// # Errors
    /// As [`run`](Self::run).
    pub fn run_with(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        evaluator: &mut dyn BatchEvaluator,
    ) -> Result<TuneReport, TuneError> {
        let session = self.open_session("run", algorithm, None, None)?;
        self.run_impl(
            algorithm,
            |space, cfg| evaluator.evaluate(space, cfg),
            session,
            None,
        )
    }

    fn run_impl(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        mut evaluate: impl FnMut(&ParamSpace, &Config) -> (f64, HashMap<String, f64>),
        mut session: Option<ActiveSession>,
        restored: Option<RestoredState>,
    ) -> Result<TuneReport, TuneError> {
        self.preflight()?;
        let mut profile = ProfileBuilder::new();
        let mut root = self.open_root("tuner.run", algorithm.name());
        let (mut db, prior_len, mut cache, mut stats, mut rng, mut consecutive_dups) =
            self.loop_state(restored);
        // Fresh sessions snapshot their starting state immediately, so a
        // resume target exists before the first evaluation completes.
        checkpoint_tick(
            &mut session,
            &db,
            &cache,
            stats,
            &rng,
            consecutive_dups,
            &*algorithm,
            None,
            || None,
        )?;
        while db.len() - prior_len < self.max_evals {
            let t_suggest = Instant::now();
            let suggestion = algorithm.suggest(&self.space, &db, &mut rng);
            profile.sample("suggest", t_suggest.elapsed().as_secs_f64());
            let Some(cfg) = suggestion else {
                break; // strategy exhausted (e.g. grid complete)
            };
            self.check_valid(algorithm, &cfg)?;
            if cache.contains_key(&cfg) {
                stats.hits += 1;
                if let Some(root) = root.as_mut() {
                    root.event_with(
                        "cache_hit",
                        vec![(
                            "config".to_string(),
                            AttrValue::Str(config_fingerprint(&cfg)),
                        )],
                    );
                }
                consecutive_dups += 1;
                if consecutive_dups >= self.max_consecutive_duplicates {
                    break;
                }
                continue;
            }
            consecutive_dups = 0;
            stats.misses += 1;
            let replayed = match session.as_mut() {
                Some(s) => s.replay_next(&cfg)?,
                None => None,
            };
            let (objective, aux) = match replayed {
                Some(rec) => {
                    // Answered from the WAL: no evaluator call, but the
                    // profile keeps its one-sample-per-miss invariant.
                    profile.sample("evaluate", 0.0);
                    let Some(objective) = rec.objective else {
                        return Err(TuneError::Checkpoint {
                            detail: format!(
                                "record {} has no objective, but the fault-free driver never \
                                 quarantines",
                                rec.ordinal
                            ),
                        });
                    };
                    (objective, rec.aux)
                }
                None => {
                    let mut span = root.as_ref().map(|r| {
                        let mut s = r.child("eval");
                        s.attr("worker", 0usize);
                        s.attr("config", config_fingerprint(&cfg));
                        s
                    });
                    let t_eval = Instant::now();
                    let (objective, aux) = evaluate(&self.space, &cfg);
                    profile.sample("evaluate", t_eval.elapsed().as_secs_f64());
                    if let Some(s) = span.as_mut() {
                        s.attr("objective", objective);
                    }
                    drop(span);
                    if let Some(s) = session.as_mut() {
                        s.log(&EvalRecord {
                            ordinal: s.next_ordinal(),
                            config: cfg.clone(),
                            objective: Some(objective),
                            aux: aux.clone(),
                            events: Vec::new(),
                            failed_attempts: 0,
                            backoff_s: 0.0,
                        })?;
                    }
                    (objective, aux)
                }
            };
            cache.insert(cfg.clone(), (objective, aux.clone()));
            db.record(cfg, objective, aux);
            checkpoint_tick(
                &mut session,
                &db,
                &cache,
                stats,
                &rng,
                consecutive_dups,
                &*algorithm,
                None,
                || None,
            )?;
        }
        if let Some(s) = session.as_mut() {
            s.finish()?;
        }
        let report = self.report(algorithm, db, prior_len, stats, profile);
        if let (Some(root), Ok(report)) = (root.as_mut(), &report) {
            root.attr("evals", report.evals);
            root.attr("best_objective", report.best_objective);
        }
        report
    }

    /// Loop state for a driver: either rebuilt from a restored snapshot or
    /// initialized fresh from the tuner's settings.
    pub(crate) fn loop_state(
        &self,
        restored: Option<RestoredState>,
    ) -> (
        PerfDatabase,
        usize,
        HashMap<Config, Evaluation>,
        CacheStats,
        SmallRng,
        usize,
    ) {
        match restored {
            Some(r) => (
                r.db,
                r.prior_len,
                r.cache,
                r.stats,
                r.rng,
                r.consecutive_dups,
            ),
            None => {
                let db = self.warm_start.clone().unwrap_or_default();
                let prior_len = db.len();
                let cache = self.prior_cache(&db);
                (
                    db,
                    prior_len,
                    cache,
                    CacheStats::default(),
                    SmallRng::seed_from_u64(self.seed),
                    0,
                )
            }
        }
    }

    /// Run the loop with batched suggestions and a pool of `workers` threads
    /// evaluating each batch concurrently (scoped threads; no evaluation
    /// outlives the call).
    ///
    /// Determinism: batches are composed from the seeded RNG and the batch
    /// size alone, and results are recorded in suggestion order, so for any
    /// algorithm a seeded run returns the identical [`TuneReport`] for 1
    /// worker or 100. For [`RandomSearch`](crate::RandomSearch) the batched
    /// run is additionally equivalent to the serial [`run`](Self::run)
    /// (its batch-aware sampler consumes the same RNG stream).
    ///
    /// `evaluate` must be `Sync`: it is shared by reference across workers.
    ///
    /// # Example
    ///
    /// ```
    /// use pstack_autotune::{Param, ParamSpace, RandomSearch, Tuner};
    ///
    /// let space = ParamSpace::new()
    ///     .with(Param::ints("tile", [8, 16, 32, 64]))
    ///     .with(Param::ints("unroll", [1, 2, 4]));
    /// let tuner = Tuner::new(space).max_evals(10).seed(42);
    /// let parallel = tuner
    ///     .run_parallel(&mut RandomSearch::new(), 4, |space, cfg| {
    ///         let tile = space.value(cfg, "tile").as_int() as f64;
    ///         ((tile - 32.0).abs(), Default::default())
    ///     })
    ///     .expect("space is non-empty");
    /// // Same seed, one worker: identical observations in identical order.
    /// let serial = tuner
    ///     .run_parallel(&mut RandomSearch::new(), 1, |space, cfg| {
    ///         let tile = space.value(cfg, "tile").as_int() as f64;
    ///         ((tile - 32.0).abs(), Default::default())
    ///     })
    ///     .expect("space is non-empty");
    /// assert_eq!(parallel.db.observations(), serial.db.observations());
    /// ```
    ///
    /// # Errors
    /// [`TuneError::NoEvaluations`] when the algorithm proposes nothing and
    /// there is no warm-start prior to fall back on.
    ///
    /// # Panics
    /// Panics on zero workers.
    pub fn run_parallel(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        workers: usize,
        evaluate: impl Fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>) + Sync,
    ) -> Result<TuneReport, TuneError> {
        let session = self.open_session("run_parallel", algorithm, None, None)?;
        self.run_parallel_impl(
            algorithm,
            EvalDispatch::Pool { workers, evaluate },
            session,
            None,
        )
    }

    /// Resume a killed [`run_parallel`](Self::run_parallel) session — see
    /// [`resume`](Self::resume) for the contract. The worker count may
    /// differ from the original run's: batch composition never depends on
    /// it, so the resumed report is still byte-identical.
    ///
    /// # Errors
    /// As [`resume`](Self::resume).
    ///
    /// # Panics
    /// Panics on zero workers.
    pub fn resume_parallel(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        workers: usize,
        evaluate: impl Fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>) + Sync,
    ) -> Result<TuneReport, TuneError> {
        let (tuner, session, restored) = self.load_session("run_parallel", algorithm, None)?;
        tuner.run_parallel_impl(
            algorithm,
            EvalDispatch::Pool { workers, evaluate },
            Some(session),
            Some(restored),
        )
    }

    /// [`run_parallel`](Self::run_parallel) through a stateful
    /// [`BatchEvaluator`]: whole `suggest_batch` proposals flow through one
    /// amortized `evaluate_many` call per round instead of a thread pool —
    /// the fast path when a single warm evaluator outruns N cold ones.
    ///
    /// The report is byte-identical to [`run_parallel`](Self::run_parallel)
    /// with an equivalent closure (any worker count): batch composition,
    /// recording order, cache accounting and WAL records are shared. The
    /// trace gains one `evaluate_many` span per round (`batch` size,
    /// evaluator `reuse_hits`) parenting that round's `eval` spans, and the
    /// profile gains an `evaluate_many` stage alongside the per-evaluation
    /// `evaluate` samples.
    ///
    /// # Errors
    /// As [`run_parallel`](Self::run_parallel).
    pub fn run_parallel_with(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        evaluator: &mut dyn BatchEvaluator,
    ) -> Result<TuneReport, TuneError> {
        let session = self.open_session("run_parallel", algorithm, None, None)?;
        let dispatch: EvalDispatch<'_, EvalFn> = EvalDispatch::Batched { evaluator };
        self.run_parallel_impl(algorithm, dispatch, session, None)
    }

    fn run_parallel_impl<F>(
        &self,
        algorithm: &mut dyn SearchAlgorithm,
        mut dispatch: EvalDispatch<'_, F>,
        mut session: Option<ActiveSession>,
        restored: Option<RestoredState>,
    ) -> Result<TuneReport, TuneError>
    where
        F: Fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>) + Sync,
    {
        if let EvalDispatch::Pool { workers, .. } = &dispatch {
            assert!(*workers > 0, "need at least one worker");
        }
        self.preflight()?;
        let mut profile = ProfileBuilder::new();
        let mut root = self.open_root("tuner.run_parallel", algorithm.name());
        if let Some(root) = root.as_mut() {
            match &dispatch {
                EvalDispatch::Pool { workers, .. } => root.attr("workers", *workers),
                EvalDispatch::Batched { .. } => root.attr("dispatch", "batched"),
            }
            root.attr("batch_size", self.batch_size);
        }
        let (mut db, prior_len, mut cache, mut stats, mut rng, mut consecutive_dups) =
            self.loop_state(restored);
        checkpoint_tick(
            &mut session,
            &db,
            &cache,
            stats,
            &rng,
            consecutive_dups,
            &*algorithm,
            None,
            || None,
        )?;
        // Round-reusable buffers: proposals, evaluation outputs and pool
        // slots keep their allocations across rounds, so the steady-state
        // loop allocates nothing per proposal.
        let mut fresh: Vec<Config> = Vec::new();
        let mut outputs: Vec<(Evaluation, f64)> = Vec::new();
        let mut slots: Vec<SyncMutex<Option<(Evaluation, f64)>>> = Vec::new();
        while db.len() - prior_len < self.max_evals {
            let want = self.batch_size.min(self.max_evals - (db.len() - prior_len));
            let mut proposals = {
                let _span = root.as_ref().map(|r| {
                    let mut s = r.child("suggest_batch");
                    s.attr("want", want);
                    s
                });
                let t_suggest = Instant::now();
                let proposals = algorithm.suggest_batch(&self.space, &db, &mut rng, want);
                profile.sample("suggest", t_suggest.elapsed().as_secs_f64());
                proposals
            };
            if proposals.is_empty() {
                break; // strategy exhausted (e.g. grid complete)
            }
            // `suggest_batch` contracts to at most `want` proposals; an
            // over-returning algorithm has its tail dropped *before* the
            // duplicate filter so every processed proposal lands in exactly
            // one cache counter (hits + misses == accepted suggestions).
            proposals.truncate(want);
            // Filter duplicates in suggestion order, counting them toward
            // the same consecutive-duplicate exit as the serial loop.
            fresh.clear();
            outputs.clear();
            let mut exhausted = false;
            for cfg in proposals {
                self.check_valid(algorithm, &cfg)?;
                if cache.contains_key(&cfg) || fresh.contains(&cfg) {
                    stats.hits += 1;
                    if let Some(root) = root.as_mut() {
                        root.event_with(
                            "cache_hit",
                            vec![(
                                "config".to_string(),
                                AttrValue::Str(config_fingerprint(&cfg)),
                            )],
                        );
                    }
                    consecutive_dups += 1;
                    if consecutive_dups >= self.max_consecutive_duplicates {
                        exhausted = true;
                        break;
                    }
                } else {
                    consecutive_dups = 0;
                    fresh.push(cfg);
                }
            }
            // On resume, the round's leading configurations may already be
            // in the WAL: answer those from the replay queue, evaluate only
            // the remainder live.
            let mut replayed: Vec<EvalRecord> = Vec::new();
            if let Some(s) = session.as_mut() {
                while replayed.len() < fresh.len() {
                    match s.replay_next(&fresh[replayed.len()])? {
                        Some(rec) => replayed.push(rec),
                        None => break,
                    }
                }
            }
            let replay_n = replayed.len();
            for rec in replayed {
                stats.misses += 1;
                profile.sample("evaluate", 0.0);
                let Some(objective) = rec.objective else {
                    return Err(TuneError::Checkpoint {
                        detail: format!(
                            "record {} has no objective, but the fault-free driver never \
                             quarantines",
                            rec.ordinal
                        ),
                    });
                };
                cache.insert(rec.config.clone(), (objective, rec.aux.clone()));
                db.record(rec.config, objective, rec.aux);
            }
            let trace = match (self.trace.as_deref(), root.as_ref()) {
                (Some(t), Some(r)) => Some((t, r.id())),
                _ => None,
            };
            match &mut dispatch {
                EvalDispatch::Pool { workers, evaluate } => self.evaluate_batch(
                    &fresh[replay_n..],
                    *workers,
                    evaluate,
                    trace,
                    &mut slots,
                    &mut outputs,
                ),
                EvalDispatch::Batched { evaluator } => self.evaluate_many(
                    &fresh[replay_n..],
                    *evaluator,
                    trace,
                    &mut outputs,
                    &mut profile,
                ),
            }
            for (cfg, ((objective, aux), dur_s)) in fresh.drain(replay_n..).zip(outputs.drain(..)) {
                if let Some(s) = session.as_mut() {
                    s.log(&EvalRecord {
                        ordinal: s.next_ordinal(),
                        config: cfg.clone(),
                        objective: Some(objective),
                        aux: aux.clone(),
                        events: Vec::new(),
                        failed_attempts: 0,
                        backoff_s: 0.0,
                    })?;
                }
                stats.misses += 1;
                profile.sample("evaluate", dur_s);
                cache.insert(cfg.clone(), (objective, aux.clone()));
                db.record(cfg, objective, aux);
            }
            // Round boundary: the only point where a parallel snapshot is
            // consistent (mid-round the RNG has already advanced past
            // suggestions that are not yet recorded).
            checkpoint_tick(
                &mut session,
                &db,
                &cache,
                stats,
                &rng,
                consecutive_dups,
                &*algorithm,
                None,
                || None,
            )?;
            if exhausted {
                break;
            }
        }
        if let Some(s) = session.as_mut() {
            s.finish()?;
        }
        let report = self.report(algorithm, db, prior_len, stats, profile);
        if let (Some(root), Ok(report)) = (root.as_mut(), &report) {
            root.attr("evals", report.evals);
            root.attr("best_objective", report.best_objective);
        }
        report
    }

    /// Evaluate `fresh` on up to `workers` scoped threads, appending one
    /// `(result, duration)` per configuration to `outputs` *in suggestion
    /// order* — recording order is therefore independent of which worker
    /// finished first. With a trace target, each evaluation records an
    /// `eval` span (worker id, config fingerprint, objective). `slots` and
    /// `outputs` are caller-owned buffers recycled across rounds.
    fn evaluate_batch(
        &self,
        fresh: &[Config],
        workers: usize,
        evaluate: &(impl Fn(&ParamSpace, &Config) -> (f64, HashMap<String, f64>) + Sync),
        trace: Option<(&TraceCollector, SpanId)>,
        slots: &mut Vec<SyncMutex<Option<(Evaluation, f64)>>>,
        outputs: &mut Vec<(Evaluation, f64)>,
    ) {
        let eval_traced = |cfg: &Config, worker: usize| {
            let mut span = trace.map(|(t, parent)| {
                let mut s = t.child("eval", parent);
                s.attr("worker", worker);
                s.attr("config", config_fingerprint(cfg));
                s
            });
            let t_eval = Instant::now();
            let out = evaluate(&self.space, cfg);
            let dur_s = t_eval.elapsed().as_secs_f64();
            if let Some(s) = span.as_mut() {
                s.attr("objective", out.0);
            }
            (out, dur_s)
        };
        fan_out(fresh, workers, slots, outputs, eval_traced);
    }

    /// Evaluate `fresh` serially through one stateful [`BatchEvaluator`],
    /// appending `(result, duration)` pairs to `outputs` in suggestion
    /// order. With a trace target, the whole round records an
    /// `evaluate_many` span (`batch` size, evaluator `reuse_hits` delta)
    /// parenting one `eval` span per configuration, and the profile gains
    /// an `evaluate_many` sample covering the amortized call.
    fn evaluate_many(
        &self,
        fresh: &[Config],
        evaluator: &mut dyn BatchEvaluator,
        trace: Option<(&TraceCollector, SpanId)>,
        outputs: &mut Vec<(Evaluation, f64)>,
        profile: &mut ProfileBuilder,
    ) {
        let mut span = trace.map(|(t, parent)| {
            let mut s = t.child("evaluate_many", parent);
            s.attr("batch", fresh.len());
            s
        });
        let reuse_before = evaluator.reuse_hits();
        let t_batch = Instant::now();
        for cfg in fresh {
            let mut eval_span = span.as_ref().map(|s| {
                let mut e = s.child("eval");
                e.attr("worker", 0usize);
                e.attr("config", config_fingerprint(cfg));
                e
            });
            let t_eval = Instant::now();
            let out = evaluator.evaluate(&self.space, cfg);
            let dur_s = t_eval.elapsed().as_secs_f64();
            if let Some(e) = eval_span.as_mut() {
                e.attr("objective", out.0);
            }
            outputs.push((out, dur_s));
        }
        profile.sample("evaluate_many", t_batch.elapsed().as_secs_f64());
        if let Some(s) = span.as_mut() {
            s.attr(
                "reuse_hits",
                evaluator.reuse_hits().saturating_sub(reuse_before),
            );
        }
    }

    /// Memoized results for warm-start priors (suggesting one is a hit, not
    /// a re-simulation).
    pub(crate) fn prior_cache(&self, db: &PerfDatabase) -> HashMap<Config, Evaluation> {
        db.observations()
            .iter()
            .map(|o| (o.config.clone(), (o.objective, o.aux.clone())))
            .collect()
    }

    /// Static checks on the run's inputs, before any evaluation happens.
    pub(crate) fn preflight(&self) -> Result<(), TuneError> {
        if self.space.dims() == 0 {
            return Err(TuneError::Diagnostic {
                context: "parameter space".to_string(),
                diagnostics: vec!["space has no parameters; nothing to tune".to_string()],
            });
        }
        if let Some(prior) = &self.warm_start {
            let bad: Vec<String> = prior
                .observations()
                .iter()
                .filter(|o| o.config.len() != self.space.dims() || !self.space.is_valid(&o.config))
                .map(|o| format!("warm-start config {:?} invalid in this space", o.config))
                .collect();
            if !bad.is_empty() {
                return Err(TuneError::Diagnostic {
                    context: "warm-start prior".to_string(),
                    diagnostics: bad,
                });
            }
        }
        Ok(())
    }

    pub(crate) fn check_valid(
        &self,
        algorithm: &dyn SearchAlgorithm,
        cfg: &Config,
    ) -> Result<(), TuneError> {
        if self.space.is_valid(cfg) {
            Ok(())
        } else {
            Err(TuneError::Diagnostic {
                context: format!("algorithm {}", algorithm.name()),
                diagnostics: vec![format!("suggested invalid config {cfg:?}")],
            })
        }
    }

    pub(crate) fn report(
        &self,
        algorithm: &dyn SearchAlgorithm,
        db: PerfDatabase,
        prior_len: usize,
        stats: CacheStats,
        mut profile: ProfileBuilder,
    ) -> Result<TuneReport, TuneError> {
        let Some(best) = db.best().cloned() else {
            return Err(TuneError::NoEvaluations {
                algorithm: algorithm.name().to_string(),
            });
        };
        // Cache attribution mirrors the canonical counters exactly, so the
        // profile agrees with `TuneReport::cache` on every driver.
        profile.cache_hits(stats.hits);
        profile.cache_misses(stats.misses);
        Ok(TuneReport {
            algorithm: algorithm.name().to_string(),
            // Fresh evaluations only; warm-start priors are free.
            evals: db.len() - prior_len,
            best_config: best.config,
            best_objective: best.objective,
            db,
            cache: stats,
            faults: FaultLog::default(),
            profile: profile.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{ExhaustiveSearch, ForestSearch, RandomSearch};
    use crate::space::Param;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(Param::ints("x", 0..10))
            .with(Param::ints("y", 0..10))
    }

    fn bowl(_s: &ParamSpace, c: &Config) -> (f64, HashMap<String, f64>) {
        let o = (c[0] as f64 - 6.0).powi(2) + (c[1] as f64 - 2.0).powi(2);
        (o, HashMap::new())
    }

    #[test]
    fn exhaustive_finds_exact_optimum() {
        let report = Tuner::new(space())
            .max_evals(1000)
            .run(&mut ExhaustiveSearch::new(), bowl)
            .unwrap();
        assert_eq!(report.best_objective, 0.0);
        assert_eq!(report.best_config, vec![6, 2]);
        assert_eq!(report.evals, 100);
    }

    #[test]
    fn budget_is_respected() {
        let report = Tuner::new(space())
            .max_evals(20)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        assert_eq!(report.evals, 20);
        assert_eq!(report.db.len(), 20);
    }

    #[test]
    fn forest_budget_run_improves_over_initial() {
        let report = Tuner::new(space())
            .max_evals(40)
            .seed(5)
            .run(&mut ForestSearch::new(), bowl)
            .unwrap();
        let traj = report.db.trajectory();
        assert!(traj.last().unwrap() < &traj[7], "surrogate phase improves");
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = Tuner::new(space())
            .max_evals(15)
            .seed(9)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        let b = Tuner::new(space())
            .max_evals(15)
            .seed(9)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.db.observations(), b.db.observations());
    }

    #[test]
    fn warm_start_accelerates_surrogate() {
        // A prior database near the optimum should let the surrogate find
        // the basin with a far smaller fresh budget.
        let cold = Tuner::new(space())
            .max_evals(12)
            .seed(3)
            .run(&mut ForestSearch::new().with_init(4), bowl)
            .unwrap();
        let mut prior = crate::db::PerfDatabase::new();
        for cfg in [
            vec![5usize, 2],
            vec![7, 2],
            vec![6, 3],
            vec![6, 1],
            vec![4, 4],
            vec![8, 8],
        ] {
            let (o, _) = bowl(&space(), &cfg);
            prior.record(cfg, o, HashMap::new());
        }
        let warm = Tuner::new(space())
            .max_evals(12)
            .seed(3)
            .warm_start(prior)
            .run(&mut ForestSearch::new().with_init(4), bowl)
            .unwrap();
        assert!(
            warm.best_objective <= cold.best_objective,
            "warm {} vs cold {}",
            warm.best_objective,
            cold.best_objective
        );
        assert!(
            warm.best_objective <= 1.0,
            "basin found: {}",
            warm.best_objective
        );
        // Budget counts only fresh evaluations.
        assert_eq!(warm.db.len(), 6 + warm.evals);
    }

    #[test]
    fn warm_start_validates_configs() {
        let mut prior = crate::db::PerfDatabase::new();
        prior.record(vec![99, 99], 1.0, HashMap::new());
        let err = Tuner::new(space())
            .warm_start(prior)
            .run(&mut RandomSearch::new(), |_, _| (0.0, HashMap::new()))
            .expect_err("invalid prior must be rejected");
        match err {
            TuneError::Diagnostic {
                context,
                diagnostics,
            } => {
                assert_eq!(context, "warm-start prior");
                assert_eq!(diagnostics.len(), 1);
                assert!(diagnostics[0].contains("invalid in this space"));
            }
            other => panic!("expected Diagnostic, got {other:?}"),
        }
        // The error implements std::error::Error with a readable message.
        let err: Box<dyn std::error::Error> = Box::new(TuneError::Diagnostic {
            context: "warm-start prior".into(),
            diagnostics: vec!["x".into()],
        });
        assert!(err.to_string().contains("rejected by static checks"));
    }

    #[test]
    fn small_space_terminates_early() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..3));
        let report = Tuner::new(tiny)
            .max_evals(100)
            .run(&mut RandomSearch::new(), |_, c| {
                (c[0] as f64, HashMap::new())
            })
            .unwrap();
        assert!(report.evals <= 3 + 16);
        assert_eq!(report.best_objective, 0.0);
    }

    #[test]
    fn small_space_terminates_early_in_parallel() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..3));
        let report = Tuner::new(tiny)
            .max_evals(100)
            .run_parallel(&mut RandomSearch::new(), 3, |_, c| {
                (c[0] as f64, HashMap::new())
            })
            .unwrap();
        assert_eq!(report.evals, 3, "every point evaluated exactly once");
        assert!(report.cache.hits <= Tuner::DEFAULT_MAX_CONSECUTIVE_DUPLICATES);
        assert_eq!(report.best_objective, 0.0);
    }

    #[test]
    fn parallel_random_matches_serial_run() {
        // The batch-aware random sampler consumes the identical RNG stream
        // as the serial loop, so all three drivers agree observation-for-
        // observation.
        let tuner = Tuner::new(space()).max_evals(30).seed(7);
        let serial = tuner.run(&mut RandomSearch::new(), bowl).unwrap();
        let one = tuner
            .run_parallel(&mut RandomSearch::new(), 1, bowl)
            .unwrap();
        let eight = tuner
            .run_parallel(&mut RandomSearch::new(), 8, bowl)
            .unwrap();
        assert_eq!(serial.db.observations(), one.db.observations());
        assert_eq!(one.db.observations(), eight.db.observations());
        assert_eq!(serial.best_config, eight.best_config);
        assert_eq!(serial.evals, eight.evals);
        assert_eq!(one.cache, eight.cache);
    }

    #[test]
    fn worker_count_never_changes_results() {
        use crate::search::{AnnealingSearch, HillClimbSearch};
        let algorithms: Vec<Box<dyn Fn() -> Box<dyn SearchAlgorithm>>> = vec![
            Box::new(|| Box::new(RandomSearch::new())),
            Box::new(|| Box::new(ExhaustiveSearch::new())),
            Box::new(|| Box::new(ForestSearch::new())),
            Box::new(|| Box::new(HillClimbSearch::new())),
            Box::new(|| Box::new(AnnealingSearch::default_schedule())),
        ];
        for make in algorithms {
            let tuner = Tuner::new(space()).max_evals(25).seed(11);
            let one = tuner.run_parallel(make().as_mut(), 1, bowl).unwrap();
            let eight = tuner.run_parallel(make().as_mut(), 8, bowl).unwrap();
            assert_eq!(
                one.db.observations(),
                eight.db.observations(),
                "algorithm {} diverged across worker counts",
                one.algorithm
            );
            assert_eq!(one.best_config, eight.best_config);
            assert_eq!(one.cache, eight.cache);
        }
    }

    /// An algorithm that proposes the same configuration forever.
    struct Stuck;

    impl crate::search::SearchState for Stuck {}

    impl SearchAlgorithm for Stuck {
        fn name(&self) -> &str {
            "stuck"
        }
        fn suggest(
            &mut self,
            _space: &ParamSpace,
            _db: &PerfDatabase,
            _rng: &mut SmallRng,
        ) -> Option<Config> {
            Some(vec![0, 0])
        }
    }

    #[test]
    fn duplicate_tolerance_is_configurable_serially() {
        let report = Tuner::new(space())
            .max_evals(50)
            .max_consecutive_duplicates(4)
            .run(&mut Stuck, bowl)
            .unwrap();
        assert_eq!(report.evals, 1);
        assert_eq!(report.cache.hits, 4, "stopped at the configured streak");
        assert_eq!(report.cache.misses, 1);
    }

    #[test]
    fn duplicate_tolerance_is_configurable_in_parallel() {
        let report = Tuner::new(space())
            .max_evals(50)
            .max_consecutive_duplicates(4)
            .run_parallel(&mut Stuck, 4, bowl)
            .unwrap();
        assert_eq!(report.evals, 1);
        assert_eq!(report.cache.hits, 4, "in-batch duplicates count too");
        assert_eq!(report.cache.misses, 1);
    }

    #[test]
    fn warm_start_suggestions_hit_the_cache() {
        let tiny = ParamSpace::new().with(Param::ints("x", 0..4));
        let mut prior = PerfDatabase::new();
        prior.record(vec![0], 0.0, HashMap::new());
        prior.record(vec![1], 1.0, HashMap::new());
        let report = Tuner::new(tiny)
            .max_evals(10)
            .warm_start(prior)
            .run(&mut ExhaustiveSearch::new(), |_, c| {
                (c[0] as f64, HashMap::new())
            })
            .unwrap();
        // The sweep re-suggests the two priors (hits) and evaluates the rest.
        assert_eq!(report.cache, CacheStats { hits: 2, misses: 2 });
        assert_eq!(report.evals, 2);
        assert_eq!(report.db.len(), 4);
    }

    #[test]
    fn unsatisfiable_space_is_an_error_not_a_panic() {
        let impossible = ParamSpace::new()
            .with(Param::ints("x", 0..3))
            .with_constraint("nothing allowed", |_, _| false);
        for workers in [None, Some(1), Some(4)] {
            let tuner = Tuner::new(impossible.clone()).max_evals(5);
            let err = match workers {
                None => tuner.run(&mut ExhaustiveSearch::new(), bowl),
                Some(w) => tuner.run_parallel(&mut ExhaustiveSearch::new(), w, bowl),
            }
            .unwrap_err();
            assert_eq!(
                err,
                TuneError::NoEvaluations {
                    algorithm: "exhaustive".into()
                }
            );
            assert!(err.to_string().contains("no evaluations"));
        }
    }

    #[test]
    fn every_fault_free_driver_populates_the_profile() {
        let tuner = Tuner::new(space()).max_evals(15).seed(4);
        let serial = tuner.run(&mut RandomSearch::new(), bowl).unwrap();
        let parallel = tuner
            .run_parallel(&mut RandomSearch::new(), 4, bowl)
            .unwrap();
        for (label, report) in [("run", &serial), ("run_parallel", &parallel)] {
            assert!(!report.profile.is_empty(), "{label}: profile populated");
            assert!(report.profile.wall_s > 0.0, "{label}: wall clock ran");
            assert_eq!(
                report.profile.stages["evaluate"].count, report.cache.misses,
                "{label}: one evaluate sample per real evaluation"
            );
            assert_eq!(report.profile.cache_hits, report.cache.hits, "{label}");
            assert_eq!(report.profile.cache_misses, report.cache.misses, "{label}");
            assert!(report.profile.stages.contains_key("suggest"), "{label}");
        }
    }

    #[test]
    fn profile_stays_out_of_the_canonical_json() {
        let report = Tuner::new(space())
            .max_evals(5)
            .seed(1)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        assert!(!report.profile.is_empty());
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("profile") && !json.contains("wall_s"),
            "profile must not leak into the replay-stable JSON"
        );
        let back: TuneReport = serde_json::from_str(&json).unwrap();
        assert!(back.profile.is_empty(), "deserialized profile is empty");
        assert_eq!(back.cache, report.cache);
        assert_eq!(back.best_config, report.best_config);
    }

    #[test]
    fn attached_collector_records_the_loop() {
        use std::sync::Arc;
        let collector = Arc::new(pstack_trace::TraceCollector::new());
        let report = Tuner::new(space())
            .max_evals(10)
            .seed(3)
            .with_trace(Arc::clone(&collector))
            .run_parallel(&mut RandomSearch::new(), 4, bowl)
            .unwrap();
        let trace = collector.snapshot();
        let root = trace
            .by_name("tuner.run_parallel")
            .next()
            .expect("root span recorded");
        assert_eq!(
            root.attr("algorithm"),
            Some(&AttrValue::Str("random".into()))
        );
        assert_eq!(root.attr("workers"), Some(&AttrValue::Int(4)));
        let evals: Vec<_> = trace.by_name("eval").collect();
        assert_eq!(evals.len(), report.cache.misses, "one span per real eval");
        for eval in &evals {
            assert_eq!(eval.parent, Some(root.id));
            assert!(eval.attr("worker").is_some());
            assert!(eval.attr("config").is_some());
            assert!(eval.attr("objective").is_some());
        }
        assert!(trace.by_name("suggest_batch").next().is_some());
    }

    #[test]
    fn tracing_never_changes_the_search_trajectory() {
        use std::sync::Arc;
        let collector = Arc::new(pstack_trace::TraceCollector::new());
        let untraced = Tuner::new(space())
            .max_evals(20)
            .seed(9)
            .run_parallel(&mut ForestSearch::new(), 4, bowl)
            .unwrap();
        let traced = Tuner::new(space())
            .max_evals(20)
            .seed(9)
            .with_trace(collector)
            .run_parallel(&mut ForestSearch::new(), 4, bowl)
            .unwrap();
        assert_eq!(untraced.db.observations(), traced.db.observations());
        assert_eq!(untraced.cache, traced.cache);
    }

    #[test]
    fn config_fingerprints_are_stable_and_distinct() {
        assert_eq!(
            config_fingerprint(&vec![1, 2]),
            config_fingerprint(&vec![1, 2])
        );
        assert_ne!(
            config_fingerprint(&vec![1, 2]),
            config_fingerprint(&vec![2, 1])
        );
        assert_eq!(config_fingerprint(&vec![1, 2]).len(), 16);
    }

    #[test]
    fn parallel_respects_budget_and_batch_size() {
        // Budget not divisible by batch size: the last round asks for the
        // remainder only.
        let report = Tuner::new(space())
            .max_evals(21)
            .batch_size(4)
            .seed(2)
            .run_parallel(&mut RandomSearch::new(), 8, bowl)
            .unwrap();
        assert_eq!(report.evals, 21);
        assert_eq!(report.db.len(), 21);
    }

    /// Minimal stateful evaluator for the `_with` drivers: counts its
    /// evaluations and reports every call after the first as a reuse hit.
    struct BowlEvaluator {
        evals: usize,
    }

    impl BatchEvaluator for BowlEvaluator {
        fn evaluate(&mut self, space: &ParamSpace, cfg: &Config) -> Evaluation {
            self.evals += 1;
            bowl(space, cfg)
        }

        fn reuse_hits(&self) -> usize {
            self.evals.saturating_sub(1)
        }
    }

    #[test]
    fn run_with_matches_run_byte_for_byte() {
        let closure = Tuner::new(space())
            .max_evals(12)
            .seed(7)
            .run(&mut RandomSearch::new(), bowl)
            .unwrap();
        let mut ev = BowlEvaluator { evals: 0 };
        let batched = Tuner::new(space())
            .max_evals(12)
            .seed(7)
            .run_with(&mut RandomSearch::new(), &mut ev)
            .unwrap();
        assert_eq!(ev.evals, batched.cache.misses, "one call per miss");
        assert_eq!(
            serde_json::to_string(&closure).unwrap(),
            serde_json::to_string(&batched).unwrap()
        );
    }

    #[test]
    fn run_parallel_with_matches_run_parallel_byte_for_byte() {
        let closure = Tuner::new(space())
            .max_evals(20)
            .seed(11)
            .run_parallel(&mut ForestSearch::new(), 4, bowl)
            .unwrap();
        let mut ev = BowlEvaluator { evals: 0 };
        let batched = Tuner::new(space())
            .max_evals(20)
            .seed(11)
            .run_parallel_with(&mut ForestSearch::new(), &mut ev)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&closure).unwrap(),
            serde_json::to_string(&batched).unwrap()
        );
        // The amortized driver keeps the one-sample-per-miss invariant and
        // adds an `evaluate_many` stage covering each whole-round call.
        assert_eq!(
            batched.profile.stages["evaluate"].count,
            batched.cache.misses
        );
        assert!(batched.profile.stages.contains_key("evaluate_many"));
    }

    #[test]
    fn evaluate_many_spans_cover_batches() {
        use std::sync::Arc;
        let collector = Arc::new(pstack_trace::TraceCollector::new());
        let mut ev = BowlEvaluator { evals: 0 };
        let report = Tuner::new(space())
            .max_evals(10)
            .batch_size(4)
            .seed(3)
            .with_trace(Arc::clone(&collector))
            .run_parallel_with(&mut RandomSearch::new(), &mut ev)
            .unwrap();
        let trace = collector.snapshot();
        let root = trace
            .by_name("tuner.run_parallel")
            .next()
            .expect("root span recorded");
        assert_eq!(
            root.attr("dispatch"),
            Some(&AttrValue::Str("batched".into()))
        );
        let rounds: Vec<_> = trace.by_name("evaluate_many").collect();
        assert!(!rounds.is_empty(), "at least one round span");
        let mut batch_total = 0usize;
        for round in &rounds {
            assert_eq!(round.parent, Some(root.id));
            let Some(&AttrValue::Int(batch)) = round.attr("batch") else {
                panic!("evaluate_many span carries the batch size");
            };
            batch_total += usize::try_from(batch).unwrap();
            assert!(
                round.attr("reuse_hits").is_some(),
                "round reports arena reuse"
            );
        }
        assert_eq!(batch_total, report.cache.misses);
        // Per-evaluation spans parent to their round's evaluate_many span.
        let round_ids: Vec<_> = rounds.iter().map(|r| r.id).collect();
        let evals: Vec<_> = trace.by_name("eval").collect();
        assert_eq!(evals.len(), report.cache.misses, "one span per real eval");
        for eval in &evals {
            assert!(round_ids.contains(&eval.parent.expect("eval spans have parents")));
        }
    }
}
