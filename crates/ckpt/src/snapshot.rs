//! Full-state snapshots with atomic rename-into-place.
//!
//! Layout:
//!
//! ```text
//! [magic: 8 bytes "PSTKSNP\0"] [format version: u32 LE]
//! [len: u32 LE] [crc: u64 LE, FNV-1a of payload] [payload: JSON]
//! ```
//!
//! A snapshot is written to a sibling `*.tmp` file, fsynced, then
//! renamed over the live path; readers therefore always see either the
//! previous snapshot or the new one, never a torn hybrid. Unlike the
//! WAL, a snapshot that fails its checksum is an error, not a tail to
//! trim — partial snapshots cannot exist by construction, so corruption
//! here means the file was damaged after the fact.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use serde::{Serialize, Value};

use crate::error::CkptError;
use crate::fnv1a64;

/// First 8 bytes of every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"PSTKSNP\0";

/// Format version this build writes and understands.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Write `state` atomically to `path`.
pub fn write_snapshot<T: Serialize>(path: &Path, state: &T) -> Result<(), CkptError> {
    let json = serde_json::to_string(&state.to_value()).map_err(|e| CkptError::Encode {
        detail: e.to_string(),
    })?;
    let bytes = json.as_bytes();
    let mut out = Vec::with_capacity(24 + bytes.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
    out.extend_from_slice(bytes);

    let tmp = path.with_extension("snap.tmp");
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| CkptError::io(&tmp, e))?;
    file.write_all(&out).map_err(|e| CkptError::io(&tmp, e))?;
    file.sync_data().map_err(|e| CkptError::io(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| CkptError::io(path, e))?;
    sync_parent_dir(path);
    Ok(())
}

/// Read and verify a snapshot. Missing file is the typed
/// [`CkptError::MissingSnapshot`]; any validation failure is
/// [`CkptError::Corrupt`] or [`CkptError::SchemaMismatch`].
pub fn read_snapshot(path: &Path) -> Result<Value, CkptError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CkptError::MissingSnapshot {
                path: path.display().to_string(),
            })
        }
        Err(e) => return Err(CkptError::io(path, e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| CkptError::io(path, e))?;

    if bytes.len() < 24 {
        return Err(CkptError::corrupt(path, "file shorter than the preamble"));
    }
    if bytes[..8] != SNAP_MAGIC {
        return Err(CkptError::corrupt(
            path,
            "bad magic; not a session snapshot",
        ));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(CkptError::SchemaMismatch {
            path: path.display().to_string(),
            expected: SNAPSHOT_FORMAT_VERSION,
            found: version,
        });
    }
    let len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let crc = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    if bytes.len() - 24 != len {
        return Err(CkptError::corrupt(
            path,
            format!(
                "payload length {} does not match header {len}",
                bytes.len() - 24
            ),
        ));
    }
    let payload = &bytes[24..];
    if fnv1a64(payload) != crc {
        return Err(CkptError::corrupt(path, "payload checksum mismatch"));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| CkptError::corrupt(path, "payload is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| CkptError::corrupt(path, format!("payload is not valid JSON: {e}")))
}

/// Best-effort fsync of a path's parent directory, so renames into it
/// are durable. Failure is ignored: not all platforms/filesystems allow
/// opening directories for sync, and the rename itself already happened.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}
