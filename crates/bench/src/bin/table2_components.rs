//! Regenerate Table 2: surveyed tools mapped to implemented analogs.
fn main() {
    pstack_analyze::startup_gate();
    let cat = pstack_bench::traced("table2_components", |_tc| {
        powerstack_core::component_catalog()
    });
    pstack_bench::emit(
        "table2_components",
        &powerstack_core::catalog::render_table2(),
        &cat,
    );
}
